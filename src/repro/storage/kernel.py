"""The BAT algebra: physical operators over binary association tables.

These free functions are the reproduction's stand-in for the MonetDB
kernel that Moa flattens its object-algebra expressions onto.  Each
operator

* is *value-semantics*: inputs are never mutated, a fresh :class:`BAT`
  is returned;
* declares the properties (sortedness, keys) it can guarantee on its
  result;
* charges the simulated cost model (:mod:`repro.storage.stats`): page
  reads through the buffer manager for persistent inputs, tuple touches
  for all inputs, comparisons for predicates/sorts, and tuple writes
  for materialized outputs.

Cost-model conventions
----------------------
* Scanning a persistent BAT requests its page range from the buffer
  manager; scanning a transient intermediate charges only tuple reads.
* A range-select on a *tail-sorted* persistent BAT performs binary
  search (``2 * ceil(log2 n)`` comparisons, a handful of random page
  probes) and then scans only the qualifying page range — this is what
  makes sorted fragments and the non-dense index pay off in the paper's
  Step 1 experiments.
* Sorts charge ``n * ceil(log2 n)`` comparisons (analytic estimate).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import BATShapeError, BATTypeError
from . import stats
from .bat import BAT
from .buffer import get_buffer_manager
from ..obs import tracer as _trace

__all__ = [
    "scan_cost",
    "reverse",
    "mirror",
    "mark",
    "select_range",
    "select_eq",
    "select_mask",
    "fetchjoin",
    "fetch_values",
    "hashjoin",
    "semijoin",
    "antijoin",
    "sort_tail",
    "sort_head",
    "topn_tail",
    "slice_pairs",
    "sum_tail",
    "max_tail",
    "min_tail",
    "count_tail",
    "group_sum",
    "group_count",
    "group_max",
    "unique_tail",
    "append",
    "scale_tail",
    "shift_tail",
    "combine_aligned",
    "assert_valid",
]


# ---------------------------------------------------------------------------
# cost helpers
# ---------------------------------------------------------------------------


def scan_cost(bat: BAT, n_tuples: int | None = None, start: int = 0) -> None:
    """Charge the cost of sequentially reading ``n_tuples`` tuples of
    ``bat`` (all of them by default)."""
    n = len(bat) if n_tuples is None else n_tuples
    if n <= 0:
        return
    if bat.persistent:
        get_buffer_manager().scan(bat.segment_id, n, start_tuple=start)
    else:
        stats.charge_tuples_read(n)


def _random_probe_cost(bat: BAT, positions: np.ndarray) -> None:
    """Charge the cost of positional access to the given tuple
    positions: unique pages for persistent BATs, tuple touches always."""
    n = len(positions)
    if n == 0:
        return
    if bat.persistent:
        manager = get_buffer_manager()
        pages = np.unique(positions // manager.page_tuples)
        for page_no in pages:
            manager.request(bat.segment_id, int(page_no))
        stats.charge_tuples_read(n)
    else:
        stats.charge_tuples_read(n)


def _emit(n: int) -> None:
    """Charge materialization of an ``n``-tuple result."""
    stats.charge_tuples_written(max(n, 0))


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


# ---------------------------------------------------------------------------
# structural operators (views; essentially free)
# ---------------------------------------------------------------------------


def reverse(bat: BAT) -> BAT:
    """Swap head and tail: ``[(h, t)] -> [(t, h)]``.

    The tail becomes the (integer) head, so the input tail must be an
    integer column.  Like MonetDB's ``reverse`` this is a zero-cost
    view: no pages are touched.
    """
    if bat.tail_dtype_kind != "i":
        raise BATTypeError("reverse needs an integer tail to use as head oids")
    result = BAT(
        bat.head_array(),
        head=bat.tail.astype(np.int64, copy=False),
        head_key=bat.tail_key,
        tail_key=bat.head_key,
        tail_sorted=bat.is_dense_head,
        name=bat.name,
    )
    return result


def mirror(bat: BAT) -> BAT:
    """``[(h, t)] -> [(h, h)]`` — both columns become the head."""
    heads = bat.head_array()
    if bat.is_dense_head:
        return BAT(
            heads,
            hseqbase=bat.hseqbase,
            tail_sorted=True,
            tail_key=True,
            name=bat.name,
        )
    return BAT(heads, head=heads, head_key=bat.head_key, tail_key=bat.head_key, name=bat.name)


def mark(bat: BAT, base: int = 0) -> BAT:
    """``[(h, t)] -> [(h, base..base+n-1)]`` — number the tuples.

    The classic rank/oid-issuing operator; the tail of the result is a
    fresh dense sequence.  Used to turn sorted score lists into ranks.
    """
    n = len(bat)
    _emit(n)
    if bat.is_dense_head:
        return BAT(
            np.arange(base, base + n, dtype=np.int64),
            hseqbase=bat.hseqbase,
            tail_sorted=True,
            tail_key=True,
        )
    return BAT(
        np.arange(base, base + n, dtype=np.int64),
        head=bat.head_array(),
        head_key=bat.head_key,
        tail_sorted=True,
        tail_key=True,
    )


# ---------------------------------------------------------------------------
# selections
# ---------------------------------------------------------------------------


def _binary_search_cost(bat: BAT) -> None:
    """Charge the probe cost of a binary search on a sorted tail."""
    n = len(bat)
    steps = _log2_ceil(n)
    stats.charge_comparisons(2 * steps)
    if bat.persistent:
        manager = get_buffer_manager()
        total_pages = manager.pages_for(n)
        probes = min(steps, total_pages)
        # probe a spread of pages, as a real binary search would
        for k in range(probes):
            page_no = (total_pages - 1) * (k + 1) // (probes + 1)
            manager.request(bat.segment_id, page_no)


def select_range(
    bat: BAT,
    lo=None,
    hi=None,
    include_lo: bool = True,
    include_hi: bool = True,
) -> BAT:
    """Range selection on the tail: keep pairs with ``lo <= tail <= hi``.

    ``None`` bounds are open.  On a tail-sorted BAT this uses binary
    search and touches only the qualifying range; otherwise it scans.
    This is the ``select`` of the paper's Example 1 (there written as
    ``select([1,2,3,4,4,5], 2, 4)``).
    """
    tail = bat.tail
    n = len(tail)
    sorted_asc = bat.tail_sorted and not bat.tail_sorted_desc

    if n == 0:
        return bat.clone_with(
            tail=tail[:0],
            head=None if bat.is_dense_head else bat.head_array()[:0],
            tail_sorted=bat.tail_sorted,
            tail_sorted_desc=bat.tail_sorted_desc,
            tail_key=bat.tail_key,
        )

    if sorted_asc:
        _binary_search_cost(bat)
        left = 0 if lo is None else int(
            np.searchsorted(tail, lo, "left" if include_lo else "right"))
        right = n if hi is None else int(
            np.searchsorted(tail, hi, "right" if include_hi else "left"))
        right = max(right, left)
        scan_cost(bat, right - left, start=left)
        _emit(right - left)
        heads = bat.head_array()[left:right] if not bat.is_dense_head else None
        if heads is None:
            return BAT(
                tail[left:right],
                head=bat.head_array()[left:right],
                head_key=True,
                tail_sorted=True,
                tail_key=bat.tail_key,
            )
        return BAT(
            tail[left:right],
            head=heads,
            head_key=bat.head_key,
            tail_sorted=True,
            tail_key=bat.tail_key,
        )

    # unsorted (or descending): full scan
    scan_cost(bat)
    comparisons = n * ((lo is not None) + (hi is not None))
    stats.charge_comparisons(comparisons)
    mask = np.ones(n, dtype=bool)
    if lo is not None:
        mask &= tail >= lo if include_lo else tail > lo
    if hi is not None:
        mask &= tail <= hi if include_hi else tail < hi
    return select_mask(bat, mask, _precharged=True)


def select_eq(bat: BAT, value) -> BAT:
    """Equality selection on the tail (``tail == value``)."""
    return select_range(bat, lo=value, hi=value)


def select_mask(bat: BAT, mask: np.ndarray, _precharged: bool = False) -> BAT:
    """Keep the pairs where ``mask`` is True.

    The mask must align positionally with the BAT.  Charges a scan
    unless the caller already did (``_precharged``)."""
    if len(mask) != len(bat):
        raise BATShapeError(f"mask length {len(mask)} != BAT length {len(bat)}")
    if not _precharged:
        scan_cost(bat)
        stats.charge_comparisons(len(bat))
    out_tail = bat.tail[mask]
    out_head = bat.head_array()[mask]
    _emit(len(out_tail))
    return BAT(
        out_tail,
        head=out_head,
        head_key=bat.head_key or bat.is_dense_head,
        tail_sorted=bat.tail_sorted,
        tail_sorted_desc=bat.tail_sorted_desc,
        tail_key=bat.tail_key,
    )


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def fetchjoin(left: BAT, right: BAT) -> BAT:
    """Positional join: ``left.tail`` are oids into ``right``'s dense
    head; result is ``[(left.head, right.tail[left.tail])]``.

    This is MonetDB's cheap "fetch join"; it costs one random page
    probe per distinct page of ``right`` touched.
    """
    if not right.is_dense_head:
        raise BATShapeError("fetchjoin requires the right BAT to have a dense head")
    if left.tail_dtype_kind != "i":
        raise BATTypeError("fetchjoin requires integer oids in the left tail")
    scan_cost(left)
    positions = left.tail.astype(np.int64, copy=False) - right.hseqbase
    if len(positions) and (positions.min() < 0 or positions.max() >= len(right)):
        raise BATShapeError("fetchjoin: left tail oids fall outside right head range")
    _random_probe_cost(right, positions)
    out_tail = right.tail[positions]
    _emit(len(out_tail))
    if left.is_dense_head:
        return BAT(out_tail, hseqbase=left.hseqbase)
    return BAT(out_tail, head=left.head_array(), head_key=left.head_key)


def fetch_values(bat: BAT, oids: np.ndarray) -> np.ndarray:
    """Random access: return ``bat``'s tail values at the given head
    oids (dense head required), charging random probe costs.  Returns a
    bare array — the caller decides how to wrap it."""
    positions = bat.head_positions(np.asarray(oids, dtype=np.int64))
    if len(positions) and (positions.min() < 0 or positions.max() >= len(bat)):
        raise BATShapeError("fetch_values: oids fall outside head range")
    _random_probe_cost(bat, positions)
    return bat.tail[positions]


def hashjoin(left: BAT, right: BAT) -> BAT:
    """Equi-join on ``left.tail == right.head``; result is
    ``[(left.head, right.tail)]`` for every matching pair.

    Handles duplicate join keys on both sides (full many-to-many
    semantics).  Costs a scan of both inputs plus one comparison per
    probed tuple.
    """
    if left.tail_dtype_kind != "i":
        raise BATTypeError("hashjoin requires integer join keys in the left tail")
    with _trace.span("kernel.hashjoin", left=len(left), right=len(right)):
        return _hashjoin(left, right)


def _hashjoin(left: BAT, right: BAT) -> BAT:
    if right.is_dense_head:
        # positional fast path, but tolerate out-of-range keys by filtering
        scan_cost(left)
        positions = left.tail.astype(np.int64, copy=False) - right.hseqbase
        stats.charge_comparisons(len(positions))
        valid = (positions >= 0) & (positions < len(right))
        positions = positions[valid]
        _random_probe_cost(right, positions)
        out_tail = right.tail[positions]
        out_head = left.head_array()[valid]
        _emit(len(out_tail))
        return BAT(out_tail, head=out_head)

    scan_cost(left)
    scan_cost(right)
    right_heads = right.head_array()
    order = np.argsort(right_heads, kind="stable")
    sorted_heads = right_heads[order]
    lo = np.searchsorted(sorted_heads, left.tail, "left")
    hi = np.searchsorted(sorted_heads, left.tail, "right")
    counts = hi - lo
    stats.charge_comparisons(len(left) + len(right))
    total = int(counts.sum())
    if total == 0:
        _emit(0)
        return BAT(right.tail[:0], head=np.empty(0, dtype=np.int64))
    left_idx = np.repeat(np.arange(len(left)), counts)
    # build, for each output row, its index into sorted_heads
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total) - offsets
    right_idx = order[np.repeat(lo, counts) + within]
    out_head = left.head_array()[left_idx]
    out_tail = right.tail[right_idx]
    _emit(total)
    return BAT(out_tail, head=out_head)


def semijoin(left: BAT, right: BAT) -> BAT:
    """Keep the ``left`` pairs whose *head* occurs among ``right``'s
    heads.  Costs a scan of both sides."""
    scan_cost(left)
    scan_cost(right)
    stats.charge_comparisons(len(left))
    mask = np.isin(left.head_array(), right.head_array())
    return select_mask(left, mask, _precharged=True)


def antijoin(left: BAT, right: BAT) -> BAT:
    """Keep the ``left`` pairs whose head does *not* occur among
    ``right``'s heads (set difference on heads)."""
    scan_cost(left)
    scan_cost(right)
    stats.charge_comparisons(len(left))
    mask = ~np.isin(left.head_array(), right.head_array())
    return select_mask(left, mask, _precharged=True)


# ---------------------------------------------------------------------------
# ordering
# ---------------------------------------------------------------------------


def sort_tail(bat: BAT, descending: bool = False) -> BAT:
    """Full sort on the tail column (stable).  Charges an
    ``n log n`` comparison estimate plus a scan and a materialization."""
    n = len(bat)
    with _trace.span("kernel.sort_tail", n=n, descending=descending):
        scan_cost(bat)
        stats.charge_comparisons(n * _log2_ceil(n) if n else 0)
        # canonical order: tail (asc or desc), ties broken by head oid
        # ascending — the deterministic tie-break every top-N result
        # shares (see repro.topn.result), so classic sort+slice plans
        # agree with topn_tail on tied boundaries
        heads = bat.head_array()
        if bat.tail_dtype_kind == "U":
            # non-numeric tails cannot be negated: keep the stable sort
            order = np.argsort(bat.tail, kind="stable")
            if descending:
                order = order[::-1]
        else:
            order = np.lexsort((heads, -bat.tail if descending else bat.tail))
        _emit(n)
        return BAT(
            bat.tail[order],
            head=heads[order],
            head_key=bat.head_key or bat.is_dense_head,
            tail_sorted=not descending,
            tail_sorted_desc=descending,
            tail_key=bat.tail_key,
        )


def sort_head(bat: BAT) -> BAT:
    """Stable sort on the head column (for canonical comparisons)."""
    if bat.is_dense_head:
        return bat
    n = len(bat)
    scan_cost(bat)
    stats.charge_comparisons(n * _log2_ceil(n) if n else 0)
    order = np.argsort(bat.head_array(), kind="stable")
    _emit(n)
    return BAT(
        bat.tail[order],
        head=bat.head_array()[order],
        head_key=bat.head_key,
        tail_key=bat.tail_key,
    )


def topn_tail(bat: BAT, n: int, descending: bool = True) -> BAT:
    """Return the ``n`` pairs with the largest (default) or smallest
    tails, sorted; ties broken by head oid for determinism.

    This is the *special top-N operator* the paper proposes at the
    physical level ("special top N operators, which can be seen as
    special select operators").  Uses partial selection
    (``argpartition``), so it charges only ``n_input + N log N``
    comparisons instead of a full sort.
    """
    size = len(bat)
    n = max(int(n), 0)
    with _trace.span("kernel.topn_tail", n=n, size=size, descending=descending):
        return _topn_tail(bat, n, size, descending)


def _topn_tail(bat: BAT, n: int, size: int, descending: bool) -> BAT:
    scan_cost(bat)
    if n == 0:
        _emit(0)
        return BAT(bat.tail[:0], head=np.empty(0, dtype=np.int64), tail_sorted=not descending,
                   tail_sorted_desc=descending)
    heads = bat.head_array()
    if n >= size:
        stats.charge_comparisons(size * _log2_ceil(size) if size else 0)
        keys = np.lexsort((heads, -bat.tail if descending else bat.tail))
        order = keys
    else:
        stats.charge_comparisons(size + n * _log2_ceil(n))
        values = -bat.tail if descending else bat.tail
        # partition gives the boundary value; resolve boundary ties by
        # head oid so the result is deterministic and equals the full
        # sort's prefix
        boundary = np.partition(values, n - 1)[n - 1]
        strict = np.nonzero(values < boundary)[0]
        tied = np.nonzero(values == boundary)[0]
        need = n - len(strict)
        tied_selected = tied[np.argsort(heads[tied], kind="stable")][:need]
        chosen = np.concatenate([strict, tied_selected])
        order = chosen[np.lexsort((heads[chosen], values[chosen]))]
    _emit(len(order))
    return BAT(
        bat.tail[order],
        head=heads[order],
        head_key=bat.head_key or bat.is_dense_head,
        tail_sorted=not descending,
        tail_sorted_desc=descending,
        tail_key=bat.tail_key,
    )


def slice_pairs(bat: BAT, offset: int, count: int) -> BAT:
    """Positional slice: pairs ``offset .. offset+count-1``.

    Together with :func:`sort_tail` this forms the *naive* top-N plan
    (sort everything, keep the first N)."""
    offset = max(int(offset), 0)
    count = max(int(count), 0)
    stop = min(offset + count, len(bat))
    taken = max(stop - offset, 0)
    scan_cost(bat, taken, start=offset)
    _emit(taken)
    out_head = bat.head_array()[offset:stop]
    return BAT(
        bat.tail[offset:stop],
        head=out_head,
        head_key=bat.head_key or bat.is_dense_head,
        tail_sorted=bat.tail_sorted,
        tail_sorted_desc=bat.tail_sorted_desc,
        tail_key=bat.tail_key,
    )


# ---------------------------------------------------------------------------
# aggregates
# ---------------------------------------------------------------------------


def _numeric_tail(bat: BAT, op: str) -> np.ndarray:
    if bat.tail_dtype_kind == "U":
        raise BATTypeError(f"{op} requires a numeric tail")
    return bat.tail


def sum_tail(bat: BAT) -> float:
    """Sum of the tail column."""
    scan_cost(bat)
    return float(_numeric_tail(bat, "sum_tail").sum()) if len(bat) else 0.0


def max_tail(bat: BAT):
    """Maximum tail value (None on empty input)."""
    scan_cost(bat)
    if len(bat) == 0:
        return None
    return _numeric_tail(bat, "max_tail").max().item()


def min_tail(bat: BAT):
    """Minimum tail value (None on empty input)."""
    scan_cost(bat)
    if len(bat) == 0:
        return None
    return _numeric_tail(bat, "min_tail").min().item()


def count_tail(bat: BAT) -> int:
    """Number of pairs (no scan needed; cardinality is metadata)."""
    return len(bat)


def _grouped(bat: BAT):
    heads = bat.head_array()
    groups, inverse = np.unique(heads, return_inverse=True)
    return heads, groups, inverse


def group_sum(bat: BAT) -> BAT:
    """Group by head, sum tails: ``[(h, sum(t))]`` with unique heads.

    The workhorse of score accumulation: summing per-document partial
    scores over query terms."""
    with _trace.span("kernel.group_sum", n=len(bat)):
        return _group_sum(bat)


def _group_sum(bat: BAT) -> BAT:
    scan_cost(bat)
    stats.charge_comparisons(len(bat))
    if len(bat) == 0:
        return BAT(np.empty(0, dtype=np.float64), head=np.empty(0, dtype=np.int64), head_key=True)
    values = _numeric_tail(bat, "group_sum").astype(np.float64, copy=False)
    _, groups, inverse = _grouped(bat)
    sums = np.bincount(inverse, weights=values, minlength=len(groups))
    _emit(len(groups))
    return BAT(sums, head=groups, head_key=True)


def group_count(bat: BAT) -> BAT:
    """Group by head, count tuples: ``[(h, |group|)]``."""
    scan_cost(bat)
    stats.charge_comparisons(len(bat))
    if len(bat) == 0:
        return BAT(np.empty(0, dtype=np.int64), head=np.empty(0, dtype=np.int64), head_key=True)
    _, groups, inverse = _grouped(bat)
    counts = np.bincount(inverse, minlength=len(groups)).astype(np.int64)
    _emit(len(groups))
    return BAT(counts, head=groups, head_key=True)


def group_max(bat: BAT) -> BAT:
    """Group by head, take the max tail per group."""
    scan_cost(bat)
    stats.charge_comparisons(len(bat))
    if len(bat) == 0:
        return BAT(np.empty(0, dtype=np.float64), head=np.empty(0, dtype=np.int64), head_key=True)
    values = _numeric_tail(bat, "group_max").astype(np.float64, copy=False)
    _, groups, inverse = _grouped(bat)
    maxima = np.full(len(groups), -np.inf)
    np.maximum.at(maxima, inverse, values)
    _emit(len(groups))
    return BAT(maxima, head=groups, head_key=True)


def unique_tail(bat: BAT) -> BAT:
    """Distinct tail values, sorted ascending, with fresh dense heads.

    This is the flattened form of the paper's ``projecttoset``-style
    duplicate elimination."""
    scan_cost(bat)
    stats.charge_comparisons(len(bat) * _log2_ceil(len(bat)) if len(bat) else 0)
    distinct = np.unique(bat.tail)
    _emit(len(distinct))
    return BAT(distinct, tail_sorted=True, tail_key=True)


# ---------------------------------------------------------------------------
# construction / arithmetic
# ---------------------------------------------------------------------------


def append(first: BAT, second: BAT) -> BAT:
    """Concatenate two BATs (heads materialize; properties dropped)."""
    if first.tail.dtype.kind != second.tail.dtype.kind:
        raise BATTypeError(
            f"append: incompatible tails {first.tail.dtype} vs {second.tail.dtype}"
        )
    scan_cost(first)
    scan_cost(second)
    _emit(len(first) + len(second))
    return BAT(
        np.concatenate([first.tail, second.tail]),
        head=np.concatenate([first.head_array(), second.head_array()]),
    )


def scale_tail(bat: BAT, factor: float) -> BAT:
    """Multiply every tail by ``factor`` (monotone for factor > 0, so
    sortedness is preserved; flipped for factor < 0)."""
    scan_cost(bat)
    _emit(len(bat))
    flipped = factor < 0
    return bat.clone_with(
        tail=_numeric_tail(bat, "scale_tail") * factor,
        tail_sorted=bat.tail_sorted_desc if flipped else bat.tail_sorted,
        tail_sorted_desc=bat.tail_sorted if flipped else bat.tail_sorted_desc,
        tail_key=bat.tail_key and factor != 0,
        head_key=bat.head_key,
    )


def shift_tail(bat: BAT, delta: float) -> BAT:
    """Add ``delta`` to every tail (order preserving)."""
    scan_cost(bat)
    _emit(len(bat))
    return bat.clone_with(
        tail=_numeric_tail(bat, "shift_tail") + delta,
        tail_sorted=bat.tail_sorted,
        tail_sorted_desc=bat.tail_sorted_desc,
        tail_key=bat.tail_key,
        head_key=bat.head_key,
    )


def combine_aligned(first: BAT, second: BAT, op: str = "add") -> BAT:
    """Elementwise combine two positionally aligned BATs
    (``add``/``mul``/``max``/``min``); heads must match."""
    if len(first) != len(second):
        raise BATShapeError(
            f"combine_aligned: length mismatch {len(first)} vs {len(second)}"
        )
    if not np.array_equal(first.head_array(), second.head_array()):
        raise BATShapeError("combine_aligned: heads are not aligned")
    ops = {
        "add": np.add,
        "mul": np.multiply,
        "max": np.maximum,
        "min": np.minimum,
    }
    if op not in ops:
        raise BATTypeError(f"combine_aligned: unknown op {op!r}")
    scan_cost(first)
    scan_cost(second)
    _emit(len(first))
    out = ops[op](
        _numeric_tail(first, "combine_aligned").astype(np.float64, copy=False),
        _numeric_tail(second, "combine_aligned").astype(np.float64, copy=False),
    )
    if first.is_dense_head:
        return BAT(out, hseqbase=first.hseqbase)
    return BAT(out, head=first.head_array(), head_key=first.head_key)


def assert_valid(bat: BAT) -> BAT:
    """Raise if the BAT's declared properties do not hold; returns the
    BAT unchanged so it can be used inline in tests."""
    if not bat.verify_properties():
        raise BATShapeError(f"BAT properties are inconsistent with its data: {bat!r}")
    return bat
