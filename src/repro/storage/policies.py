"""Pluggable page-replacement policies for the simulated buffer pool.

Blok's experiments charge I/O in pages, and which pages stay resident
between consecutive queries decides the warm-query cost — exactly the
reuse the cache subsystem exploits.  Three classic policies:

``lru``
    Least-recently-used, the seed behaviour: one recency queue.
``slru`` (segmented LRU / 2Q-style)
    Two recency segments.  New pages enter a *probationary* queue; a
    re-reference promotes to the *protected* queue (capped at a
    fraction of the pool, demoting its LRU back to probationary).  One
    sequential scan of a large cold segment can no longer flush the
    hot set: scan pages die in probation untouched.
``clock``
    Second-chance approximation of LRU: one reference bit per frame
    and a sweeping hand.  Near-LRU quality at O(1) bookkeeping per
    touch — the classic engineering trade-off.

Concurrency: a policy does **not** own a lock.  It receives the buffer
manager's ``_lock`` and stores it under the same attribute name, so
every ``@guarded_by("_lock")`` mutator below is covered by the very
lock the manager already holds when it calls in — the
:mod:`repro.sync` protocol sees one lock, two declaring classes.

Pinning: the manager passes the set of pinned keys to :meth:`victim`;
a policy must never evict a pinned frame (it skips them and reports
``None`` when nothing evictable remains).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import BufferError_
from ..sync import declares_shared_state, guarded_by

Key = tuple  # (segment_id, page_no)


class ReplacementPolicy:
    """Residency container + eviction order for the buffer pool.

    All methods are called with the owning manager's ``_lock`` held.
    Concrete policies adopt the lock in their *own* ``__init__``
    (``self._lock = lock``) rather than through ``super()``: the
    concurrency analysis resolves declarations per class, without
    inheritance, so each declaring class must bind the lock attribute
    in its own body.
    """

    name = "?"

    def __init__(self, lock) -> None:
        self._lock = lock

    # residency ----------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self):
        """Resident keys, coldest first (migration/introspection)."""
        raise NotImplementedError

    # transitions --------------------------------------------------------
    def admit(self, key: Key) -> None:
        """Insert a new (absent) key."""
        raise NotImplementedError

    def touch(self, key: Key) -> None:
        """Record a re-reference of a resident key."""
        raise NotImplementedError

    def victim(self, pinned) -> Key | None:
        """Remove and return the next eviction victim, skipping pinned
        keys; ``None`` when every resident frame is pinned."""
        raise NotImplementedError

    def remove(self, key: Key) -> None:
        """Drop a resident key (flush / segment eviction)."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


@declares_shared_state
class LRUPolicy(ReplacementPolicy):
    """One recency queue; evict from the cold end."""

    name = "lru"
    SHARED_STATE = {"_entries": "_lock"}

    def __init__(self, lock) -> None:
        self._lock = lock
        self._entries: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return list(self._entries)

    @guarded_by("_lock")
    def admit(self, key: Key) -> None:
        self._entries[key] = None
        self._entries.move_to_end(key)

    @guarded_by("_lock")
    def touch(self, key: Key) -> None:
        self._entries.move_to_end(key)

    @guarded_by("_lock")
    def victim(self, pinned) -> Key | None:
        for key in self._entries:
            if key not in pinned:
                del self._entries[key]
                return key
        return None

    @guarded_by("_lock")
    def remove(self, key: Key) -> None:
        self._entries.pop(key, None)

    @guarded_by("_lock")
    def clear(self) -> None:
        self._entries.clear()


@declares_shared_state
class SegmentedLRUPolicy(ReplacementPolicy):
    """Segmented LRU (2Q-flavoured): probation for newcomers, a capped
    protected segment for re-referenced pages."""

    name = "slru"
    SHARED_STATE = {"_probation": "_lock", "_protected": "_lock"}

    def __init__(self, lock, protected_fraction: float = 0.8,
                 capacity_pages: int | None = None) -> None:
        self._lock = lock
        if not 0.0 < protected_fraction < 1.0:
            raise BufferError_(
                f"protected_fraction must be in (0, 1), got {protected_fraction}")
        self.protected_fraction = protected_fraction
        self.capacity_pages = capacity_pages
        self._probation: OrderedDict[Key, None] = OrderedDict()
        self._protected: OrderedDict[Key, None] = OrderedDict()

    def _protected_cap(self) -> int:
        total = self.capacity_pages
        if total is None:
            total = len(self._probation) + len(self._protected)
        return max(1, int(total * self.protected_fraction))

    def __contains__(self, key: Key) -> bool:
        return key in self._probation or key in self._protected

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def keys(self):
        return list(self._probation) + list(self._protected)

    @guarded_by("_lock")
    def admit(self, key: Key) -> None:
        self._probation[key] = None
        self._probation.move_to_end(key)

    @guarded_by("_lock")
    def touch(self, key: Key) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        # promotion on re-reference; overflow demotes the protected LRU
        # back to probation's hot end (it keeps a second chance)
        self._probation.pop(key, None)
        self._protected[key] = None
        self._protected.move_to_end(key)
        cap = self._protected_cap()
        while len(self._protected) > cap:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None
            self._probation.move_to_end(demoted)

    @guarded_by("_lock")
    def victim(self, pinned) -> Key | None:
        for queue in (self._probation, self._protected):
            for key in queue:
                if key not in pinned:
                    del queue[key]
                    return key
        return None

    @guarded_by("_lock")
    def remove(self, key: Key) -> None:
        if self._probation.pop(key, None) is None:
            self._protected.pop(key, None)

    @guarded_by("_lock")
    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()


@declares_shared_state
class ClockPolicy(ReplacementPolicy):
    """CLOCK second-chance: a circular queue of frames with one
    reference bit each; the hand clears bits until it finds a cold,
    unpinned frame."""

    name = "clock"
    SHARED_STATE = {"_frames": "_lock"}

    def __init__(self, lock) -> None:
        self._lock = lock
        # key -> reference bit; dict order is the circular queue, the
        # hand is the front (rotation = popitem + re-append)
        self._frames: OrderedDict[Key, int] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def keys(self):
        return list(self._frames)

    @guarded_by("_lock")
    def admit(self, key: Key) -> None:
        # newcomers start cold: a page never re-referenced is the next
        # natural victim once the hand reaches it
        self._frames[key] = 0

    @guarded_by("_lock")
    def touch(self, key: Key) -> None:
        self._frames[key] = 1

    @guarded_by("_lock")
    def victim(self, pinned) -> Key | None:
        # two full sweeps suffice: the first clears every reference
        # bit, so the second meets a cold unpinned frame if one exists
        for _ in range(2 * len(self._frames)):
            key, ref = self._frames.popitem(last=False)
            if key in pinned:
                self._frames[key] = ref
                continue
            if ref:
                self._frames[key] = 0
                continue
            return key
        return None

    @guarded_by("_lock")
    def remove(self, key: Key) -> None:
        self._frames.pop(key, None)

    @guarded_by("_lock")
    def clear(self) -> None:
        self._frames.clear()


#: registry used by BufferManager and DatabaseConfig validation
POLICIES = {
    LRUPolicy.name: LRUPolicy,
    SegmentedLRUPolicy.name: SegmentedLRUPolicy,
    ClockPolicy.name: ClockPolicy,
}


def make_policy(name: str, lock, capacity_pages: int | None = None) -> ReplacementPolicy:
    """Instantiate a registered policy sharing the manager's lock."""
    cls = POLICIES.get(name)
    if cls is None:
        raise BufferError_(
            f"unknown buffer policy {name!r}; have {sorted(POLICIES)}")
    if cls is SegmentedLRUPolicy:
        return cls(lock, capacity_pages=capacity_pages)
    return cls(lock)
