"""Optimizer statistics over BAT columns: zone maps and histograms.

.. note:: Not to be confused with :mod:`repro.storage.stats`, which is
   *cost accounting* — runtime counters of pages, tuples and
   comparisons charged while queries execute.  This module holds the
   *column statistics* the cost model consults before execution.

The cost model (Step 3) needs selectivity estimates.  Out of the box it
uses per-column zone maps (min/max, uniform assumption); this module
adds equi-depth histograms so skewed columns estimate well too, plus a
:class:`ColumnStatistics` bundle the cost model consumes when a
statistics registry is attached.

Statistics are built offline (one scan, charged) like any DBMS's
ANALYZE, and are *approximate by design* — tests assert calibration
bounds, not exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StorageError
from . import stats as _stats
from .bat import BAT

__all__ = [
    "ColumnStatistics",
    "EquiDepthHistogram",
    "StatisticsRegistry",
    "ZoneMap",
    "analyze_column",
]


@dataclass(frozen=True)
class ZoneMap:
    """Min/max/count of a column (the cheapest statistic)."""

    min_value: float
    max_value: float
    count: int

    def range_selectivity(self, lo, hi) -> float:
        """Uniform-assumption selectivity of ``lo <= x <= hi``."""
        if self.count == 0:
            return 0.0
        span = self.max_value - self.min_value
        if span <= 0:
            inside = (lo is None or lo <= self.min_value) and (
                hi is None or hi >= self.max_value
            )
            return 1.0 if inside else 0.0
        lo_eff = self.min_value if lo is None else max(float(lo), self.min_value)
        hi_eff = self.max_value if hi is None else min(float(hi), self.max_value)
        return max(hi_eff - lo_eff, 0.0) / span


class EquiDepthHistogram:
    """Equi-depth histogram: each bucket holds ~count/buckets values.

    Estimates range selectivity by summing full buckets inside the
    range and interpolating the partial boundary buckets.
    """

    def __init__(self, values: np.ndarray, n_buckets: int = 32) -> None:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise StorageError("cannot build a histogram over an empty column")
        if n_buckets < 1:
            raise StorageError(f"need at least 1 bucket, got {n_buckets}")
        self.count = len(values)
        quantiles = np.linspace(0.0, 1.0, min(n_buckets, self.count) + 1)
        self.boundaries = np.quantile(values, quantiles)
        _stats.charge_tuples_read(len(values))
        _stats.charge_comparisons(len(values))

    @property
    def n_buckets(self) -> int:
        return len(self.boundaries) - 1

    def _fraction_below(self, value: float) -> float:
        """Approximate fraction of values strictly less than ``value``.

        Duplicate quantile boundaries (heavy mass at one value) are
        handled by taking the *first* boundary >= value."""
        bounds = self.boundaries
        if value <= bounds[0]:
            return 0.0
        if value > bounds[-1]:
            return 1.0
        j = int(np.searchsorted(bounds, value, "left"))  # first boundary >= value
        bucket = max(j - 1, 0)
        lo, hi = bounds[bucket], bounds[bucket + 1]
        within = (value - lo) / (hi - lo) if hi > lo else 1.0
        return min((bucket + within) / self.n_buckets, 1.0)

    def _fraction_at_most(self, value: float) -> float:
        """Approximate fraction of values <= ``value``; takes the
        *last* boundary <= value so duplicate mass is included."""
        bounds = self.boundaries
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        k = int(np.searchsorted(bounds, value, "right")) - 1
        k = min(k, self.n_buckets - 1)
        lo, hi = bounds[k], bounds[k + 1]
        within = (value - lo) / (hi - lo) if hi > lo else 0.0
        return min((k + within) / self.n_buckets, 1.0)

    def range_selectivity(self, lo, hi) -> float:
        """Estimated selectivity of ``lo <= x <= hi``."""
        low_frac = 0.0 if lo is None else self._fraction_below(float(lo))
        high_frac = 1.0 if hi is None else self._fraction_at_most(float(hi))
        return max(high_frac - low_frac, 0.0)

    def estimate_rows(self, lo, hi) -> float:
        return self.range_selectivity(lo, hi) * self.count


@dataclass
class ColumnStatistics:
    """Bundle of statistics for one column."""

    zone_map: ZoneMap
    histogram: EquiDepthHistogram | None = None

    def range_selectivity(self, lo, hi) -> float:
        if self.histogram is not None:
            return self.histogram.range_selectivity(lo, hi)
        return self.zone_map.range_selectivity(lo, hi)


def analyze_column(bat: BAT, n_buckets: int = 32,
                   with_histogram: bool = True) -> ColumnStatistics:
    """Build statistics over a numeric BAT tail (one charged scan)."""
    if bat.tail_dtype_kind == "U":
        raise StorageError("analyze_column supports numeric columns only")
    from .kernel import scan_cost

    scan_cost(bat)
    if len(bat) == 0:
        return ColumnStatistics(ZoneMap(0.0, 0.0, 0))
    tail = bat.tail.astype(np.float64, copy=False)
    zone = ZoneMap(float(tail.min()), float(tail.max()), len(tail))
    histogram = EquiDepthHistogram(tail, n_buckets) if with_histogram else None
    return ColumnStatistics(zone, histogram)


class StatisticsRegistry:
    """Named column statistics, consumed by the cost model.

    Keys are environment variable names (the optimizer estimates plans
    against an environment); ``analyze_env`` builds statistics for
    every atomic-element collection in an environment.
    """

    def __init__(self) -> None:
        self._columns: dict[str, ColumnStatistics] = {}

    def put(self, name: str, statistics: ColumnStatistics) -> None:
        self._columns[name] = statistics

    def get(self, name: str) -> ColumnStatistics | None:
        return self._columns.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def analyze_env(self, env, n_buckets: int = 32) -> "StatisticsRegistry":
        """ANALYZE every numeric atomic collection in ``env``."""
        from ..algebra.values import CollectionValue

        for name, value in env.items():
            if isinstance(value, CollectionValue) and value.is_atomic_elements:
                if value.bat.tail_dtype_kind != "U" and len(value.bat):
                    self.put(name, analyze_column(value.bat, n_buckets))
        return self


# -- deprecation shim -------------------------------------------------------
#
# The mirror of the shim in repro.storage.stats: cost-accounting names
# looked up here are forwarded to repro.storage.stats with a warning.

_COST_NAMES = frozenset({
    "CostCounter",
    "active_counters",
    "charge_buffer_hits",
    "charge_comparisons",
    "charge_extra",
    "charge_page_reads",
    "charge_page_writes",
    "charge_random_accesses",
    "charge_sorted_accesses",
    "charge_tuples_read",
    "charge_tuples_written",
})


def __getattr__(name: str):
    if name in _COST_NAMES:
        import warnings

        warnings.warn(
            f"repro.storage.statistics.{name} is cost accounting, not "
            f"column statistics: import it from repro.storage.stats instead",
            DeprecationWarning, stacklevel=2,
        )
        return getattr(_stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
