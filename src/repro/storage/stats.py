"""Cost accounting for the storage kernel and everything above it.

.. note:: Not to be confused with :mod:`repro.storage.statistics`,
   which holds *column statistics* (zone maps, equi-depth histograms)
   for the cost model's selectivity estimates.  This module counts
   *work performed* (pages, tuples, comparisons) while a query runs.

The paper's claims are phrased in terms of "how much data is processed"
(e.g. *"processing only a small portion of the data of approximately 5%
of the unfragmented size ... speed up query processing ... with at least
60%"*).  Wall-clock time of a pure-Python reproduction is dominated by
interpreter overhead, so every kernel operation additionally reports a
deterministic, seed-stable *simulated cost*:

* ``page_reads`` / ``page_writes`` — page-granular I/O, as counted by
  the simulated buffer manager (:mod:`repro.storage.buffer`);
* ``buffer_hits`` — page requests satisfied from the buffer pool;
* ``tuples_read`` / ``tuples_written`` — tuple touches;
* ``comparisons`` — comparisons performed by selections, joins, sorts;
* ``random_accesses`` / ``sorted_accesses`` — the access-mode counters
  of Fagin-style middleware algorithms (FA/TA/NRA).

Counters are grouped in a :class:`CostCounter`.  A thread-local *stack*
of active counters lets callers scope measurement with ``with`` blocks::

    with CostCounter.activate() as cost:
        run_query(...)
    print(cost.page_reads, cost.tuples_read)

Nested activations all receive the charges, so a benchmark harness can
keep a global counter while an inner experiment keeps its own.

Two read-only views support finer-grained attribution without
monkeypatching: :meth:`CostCounter.snapshot` freezes the current
counts as a plain dict, and :meth:`CostCounter.delta` subtracts two
snapshots.  The execution tracer (:mod:`repro.obs.tracer`) uses them
to attribute cost to individual spans of a run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields

__all__ = [
    "CostCounter",
    "active_counters",
    "charge_buffer_hits",
    "charge_comparisons",
    "charge_extra",
    "charge_page_reads",
    "charge_page_writes",
    "charge_random_accesses",
    "charge_sorted_accesses",
    "charge_tuples_read",
    "charge_tuples_written",
]

_local = threading.local()


def _counter_stack() -> list["CostCounter"]:
    """Return the thread-local stack of active counters."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@dataclass
class CostCounter:
    """Accumulates simulated costs for a dynamic scope.

    Instances are plain dataclasses; all mutation goes through the
    ``charge_*`` module functions (or :meth:`add`) so that every active
    counter on the stack is charged consistently.
    """

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    tuples_read: int = 0
    tuples_written: int = 0
    comparisons: int = 0
    random_accesses: int = 0
    sorted_accesses: int = 0
    #: free-form named counters for experiment-specific bookkeeping
    extra: dict = field(default_factory=dict)

    # -- scope management -------------------------------------------------

    def __enter__(self) -> "CostCounter":
        _counter_stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _counter_stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unbalanced exits
            stack.remove(self)

    @classmethod
    def activate(cls) -> "CostCounter":
        """Create a fresh counter; use as ``with CostCounter.activate() as c``."""
        return cls()

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "CostCounter") -> None:
        """Accumulate ``other`` into this counter (used for merging
        per-query counters into per-run totals)."""
        for f in fields(self):
            if f.name == "extra":
                for key, value in other.extra.items():
                    self.extra[key] = self.extra.get(key, 0) + value
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            if f.name == "extra":
                self.extra.clear()
            else:
                setattr(self, f.name, 0)

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for reports/JSON)."""
        out = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"}
        out.update(self.extra)
        return out

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Counter-wise difference ``after - before`` of two
        :meth:`snapshot` dicts.

        Keys missing on either side count as 0 (``extra`` counters may
        appear mid-run).  This is the primitive the execution tracer
        uses to attribute cost to a span: snapshot on entry, snapshot
        on exit, delta is the span's inclusive cost.
        """
        keys = dict.fromkeys(before)
        keys.update(dict.fromkeys(after))
        return {key: after.get(key, 0) - before.get(key, 0) for key in keys}

    @property
    def total_accesses(self) -> int:
        """Combined access count used by the Fagin-family experiments
        (sorted plus random accesses)."""
        return self.random_accesses + self.sorted_accesses

    @property
    def total_io(self) -> int:
        """Pages that actually hit the simulated disk."""
        return self.page_reads + self.page_writes

    def modeled_seconds(
        self,
        page_read_ms: float = 5.0,
        page_write_ms: float = 6.0,
        tuple_us: float = 0.5,
        comparison_us: float = 0.1,
    ) -> float:
        """Deterministic modeled execution time.

        Converts the counters into seconds using device constants
        (defaults approximate a late-90s disk + CPU, the paper's
        hardware era: ~5 ms per random page, sub-microsecond tuple
        handling).  This is the measure to use when comparing
        strategies for *speedup shape*: unlike wall-clock it is free of
        Python interpreter overhead and perfectly reproducible.
        """
        return (
            self.page_reads * page_read_ms * 1e-3
            + self.page_writes * page_write_ms * 1e-3
            + (self.tuples_read + self.tuples_written) * tuple_us * 1e-6
            + self.comparisons * comparison_us * 1e-6
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"CostCounter({parts})"


# -- charging helpers -----------------------------------------------------
#
# Kernel code calls these free functions; they charge every counter that
# is currently active, which makes nested measurement scopes "just work".


def _charge(attr: str, amount: int) -> None:
    if amount == 0:
        return
    for counter in _counter_stack():
        setattr(counter, attr, getattr(counter, attr) + amount)


def charge_page_reads(n: int = 1) -> None:
    """Charge ``n`` simulated page reads (buffer misses)."""
    _charge("page_reads", n)


def charge_page_writes(n: int = 1) -> None:
    """Charge ``n`` simulated page writes."""
    _charge("page_writes", n)


def charge_buffer_hits(n: int = 1) -> None:
    """Charge ``n`` page requests that were buffer hits."""
    _charge("buffer_hits", n)


def charge_tuples_read(n: int) -> None:
    """Charge ``n`` tuple touches on the read side."""
    _charge("tuples_read", n)


def charge_tuples_written(n: int) -> None:
    """Charge ``n`` tuple touches on the write side."""
    _charge("tuples_written", n)


def charge_comparisons(n: int) -> None:
    """Charge ``n`` comparisons (selection predicates, join probes,
    or an analytic ``n log n`` estimate for sorts)."""
    _charge("comparisons", n)


def charge_random_accesses(n: int = 1) -> None:
    """Charge ``n`` random accesses (Fagin-style middleware cost)."""
    _charge("random_accesses", n)


def charge_sorted_accesses(n: int = 1) -> None:
    """Charge ``n`` sorted accesses (Fagin-style middleware cost)."""
    _charge("sorted_accesses", n)


def charge_extra(name: str, amount: int = 1) -> None:
    """Charge an experiment-specific named counter."""
    if amount == 0:
        return
    for counter in _counter_stack():
        counter.extra[name] = counter.extra.get(name, 0) + amount


def active_counters() -> tuple["CostCounter", ...]:
    """Return the currently active counters (outermost first)."""
    return tuple(_counter_stack())


# -- deprecation shim -------------------------------------------------------
#
# PR 1 split cost accounting (this module) from column statistics
# (repro.storage.statistics); callers that still look up a column-
# statistics name here are forwarded, with a warning steering them to
# the right module.

_STATISTICS_NAMES = frozenset({
    "ColumnStatistics",
    "EquiDepthHistogram",
    "StatisticsRegistry",
    "ZoneMap",
    "analyze_column",
})


def __getattr__(name: str):
    if name in _STATISTICS_NAMES:
        import warnings

        from . import statistics as _statistics

        warnings.warn(
            f"repro.storage.stats.{name} is column statistics, not cost "
            f"accounting: import it from repro.storage.statistics instead",
            DeprecationWarning, stacklevel=2,
        )
        return getattr(_statistics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
