"""Concurrency declarations, tracked locks and the opt-in race sanitizer.

The parallel engine (PR 3) made the reproduction genuinely concurrent:
worker threads touch the buffer pool, the metrics registry and the
coordinator's merge state.  This module is the *declaration protocol*
that makes that sharing checkable — statically by
:mod:`repro.analysis.concurrency` and dynamically by the race
sanitizer defined here.

Declaration protocol
--------------------
A class (or module) that owns shared mutable state declares it::

    @declares_shared_state
    class BufferManager:
        SHARED_STATE = {"_pool": "_lock", "requests": "_lock"}

Each key is an attribute name; each value is either the name of the
lock attribute that must be held for every write, or one of the
markers:

* ``"<thread-confined>"`` — only ever accessed by its owning thread;
* ``"<barrier>"`` — writes are separated by an external happens-before
  barrier (e.g. the executor's round boundary: every round-1 future is
  resolved before any round-2 task is submitted);
* ``"<config>"`` — mutated only during single-threaded configuration
  (module import, test setup), never on a worker path.

Helpers called with a lock already held declare it::

    @guarded_by("_lock")
    def _admit(self, key): ...

Classes with a *seal* discipline (a flag after which an attribute is
read-only) add ``SEALED_BY = {"attr": "flag_name"}``.

Resource-lifecycle declarations (PR 9) extend the protocol for the
:mod:`repro.analysis.lifecycle` analyzer (the ``MOA11xx`` family):

* ``@acquires(kind)`` marks a function whose return value is a *held*
  resource handle of ``kind`` (a factory: ``ExecutorPool.admit`` hands
  out a pool slot, ``SessionRegistry.issue`` a busy session).  Inside
  such a factory, handing the held handle out *is* the contract, so
  the analyzer exempts it from leak/escape reporting for that kind.
* ``@releases(kind)`` marks the function that gives a handle of
  ``kind`` back (``ServeSession.release``, ``SessionRegistry.drop``).
  A call passing a tracked handle (or one of its attributes, e.g.
  ``session.token``) to a release method transitions it to released.
* ``LOCK_LEAF = True`` on a class declares its lock a *leaf* in the
  lock-order graph: no other lock is ever acquired while it is held.
  The static lock-order pass (MOA1105) verifies the claim — an
  out-edge from a declared-leaf lock is reported.

Both decorators are pure markers (one attribute set, zero call
overhead); the analyzer reads them from the AST, so annotated modules
never need the analyzer importable.

The sanitizer
-------------
Disabled by default and free when disabled (classes are not even
patched).  ``REPRO_SANITIZE=1`` (checked at ``import repro``) or an
explicit :func:`install_sanitizer` turns it on: every registered
class's ``__setattr__`` then checks declared writes against the
current thread's *lockset* (maintained by :class:`TrackedLock`),
declared containers are wrapped in access-recording proxies, lock
acquisition order is recorded in a global graph (inversions are
reported), and ``@guarded_by`` calls verify the named lock is held.
Findings accumulate as :class:`RaceViolation` records readable via
:func:`violations`.
"""

from __future__ import annotations

import functools
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

__all__ = [
    "ACQUIRE_METHODS",
    "BARRIER",
    "CONFIG",
    "KEYED_ACQUIRE_METHODS",
    "KEYED_RELEASE_METHODS",
    "MARKERS",
    "RELEASE_METHODS",
    "RESOURCE_KINDS",
    "RaceViolation",
    "SANITIZE_ENV",
    "THREAD_CONFINED",
    "TrackedLock",
    "acquires",
    "auto_install",
    "declares_shared_state",
    "guarded_by",
    "install_sanitizer",
    "lock_order_edges",
    "make_lock",
    "releases",
    "reset_violations",
    "sanitizer_active",
    "uninstall_sanitizer",
    "violations",
]

#: environment variable that turns the sanitizer on at ``import repro``
SANITIZE_ENV = "REPRO_SANITIZE"

#: declaration markers (values of ``SHARED_STATE`` besides lock names)
THREAD_CONFINED = "<thread-confined>"
BARRIER = "<barrier>"
CONFIG = "<config>"
MARKERS = (THREAD_CONFINED, BARRIER, CONFIG)

# -- sanitizer state --------------------------------------------------------
#
# _state_lock is a *plain* lock (a TrackedLock here would recurse into
# its own bookkeeping); everything below it is declared so the static
# analyzer holds this module to its own discipline.

SHARED_STATE = {
    "_active": "<config>",
    "_patched": "<config>",
    "_shared_classes": "<config>",
    "_violations": "_state_lock",
    "_order_edges": "_state_lock",
    "_confined": "_state_lock",
}

_state_lock = threading.Lock()
_active = False
_shared_classes: list[type] = []
_patched: dict[type, tuple] = {}
_violations: list["RaceViolation"] = []
#: (held_lock_name, acquired_lock_name) -> thread name that first saw it
_order_edges: dict[tuple[str, str], str] = {}
#: (id(owner), attr) -> owning thread ident, for <thread-confined> state
_confined: dict[tuple[int, str], int] = {}

_held = threading.local()


def _held_stack() -> list["TrackedLock"]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


@dataclass(frozen=True)
class RaceViolation:
    """One sanitizer finding.

    ``kind`` is ``unguarded-write`` (declared lock not held),
    ``unguarded-call`` (``@guarded_by`` entered without the lock),
    ``confinement`` (thread-confined state touched cross-thread),
    ``write-after-seal`` or ``lock-order``.
    """

    kind: str
    where: str
    thread: str
    detail: str

    def render(self) -> str:
        return f"{self.kind} at {self.where} [{self.thread}]: {self.detail}"


def _report(violation: RaceViolation) -> None:
    with _state_lock:
        _violations.append(violation)


def violations() -> tuple[RaceViolation, ...]:
    """All violations recorded since the last :func:`reset_violations`."""
    with _state_lock:
        return tuple(_violations)


def reset_violations() -> None:
    """Clear recorded violations, the order graph and confinement map."""
    with _state_lock:
        _violations.clear()
        _order_edges.clear()
        _confined.clear()


def lock_order_edges() -> dict[tuple[str, str], str]:
    """Copy of the observed lock-acquisition-order graph."""
    with _state_lock:
        return dict(_order_edges)


def sanitizer_active() -> bool:
    return _active


# -- tracked locks ----------------------------------------------------------


class TrackedLock:
    """A named mutex that maintains the per-thread lockset.

    Wraps a plain :class:`threading.Lock`; while the sanitizer is
    active every acquisition is pushed on the acquiring thread's
    lockset (so declared writes can be checked against it) and
    recorded in the global acquisition-order graph, where a reversed
    edge is reported as a ``lock-order`` violation.  Inactive overhead
    is one global read per acquire/release.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and _active:
            self._push()
        return acquired

    def release(self) -> None:
        if _active:
            self._pop()
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_me(self) -> bool:
        """Whether the *current thread* holds this lock (sanitizer on)."""
        return any(lock is self for lock in _held_stack())

    def _push(self) -> None:
        stack = _held_stack()
        if stack:
            thread = threading.current_thread().name
            with _state_lock:
                for held in stack:
                    if held.name == self.name:
                        continue
                    edge = (held.name, self.name)
                    if edge not in _order_edges:
                        _order_edges[edge] = thread
                    reverse = (self.name, held.name)
                    if reverse in _order_edges:
                        _violations.append(RaceViolation(
                            kind="lock-order",
                            where=f"{held.name} -> {self.name}",
                            thread=thread,
                            detail=(f"acquired {self.name!r} while holding "
                                    f"{held.name!r}, but the reverse order was "
                                    f"seen on thread {_order_edges[reverse]!r}"),
                        ))
        stack.append(self)

    def _pop(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                return

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedLock({self.name!r}, locked={self.locked()})"


def make_lock(name: str) -> TrackedLock:
    """The lock constructor declared shared state should use."""
    return TrackedLock(name)


def _lock_held(lock) -> bool:
    """Best-effort 'does the current thread hold this lock'."""
    if isinstance(lock, TrackedLock):
        return lock.held_by_me()
    if lock is None:
        return False
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:  # RLock: exact ownership
        return bool(is_owned())
    locked = getattr(lock, "locked", None)
    if locked is not None:  # plain Lock: held by *someone*
        return bool(locked())
    return False


# -- declarations -----------------------------------------------------------


def guarded_by(lock_name: str):
    """Declare that callers must hold ``self.<lock_name>`` around this
    method.  The static analyzer treats the lock as held for the body;
    the sanitizer verifies the claim at call time when active."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _active:
                lock = getattr(self, lock_name, None)
                if not _lock_held(lock):
                    _report(RaceViolation(
                        kind="unguarded-call",
                        where=f"{type(self).__name__}.{fn.__name__}",
                        thread=threading.current_thread().name,
                        detail=f"entered without holding {lock_name!r}",
                    ))
            return fn(self, *args, **kwargs)

        wrapper.__guarded_by__ = lock_name
        return wrapper

    return decorate


# -- resource-lifecycle declarations ----------------------------------------

#: resource kinds the lifecycle analyzer tracks as typestates
RESOURCE_KINDS = ("lock", "slot", "session", "pin")

#: method names that hand out a held handle when their result is bound
#: (``h = recv.admit(...)`` / ``with recv.admit():``); a *discarded*
#: result is not an acquisition — ``BufferManager._ensure_capacity``'s
#: ``self._policy.admit(key)`` is a replacement-policy verb, not a
#: resource, and only the bound/scoped forms can be paired anyway
ACQUIRE_METHODS = {
    "admit": "slot",
    "issue": "session",
    "redeem": "session",
}

#: method names that give a tracked handle back: the handle appears as
#: the receiver (``session.release()``) or an argument / argument
#: attribute (``registry.drop(session.token)``)
RELEASE_METHODS = {
    "release": "session",
    "drop": "session",
}

#: statement-form pairs keyed by their receiver: ``buf.pin(seg, page)``
#: acquires the receiver-keyed pin resource, ``buf.unpin(...)`` releases
KEYED_ACQUIRE_METHODS = {"pin": "pin"}
KEYED_RELEASE_METHODS = {"unpin": "pin"}


def acquires(kind: str):
    """Declare that this function returns a *held* resource handle of
    ``kind`` — a factory the lifecycle analyzer (MOA11xx) treats as the
    acquisition site's implementation, exempt from leak/escape
    reporting for that kind.  Pure marker: sets ``__acquires__``."""
    if kind not in RESOURCE_KINDS:
        raise ValueError(
            f"unknown resource kind {kind!r}; have {RESOURCE_KINDS}")

    def decorate(fn):
        fn.__acquires__ = kind
        return fn

    return decorate


def releases(kind: str):
    """Declare that this function releases a handle of ``kind`` passed
    to it (or owned by its receiver).  Pure marker: sets
    ``__releases__``; read from the AST by the lifecycle analyzer."""
    if kind not in RESOURCE_KINDS:
        raise ValueError(
            f"unknown resource kind {kind!r}; have {RESOURCE_KINDS}")

    def decorate(fn):
        fn.__releases__ = kind
        return fn

    return decorate


def declares_shared_state(cls: type) -> type:
    """Class decorator registering ``cls.SHARED_STATE`` (and optional
    ``SEALED_BY``) with the sanitizer.  Free when the sanitizer is off;
    when on, the class is instrumented immediately."""
    _shared_classes.append(cls)
    if _active:
        _instrument_class(cls)
    return cls


# -- runtime checks ---------------------------------------------------------


def _check_seal(owner, attr: str, op: str) -> None:
    flag = getattr(type(owner), "SEALED_BY", {}).get(attr)
    if flag and getattr(owner, flag, False):
        _report(RaceViolation(
            kind="write-after-seal",
            where=f"{type(owner).__name__}.{attr}",
            thread=threading.current_thread().name,
            detail=f"{op} after {flag!r} was set",
        ))


def _check_write(owner, attr: str, decl: str, op: str) -> None:
    if decl in (CONFIG, BARRIER):
        return
    where = f"{type(owner).__name__}.{attr}"
    me = threading.get_ident()
    if decl == THREAD_CONFINED:
        with _state_lock:
            first = _confined.setdefault((id(owner), attr), me)
        if first != me:
            _report(RaceViolation(
                kind="confinement",
                where=where,
                thread=threading.current_thread().name,
                detail=f"{op} of thread-confined state from a foreign thread",
            ))
        return
    lock = getattr(owner, decl, None)
    if not _lock_held(lock):
        _report(RaceViolation(
            kind="unguarded-write",
            where=where,
            thread=threading.current_thread().name,
            detail=f"{op} without holding {decl!r}",
        ))


def _check_read(owner, attr: str, decl: str) -> None:
    if decl == THREAD_CONFINED:
        _check_write(owner, attr, decl, "read")


# -- container proxies ------------------------------------------------------

_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "reverse", "setdefault", "sort", "update",
})

_WRAPPABLE = (dict, list, deque, OrderedDict, set)


class GuardedContainer:
    """Access-recording proxy around one declared container attribute.

    Mutating operations check the owner's declared lock discipline and
    the seal flag; reads of thread-confined state check the accessor.
    Everything else delegates to the wrapped container, so iteration,
    membership, ``len`` and lookups behave identically.
    """

    __slots__ = ("_repro_inner", "_repro_owner", "_repro_attr", "_repro_decl")

    def __init__(self, inner, owner, attr: str, decl: str) -> None:
        object.__setattr__(self, "_repro_inner", inner)
        object.__setattr__(self, "_repro_owner", owner)
        object.__setattr__(self, "_repro_attr", attr)
        object.__setattr__(self, "_repro_decl", decl)

    def _repro_check(self, op: str) -> None:
        if not _active:
            return
        owner = self._repro_owner
        attr = self._repro_attr
        _check_seal(owner, attr, op)
        _check_write(owner, attr, self._repro_decl, op)

    def __getattr__(self, name):
        value = getattr(self._repro_inner, name)
        if name in _MUTATORS and callable(value):
            proxy = self

            @functools.wraps(value)
            def guarded(*args, **kwargs):
                proxy._repro_check(name)
                return value(*args, **kwargs)

            return guarded
        return value

    def __setitem__(self, key, value) -> None:
        self._repro_check("__setitem__")
        self._repro_inner[key] = value

    def __delitem__(self, key) -> None:
        self._repro_check("__delitem__")
        del self._repro_inner[key]

    def __getitem__(self, key):
        if _active:
            _check_read(self._repro_owner, self._repro_attr, self._repro_decl)
        return self._repro_inner[key]

    def __contains__(self, item) -> bool:
        return item in self._repro_inner

    def __iter__(self):
        return iter(self._repro_inner)

    def __len__(self) -> int:
        return len(self._repro_inner)

    def __bool__(self) -> bool:
        return bool(self._repro_inner)

    def __eq__(self, other) -> bool:
        if isinstance(other, GuardedContainer):
            other = other._repro_inner
        return self._repro_inner == other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GuardedContainer({self._repro_inner!r})"


def _maybe_wrap(owner, attr: str, decl: str, value):
    if decl == CONFIG or isinstance(value, GuardedContainer):
        return value
    if isinstance(value, _WRAPPABLE):
        return GuardedContainer(value, owner, attr, decl)
    return value


# -- class instrumentation --------------------------------------------------


def _has_attr(obj, name: str) -> bool:
    try:
        object.__getattribute__(obj, name)
        return True
    except AttributeError:
        return False


def _constructed(obj, name: str) -> bool:
    """Whether the attribute already exists *on the instance*.  A class
    attribute does not count: dataclass field defaults live on the
    class, so the generated ``__init__``'s first assignment must still
    fall under the construction exemption.  ``__slots__`` classes have
    no instance ``__dict__``; there an unset slot raises
    ``AttributeError`` and a slot cannot shadow a class default."""
    try:
        instance_dict = object.__getattribute__(obj, "__dict__")
    except AttributeError:
        return _has_attr(obj, name)
    return name in instance_dict


def _instrument_class(cls: type) -> None:
    if cls in _patched:
        return
    decls = dict(getattr(cls, "SHARED_STATE", {}))
    orig_setattr = cls.__setattr__
    orig_init = cls.__init__

    def checking_setattr(self, name, value):
        decl = decls.get(name)
        if decl is not None and _active:
            if _constructed(self, name):  # first assignment is construction
                _check_seal(self, name, "assign")
                _check_write(self, name, decl, "assign")
            value = _maybe_wrap(self, name, decl, value)
        orig_setattr(self, name, value)

    @functools.wraps(orig_init)
    def wrapping_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        if _active:
            for name, decl in decls.items():
                if _has_attr(self, name):
                    raw = object.__getattribute__(self, name)
                    wrapped = _maybe_wrap(self, name, decl, raw)
                    if wrapped is not raw:
                        orig_setattr(self, name, wrapped)

    cls.__setattr__ = checking_setattr
    cls.__init__ = wrapping_init
    _patched[cls] = (orig_setattr, orig_init)


def install_sanitizer() -> None:
    """Turn on dynamic race checking: instrument every registered class."""
    global _active
    _active = True
    for cls in list(_shared_classes):
        _instrument_class(cls)


def uninstall_sanitizer() -> None:
    """Restore original class hooks and stop checking.  Containers
    already wrapped stay wrapped but become inert (they check
    :func:`sanitizer_active` first)."""
    global _active
    _active = False
    for cls, (orig_setattr, orig_init) in _patched.items():
        cls.__setattr__ = orig_setattr
        cls.__init__ = orig_init
    _patched.clear()
    reset_violations()


def _report_at_exit() -> None:
    found = violations()
    if found:
        import sys

        print(f"repro sanitizer: {len(found)} race violation(s)",
              file=sys.stderr)
        for violation in found:
            print(f"  {violation.render()}", file=sys.stderr)


def auto_install() -> bool:
    """Install the sanitizer when ``REPRO_SANITIZE`` is set (truthy);
    called once from ``import repro``.  Violations still pending at
    interpreter exit are printed to stderr (pytest runs read them via
    :func:`violations` instead and reset between tests)."""
    if os.environ.get(SANITIZE_ENV, "") not in ("", "0"):
        import atexit

        install_sanitizer()
        atexit.register(_report_at_exit)
        return True
    return False
