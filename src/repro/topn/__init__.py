"""Top-N operator library: the safe and unsafe techniques the paper
surveys and proposes to integrate.

Safe (exact top-N):

* :func:`~repro.topn.naive.naive_topn` — full evaluation baseline;
* :func:`~repro.topn.fagin.fagin_topn` — Fagin's Algorithm (FA);
* :func:`~repro.topn.ta.threshold_topn` — Threshold Algorithm (TA);
* :func:`~repro.topn.nra.nra_topn` — No-Random-Access (NRA);
* :mod:`~repro.topn.stopafter` — Carey–Kossmann STOP AFTER policies;
* :mod:`~repro.topn.probabilistic` — Donjerkovic–Ramakrishnan
  histogram-cutoff top-N (exact via restarts).

Unsafe (quality traded for speed):

* :func:`~repro.topn.quit_continue.quit_continue_topn` —
  Brown/INQUERY-style quit & continue term pruning.
"""

from .aggregates import (
    AVG,
    BUILTIN_AGGREGATES,
    AggregateFunction,
    MAX,
    MIN,
    PROD,
    Product,
    SUM,
    UserAggregate,
    WeightedSum,
    require_monotone,
)
from .blocked import blocked_combined_topn, blocked_nra_topn, blocked_threshold_topn
from .ca import combined_topn
from .fagin import fagin_topn
from .heap import BoundedTopN
from .naive import conjunctive_topn, naive_full_ranking, naive_topn, naive_topn_sources
from .nra import nra_topn
from .probabilistic import ScoreHistogram, probabilistic_topn, probabilistic_topn_indexed
from .quit_continue import quit_continue_topn
from .result import RankedItem, TopNResult
from .stopafter import classic_topn, scan_stop, sort_stop, stop_after_filter
from .ta import threshold_topn

__all__ = [
    "AVG",
    "AggregateFunction",
    "BUILTIN_AGGREGATES",
    "BoundedTopN",
    "MAX",
    "MIN",
    "PROD",
    "Product",
    "RankedItem",
    "SUM",
    "ScoreHistogram",
    "TopNResult",
    "UserAggregate",
    "WeightedSum",
    "require_monotone",
    "blocked_combined_topn",
    "blocked_nra_topn",
    "blocked_threshold_topn",
    "classic_topn",
    "conjunctive_topn",
    "combined_topn",
    "fagin_topn",
    "naive_full_ranking",
    "naive_topn",
    "naive_topn_sources",
    "nra_topn",
    "probabilistic_topn",
    "probabilistic_topn_indexed",
    "quit_continue_topn",
    "scan_stop",
    "sort_stop",
    "stop_after_filter",
    "threshold_topn",
]
