"""Monotone aggregation functions for multi-source (fuzzy) queries.

Fagin's algorithms combine per-source grades with a *monotone*
aggregation function t: increasing any grade never decreases the
aggregate.  Monotonicity is what makes upper/lower bound
administration sound — TA's threshold τ = t(last grades) bounds every
unseen object *only because* t is monotone, and the same goes for
NRA/CA's upper bounds and the coordinator's merge thresholds.

Every aggregate therefore *declares* its bound-relevant metadata
instead of the engines assuming it:

* ``monotone`` — increasing any grade never decreases the aggregate.
  The threshold engines (:func:`~repro.topn.ta.threshold_topn`,
  :func:`~repro.topn.nra.nra_topn`, :func:`~repro.topn.ca.combined_topn`,
  :func:`~repro.topn.fagin.fagin_topn`) call :func:`require_monotone`
  and refuse non-monotone aggregates outright — handing one to TA used
  to silently produce wrong stop decisions;
* ``strict`` — strictly increasing in every argument (a zero-weighted
  source makes ``WeightedSum`` monotone but not strict: ties can then
  hide grade differences the bound administration cannot see);
* ``combine_interval`` — the aggregate's *interval transfer function*:
  given a certified :class:`~repro.intervals.ScoreInterval` per source,
  it returns a certified interval for the aggregate.  The bound-flow
  analyzer (:mod:`repro.analysis.bounds`) uses this to derive score
  intervals across plan edges; conservativeness ("the derived interval
  always contains the true score") is property-tested per aggregate.

:class:`WeightedSum` implements the user-weighted query terms of
Fagin & Maarek [FM] cited by the paper; :class:`Product` is the
probabilistic conjunction (independent-event AND) over ``[0, 1]``
grades; :class:`UserAggregate` wraps arbitrary user callables with
*declared* metadata, defaulting to non-monotone — the safe default,
since an undeclared aggregate certifies nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import TopNError
from ..intervals import ScoreInterval, sum_of


@dataclass(frozen=True)
class AggregateFunction:
    """A named aggregation over an m-vector of grades.

    Subclasses declare ``monotone`` / ``strict`` class attributes and
    implement :meth:`combine` plus the interval transfer
    :meth:`combine_interval`.
    """

    name: str

    #: increasing any grade never decreases the aggregate — the
    #: precondition of every threshold/bound administration
    monotone: bool = True
    #: strictly increasing in every argument
    strict: bool = True

    def combine(self, grades: Sequence[float]) -> float:
        raise NotImplementedError

    def combine_interval(self, intervals: Sequence[ScoreInterval]) -> ScoreInterval:
        """Certified interval of ``combine`` over per-source intervals.

        The default refuses (no transfer declared): the bound analyzer
        then derives nothing and flags threshold use (MOA901/903)."""
        raise TopNError(
            f"aggregate {self.name!r} declares no interval transfer; "
            f"the bound analyzer cannot certify plans that use it")

    def validate_arity(self, m: int) -> None:
        """Hook for aggregates that require a fixed arity."""


class Sum(AggregateFunction):
    """Sum of grades — the standard IR score accumulation."""

    def __init__(self) -> None:
        super().__init__("sum")

    def combine(self, grades):
        return float(sum(grades))

    def combine_interval(self, intervals):
        return sum_of(intervals)


class Avg(AggregateFunction):
    """Arithmetic mean (monotone; order-equivalent to sum)."""

    def __init__(self) -> None:
        super().__init__("avg")

    def combine(self, grades):
        return float(sum(grades)) / len(grades) if grades else 0.0

    def combine_interval(self, intervals):
        if not intervals:
            return ScoreInterval.point(0.0)
        return sum_of(intervals).scale(1.0 / len(intervals))


class Min(AggregateFunction):
    """Fuzzy conjunction (Fagin's running example).  Monotone but not
    strict: raising a non-minimal grade leaves the aggregate unchanged."""

    def __init__(self) -> None:
        super().__init__("min", strict=False)

    def combine(self, grades):
        return float(min(grades)) if grades else 0.0

    def combine_interval(self, intervals):
        if not intervals:
            return ScoreInterval.point(0.0)
        out = intervals[0]
        for interval in intervals[1:]:
            out = out.min_with(interval)
        return out


class Max(AggregateFunction):
    """Fuzzy disjunction.  Monotone, not strict."""

    def __init__(self) -> None:
        super().__init__("max", strict=False)

    def combine(self, grades):
        return float(max(grades)) if grades else 0.0

    def combine_interval(self, intervals):
        if not intervals:
            return ScoreInterval.point(0.0)
        out = intervals[0]
        for interval in intervals[1:]:
            out = out.max_with(interval)
        return out


class WeightedSum(AggregateFunction):
    """User-weighted sum of grades ([FM]: "Allowing users to weight
    search terms").  Weights must be non-negative (monotonicity); a
    zero weight keeps the aggregate monotone but drops strictness —
    that source's grades become invisible to the bound administration."""

    def __init__(self, weights: Sequence[float]) -> None:
        weights = tuple(float(w) for w in weights)
        if not weights:
            raise TopNError("WeightedSum needs at least one weight")
        if any(w < 0 or math.isnan(w) for w in weights):
            raise TopNError(f"weights must be non-negative, got {weights}")
        super().__init__("wsum", strict=all(w > 0 for w in weights))
        object.__setattr__(self, "weights", weights)

    def combine(self, grades):
        if len(grades) != len(self.weights):
            raise TopNError(
                f"WeightedSum arity mismatch: {len(grades)} grades, {len(self.weights)} weights"
            )
        return float(sum(w * g for w, g in zip(self.weights, grades)))

    def combine_interval(self, intervals):
        if len(intervals) != len(self.weights):
            raise TopNError(
                f"WeightedSum arity mismatch: {len(intervals)} intervals, "
                f"{len(self.weights)} weights")
        return sum_of([interval.scale(w)
                       for w, interval in zip(self.weights, intervals)])

    def validate_arity(self, m: int) -> None:
        if m != len(self.weights):
            raise TopNError(
                f"WeightedSum has {len(self.weights)} weights but the query has {m} sources"
            )


class Product(AggregateFunction):
    """Probabilistic conjunction: the product of ``[0, 1]`` grades
    (independent-event AND).  Monotone on the non-negative domain the
    graded sources live in; not strict — a zero grade annihilates the
    product regardless of the other sources."""

    def __init__(self) -> None:
        super().__init__("prob", strict=False)

    def combine(self, grades):
        out = 1.0
        for grade in grades:
            if grade < 0:
                raise TopNError(
                    f"Product is only monotone over non-negative grades, got {grade}")
            out *= float(grade)
        return out

    def combine_interval(self, intervals):
        # clamp to the declared non-negative domain first: the product
        # transfer is only monotone (and hence certified) there
        out = ScoreInterval.point(1.0)
        for interval in intervals:
            clamped = interval.clamp(0.0, math.inf)
            if clamped is None:
                raise TopNError(
                    f"Product transfer needs non-negative grades, got "
                    f"{interval.describe()}")
            out = out.multiply(clamped)
        return out


@dataclass(frozen=True, init=False)
class UserAggregate(AggregateFunction):
    """A user-supplied combine function with *declared* metadata.

    Defaults to ``monotone=False``: an undeclared aggregate certifies
    nothing, and the threshold engines will refuse it via
    :func:`require_monotone`.  Users who know their function is
    monotone declare it — and may supply an interval ``transfer`` so
    the bound analyzer can certify plans that use it.
    """

    def __init__(self, name: str, fn: Callable[[Sequence[float]], float],
                 monotone: bool = False, strict: bool = False,
                 transfer: Callable[[Sequence[ScoreInterval]], ScoreInterval] | None = None,
                 ) -> None:
        super().__init__(name, monotone=monotone, strict=strict)
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "transfer", transfer)

    def combine(self, grades):
        return float(self.fn(grades))

    def combine_interval(self, intervals):
        if self.transfer is None:
            return super().combine_interval(intervals)
        return self.transfer(intervals)


def require_monotone(agg: AggregateFunction, engine: str) -> None:
    """Refuse a non-monotone aggregate where threshold administration
    depends on monotonicity.

    Every Fagin-family stop rule argues "no unseen object can beat the
    bound" from t's monotonicity; with a non-monotone t the argument —
    and the answer — is simply wrong.  This is the runtime twin of the
    static MOA901 check.
    """
    monotone = getattr(agg, "monotone", False)
    if not monotone:
        raise TopNError(
            f"aggregate {agg.name!r} is not declared monotone: {engine} "
            f"threshold administration is unsound under it (the stop rule "
            f"assumes increasing a grade never decreases the aggregate). "
            f"Use naive_topn_sources, or declare monotone=True if the "
            f"function really is monotone.")


SUM = Sum()
AVG = Avg()
MIN = Min()
MAX = Max()
PROD = Product()

#: the registered built-ins, by name (the analyzer and CLI look
#: aggregates up here)
BUILTIN_AGGREGATES: dict[str, AggregateFunction] = {
    agg.name: agg for agg in (SUM, AVG, MIN, MAX, PROD)
}
