"""Monotone aggregation functions for multi-source (fuzzy) queries.

Fagin's algorithms combine per-source grades with a *monotone*
aggregation function t: increasing any grade never decreases the
aggregate.  Monotonicity is what makes upper/lower bound
administration sound.  :class:`WeightedSum` implements the
user-weighted query terms of Fagin & Maarek [FM] cited by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import TopNError


@dataclass(frozen=True)
class AggregateFunction:
    """A named monotone aggregation over an m-vector of grades."""

    name: str

    def combine(self, grades: Sequence[float]) -> float:
        raise NotImplementedError

    def validate_arity(self, m: int) -> None:
        """Hook for aggregates that require a fixed arity."""


class Sum(AggregateFunction):
    """Sum of grades — the standard IR score accumulation."""

    def __init__(self) -> None:
        super().__init__("sum")

    def combine(self, grades):
        return float(sum(grades))


class Avg(AggregateFunction):
    """Arithmetic mean (monotone; order-equivalent to sum)."""

    def __init__(self) -> None:
        super().__init__("avg")

    def combine(self, grades):
        return float(sum(grades)) / len(grades) if grades else 0.0


class Min(AggregateFunction):
    """Fuzzy conjunction (Fagin's running example)."""

    def __init__(self) -> None:
        super().__init__("min")

    def combine(self, grades):
        return float(min(grades)) if grades else 0.0


class Max(AggregateFunction):
    """Fuzzy disjunction."""

    def __init__(self) -> None:
        super().__init__("max")

    def combine(self, grades):
        return float(max(grades)) if grades else 0.0


class WeightedSum(AggregateFunction):
    """User-weighted sum of grades ([FM]: "Allowing users to weight
    search terms").  Weights must be non-negative (monotonicity)."""

    def __init__(self, weights: Sequence[float]) -> None:
        weights = tuple(float(w) for w in weights)
        if not weights:
            raise TopNError("WeightedSum needs at least one weight")
        if any(w < 0 for w in weights):
            raise TopNError(f"weights must be non-negative, got {weights}")
        super().__init__("wsum")
        object.__setattr__(self, "weights", weights)

    def combine(self, grades):
        if len(grades) != len(self.weights):
            raise TopNError(
                f"WeightedSum arity mismatch: {len(grades)} grades, {len(self.weights)} weights"
            )
        return float(sum(w * g for w, g in zip(self.weights, grades)))

    def validate_arity(self, m: int) -> None:
        if m != len(self.weights):
            raise TopNError(
                f"WeightedSum has {len(self.weights)} weights but the query has {m} sources"
            )


SUM = Sum()
AVG = Avg()
MIN = Min()
MAX = Max()
