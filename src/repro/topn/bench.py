"""The ``repro bench-blocks`` harness.

Measures the tentpole claim of the blocked access path: the
block-at-a-time engines (:mod:`repro.topn.blocked`) return the exact
scalar answer while replacing the per-posting Python loop with numpy
batch work — so the wall-clock win is the interpretation overhead the
paper's block-at-a-time argument is about, not an accuracy trade.

Every timed pair is verified (a blocked answer that differs from the
scalar oracle is a defect, never a statistic): ids *and* scores must be
bit-identical, canonical tie order included.  Timings cover the engine
call only; source construction (sorting, blocking) is excluded from
both sides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

#: engines exercised: scalar reference -> blocked variant
BLOCK_ENGINES = ("ta", "nra", "ca")


@dataclass
class BlockBenchRow:
    """Scalar-vs-blocked measurements for one (engine, block size)."""

    engine: str
    block_size: int
    queries: int
    seconds_scalar: float
    seconds_blocked: float
    #: answers that differed from the scalar oracle (must stay 0)
    mismatches: int = 0
    blocks_read: int = 0
    blocks_skipped: int = 0

    @property
    def speedup(self) -> float:
        if self.seconds_blocked == 0:
            return float("inf")
        return self.seconds_scalar / self.seconds_blocked

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        out["speedup"] = (None if self.seconds_blocked == 0
                          else round(self.speedup, 3))
        return out


@dataclass
class BenchBlocksReport:
    """Everything ``repro bench-blocks`` prints."""

    n_objects: int
    m_sources: int
    n: int
    block_sizes: tuple
    rows: list[BlockBenchRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every blocked answer matched the scalar oracle exactly."""
        return all(row.mismatches == 0 for row in self.rows)

    @property
    def best_speedup(self) -> float:
        """The best blocked-vs-scalar wall-clock factor of any row."""
        return max((row.speedup for row in self.rows), default=0.0)

    def best_for(self, engine: str) -> float:
        return max((row.speedup for row in self.rows
                    if row.engine == engine), default=0.0)

    def to_dict(self) -> dict:
        return {
            "n_objects": self.n_objects,
            "m_sources": self.m_sources,
            "n": self.n,
            "block_sizes": list(self.block_sizes),
            "ok": self.ok,
            "best_speedup": (None if not self.rows else round(self.best_speedup, 3)),
            "rows": [row.to_dict() for row in self.rows],
        }


def _run_scalar(engine: str, sources, n: int):
    from .ca import combined_topn
    from .nra import nra_topn
    from .ta import threshold_topn

    if engine == "ta":
        return threshold_topn(sources, n)
    if engine == "nra":
        return nra_topn(sources, n, check_every=16)
    return combined_topn(sources, n, h=4, check_every=8)


def _run_blocked(engine: str, sources, n: int):
    from .blocked import blocked_combined_topn, blocked_nra_topn, blocked_threshold_topn

    if engine == "ta":
        return blocked_threshold_topn(sources, n)
    if engine == "nra":
        return blocked_nra_topn(sources, n, check_every=16)
    return blocked_combined_topn(sources, n, h=4, check_every=8)


def bench_blocks(
    scale: float = 0.15,
    seed: int = 7,
    queries: int = 3,
    n: int = 10,
    m: int = 3,
    block_sizes: tuple = (16, 128, 1024),
) -> BenchBlocksReport:
    """Run the scalar-vs-blocked comparison; see the module docstring.

    The corpus is the E15-style multi-feature workload: ``queries``
    independent (objects x ``m``) uniform grade matrices, each answered
    at top-``n`` by every engine pair, per block size.
    """
    from ..mm.sources import ArraySource, BlockedSource

    n_objects = max(int(20_000 * scale), 2000)
    rng = np.random.default_rng(seed)
    matrices = [rng.random((n_objects, m)) for _ in range(max(1, queries))]

    report = BenchBlocksReport(n_objects=n_objects, m_sources=m, n=n,
                               block_sizes=tuple(int(b) for b in block_sizes))
    # scalar reference: once per engine, shared across block sizes
    scalar_refs: dict[str, list] = {}
    scalar_secs: dict[str, float] = {}
    for engine in BLOCK_ENGINES:
        refs = []
        started = time.perf_counter()
        for matrix in matrices:
            sources = [ArraySource(matrix[:, j], name=f"s{j}") for j in range(m)]
            refs.append(_run_scalar(engine, sources, n))
        scalar_secs[engine] = time.perf_counter() - started
        scalar_refs[engine] = refs

    for block_size in report.block_sizes:
        blocked_sources = [
            [BlockedSource.from_array(matrix[:, j], block_size, name=f"s{j}")
             for j in range(m)]
            for matrix in matrices
        ]
        for engine in BLOCK_ENGINES:
            row = BlockBenchRow(engine=engine, block_size=block_size,
                                queries=len(matrices),
                                seconds_scalar=scalar_secs[engine],
                                seconds_blocked=0.0)
            started = time.perf_counter()
            results = [_run_blocked(engine, sources, n)
                       for sources in blocked_sources]
            row.seconds_blocked = time.perf_counter() - started
            for reference, candidate in zip(scalar_refs[engine], results):
                if (reference.doc_ids != candidate.doc_ids
                        or reference.scores != candidate.scores):
                    row.mismatches += 1
                row.blocks_read += candidate.stats.get("blocks_read", 0)
                row.blocks_skipped += candidate.stats.get("blocks_skipped", 0)
            report.rows.append(row)
    return report


def render_report(report: BenchBlocksReport) -> str:
    """Fixed-width text table (the CLI's default output)."""
    lines = [
        f"bench-blocks: {report.n_objects} objects x {report.m_sources} "
        f"sources, top-{report.n}",
        f"{'engine':8} {'block':>6} {'scalar s':>9} {'blocked s':>10} "
        f"{'speedup':>8} {'skipped':>8} {'ok':>3}",
    ]
    for row in report.rows:
        lines.append(
            f"{row.engine:8} {row.block_size:>6} {row.seconds_scalar:>9.3f} "
            f"{row.seconds_blocked:>10.3f} {row.speedup:>8.2f} "
            f"{row.blocks_skipped:>8} {'no' if row.mismatches else 'yes':>3}"
        )
    lines.append(f"best speedup: {report.best_speedup:.2f}x "
                 f"({'all answers exact' if report.ok else 'MISMATCHES'})")
    return "\n".join(lines)
