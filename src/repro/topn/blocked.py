"""Block-at-a-time vectorized Fagin-family engines.

The scalar engines (:func:`~repro.topn.ta.threshold_topn`,
:func:`~repro.topn.nra.nra_topn`, :func:`~repro.topn.ca.combined_topn`)
walk one posting per Python iteration — the dominant constant factor at
bench scale.  The variants here consume whole storage blocks
(:class:`~repro.mm.sources.BlockedSource`) and do numpy batch work
between threshold checks: vectorized grade accumulation, argpartition/
lexsort for frontier maintenance, and block-max pruning — whole blocks
whose score upper bound falls below the current decision threshold are
never read (``blocks_skipped`` in the result stats and the
``topn.blocks_skipped`` metric).

Exactness contract
------------------
Every blocked engine returns a result **bit-identical** to its scalar
oracle — same ids, same score floats, same canonical tie order — on any
input and any block size.  Three mechanisms carry that guarantee:

* *Same float association.*  Scores are combined column-by-column in
  source order (``acc = (acc + col)``), the exact left-to-right fold
  ``Aggregate.combine`` performs on a Python list, so reordered numpy
  summation can never produce a different float.
* *Same stop depths.*  TA's stop rule (``n``-th best >= τ) is monotone
  in depth — τ falls, the frontier rises — so the blocked TA checks it
  once per block and binary-searches the exact scalar stop depth inside
  the stopping block, then answers from the objects first seen at or
  before that depth.  NRA/CA report termination-depth-dependent lower
  bounds, so their blocked variants evaluate the (vectorized) stop
  condition at exactly the scalar check cadence (``check_every`` /
  completion every ``h`` rounds).
* *Same tie discipline.*  Frontier cuts partition by score, then take
  the whole tied boundary group through the canonical
  ``(score desc, id asc)`` lexsort — the convention
  :class:`~repro.topn.result.TopNResult` enforces.

Because stops are proven at block granularity, a blocked engine's
sorted-access charge is the scalar engine's rounded up to whole blocks
(the trace-invariant suite pins this), and everything it *doesn't* read
is a skipped block.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryCancelledError, TopNError
from ..obs import metrics, tracer
from .aggregates import (
    AggregateFunction,
    Avg,
    Max,
    Min,
    Product,
    SUM,
    Sum,
    WeightedSum,
    require_monotone,
)
from .result import RankedItem, TopNResult
from .ta import _check_resume

_NEVER = np.iinfo(np.int64).max


def _check_cancel(cancel, engine: str, depth: int) -> None:
    """Raise between rounds when the query's cancel token fired — a
    deadline expiry or an explicit cancel (e.g. the coordinator already
    resolved, or a serve-layer request deadline propagated down).
    Checked only at round boundaries, so a stopped run never leaves a
    partially applied bound administration behind."""
    if cancel is not None and cancel.cancelled():
        metrics.inc("topn.cancelled")
        raise QueryCancelledError(
            f"{engine} cancelled at sorted-access depth {depth}")


def _require_blocked(sources: list, engine: str) -> None:
    if not sources:
        raise TopNError(f"{engine} needs at least one source")
    for source in sources:
        if not hasattr(source, "read_block") or not hasattr(source, "dense_grades"):
            raise TopNError(
                f"{engine} needs block-at-a-time sources "
                f"(repro.mm.BlockedSource); got {type(source).__name__} — "
                f"wrap the data with BlockedSource.from_array / from_postings")


def _combine_columns(agg: AggregateFunction, columns: list[np.ndarray]) -> np.ndarray:
    """Per-row ``agg.combine`` over parallel grade columns, with the
    same left-to-right fold (and therefore the same IEEE result) as the
    scalar list version."""
    if isinstance(agg, (Sum, Avg)):
        acc = np.zeros_like(columns[0])
        for col in columns:
            acc = acc + col
        return acc / len(columns) if isinstance(agg, Avg) else acc
    if isinstance(agg, WeightedSum):
        acc = np.zeros_like(columns[0])
        for weight, col in zip(agg.weights, columns):
            acc = acc + weight * col
        return acc
    if isinstance(agg, (Min, Max)):
        fold = np.minimum if isinstance(agg, Min) else np.maximum
        acc = columns[0].astype(np.float64, copy=True)
        for col in columns[1:]:
            acc = fold(acc, col)
        return acc
    if isinstance(agg, Product):
        acc = np.ones_like(columns[0])
        for col in columns:
            acc = acc * col
        return acc
    # unknown (user) aggregate: per-row scalar fallback — slow but exact
    return np.array([
        agg.combine([float(col[row]) for col in columns])
        for row in range(len(columns[0]))
    ], dtype=np.float64)


class _Cursor:
    """Block consumption tracker for one source: reads (and bulk-
    charges) whole blocks lazily; everything never read is a skip."""

    __slots__ = ("source", "blocks_read", "_next_block")

    def __init__(self, source, start_rank: int = 0) -> None:
        self.source = source
        self.blocks_read = 0
        # a resumed run's saved prefix was paid for by the producing
        # run: its blocks stay unread here
        self._next_block = start_rank // source.block_size

    def ensure(self, hi_rank: int) -> None:
        """Read blocks until ranks ``< hi_rank`` are materialized (or
        the source ends)."""
        n_blocks = self.source.n_blocks
        size = self.source.block_size
        while self._next_block < n_blocks and self._next_block * size < hi_rank:
            self.source.read_block(self._next_block)
            self._next_block += 1
            self.blocks_read += 1

    @property
    def blocks_skipped(self) -> int:
        return self.source.n_blocks - self.blocks_read


def _canonical_topn(ids: np.ndarray, values: np.ndarray, n: int) -> list[RankedItem]:
    """The canonical top-``n`` cut — argpartition by score, then the
    whole tied boundary group through the (score desc, id asc) lexsort
    — identical to offering every pair to a :class:`BoundedTopN`."""
    if len(ids) > n:
        # nth-largest value; keep everything >= it so boundary ties are
        # resolved by id, not by partition order
        kth = np.partition(values, len(values) - n)[len(values) - n]
        keep = values >= kth
        ids, values = ids[keep], values[keep]
    order = np.lexsort((ids, -values))[:n]
    return [RankedItem(int(ids[i]), float(values[i])) for i in order]


def _segment_columns(sources, lo: int, hi: int):
    """Padded per-source ``(doc, grade)`` columns for ranks
    ``[lo, hi)``: past a source's end docs are -1 and grades 0.0 — the
    exact floor the scalar engines substitute for exhausted lists."""
    width = hi - lo
    doc_cols, grade_cols = [], []
    for source in sources:
        docs = np.full(width, -1, dtype=np.int64)
        grades = np.zeros(width, dtype=np.float64)
        valid = min(hi, source.blocks.n_postings) - lo
        if valid > 0:
            docs[:valid] = source.blocks.doc_ids[lo:lo + valid]
            grades[:valid] = source.blocks.grades[lo:lo + valid]
        doc_cols.append(docs)
        grade_cols.append(grades)
    return doc_cols, grade_cols


def _emit_block_metrics(cursors) -> tuple[int, int]:
    blocks_read = sum(c.blocks_read for c in cursors)
    blocks_skipped = sum(c.blocks_skipped for c in cursors)
    if metrics.enabled():
        metrics.inc("topn.blocks_read", blocks_read)
        metrics.inc("topn.blocks_skipped", blocks_skipped)
    return blocks_read, blocks_skipped


# -- TA -----------------------------------------------------------------------


def blocked_threshold_topn(sources: list, n: int, agg: AggregateFunction = SUM,
                           *, block_size: int | None = None,
                           resume_from=None,
                           capture_state: bool = False,
                           cancel=None) -> TopNResult:
    """Block-at-a-time Threshold Algorithm, bit-identical to
    :func:`~repro.topn.ta.threshold_topn`.

    Reads one block row at a time, completes every newly seen object
    with one vectorized random-access probe per source, and checks TA's
    stop rule once per block: the rule is monotone in depth, so when it
    holds at a block boundary the exact scalar stop depth is recovered
    by binary search inside the block, and the answer is cut from the
    objects first seen at or before that depth.  Blocks past the stop
    are never read — that is the block-max prune, and it is *safe*
    because every unread block's upper bound is at most the last τ the
    stop rule already beat.

    ``block_size`` is fixed by the sources' storage; the parameter is
    accepted for symmetry and validated against it.  ``resume_from`` /
    ``capture_state`` speak the exact scalar
    :class:`~repro.cache.resume.TAResumeState` frontier, so warm
    continues interoperate with the scalar engine in both directions.
    """
    _require_blocked(sources, "blocked_threshold_topn")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-ta-blocked", safe=True)
    require_monotone(agg, "TA")
    agg.validate_arity(len(sources))
    m = len(sources)
    if block_size is not None and any(s.block_size != block_size for s in sources):
        raise TopNError(
            f"sources are blocked at {[s.block_size for s in sources]}, "
            f"query asks block_size={block_size}")
    size = sources[0].block_size
    n_objects = max(source.n_objects for source in sources)
    lengths = [source.blocks.n_postings for source in sources]
    max_len = max(lengths) if lengths else 0
    dense_cols = [source.dense_grades for source in sources]

    with tracer.span("topn.ta_blocked", n=n, m=m, agg=agg.name,
                     block_size=size, resumed=resume_from is not None):
        traced = tracer.enabled()
        seen = np.zeros(n_objects, dtype=bool)
        scores = np.zeros(n_objects, dtype=np.float64)
        first_seen = np.full(n_objects, _NEVER, dtype=np.int64)
        depth = 0
        random_accesses = 0
        resumed_from = 0
        stop_reason = "threshold"
        done = False
        d_star: int | None = None  # objects first seen <= d_star answer
        last_grades = [0.0] * m
        if resume_from is not None:
            _check_resume(resume_from, n, m, agg)
            resumed_from = resume_from.n
            seeded = np.fromiter(resume_from.seen_scores.keys(), dtype=np.int64,
                                 count=len(resume_from.seen_scores))
            seeded_scores = np.fromiter(resume_from.seen_scores.values(),
                                        dtype=np.float64, count=len(seeded))
            seen[seeded] = True
            scores[seeded] = seeded_scores
            first_seen[seeded] = -1  # strictly before any resumed depth
            last_grades = list(resume_from.last_grades)
            depth = resume_from.depth_next
            if resume_from.exhausted:
                done, stop_reason = True, "exhausted"
            elif _ta_stopped(seen, scores, first_seen, depth - 1, n,
                             agg.combine(last_grades)):
                # a cold run at this n re-checks (and stops) at the
                # saved depth before reading deeper
                done = True
        cursors = [_Cursor(source, start_rank=depth) for source in sources]
        ranks_read = depth

        while not done:
            _check_cancel(cancel, "blocked_threshold_topn", depth)
            if depth >= max_len:
                # the scalar engine runs one final inactive round: every
                # grade floors to 0, τ = t(0..0), and the heap rule gets
                # a last look before "exhausted"
                last_grades = [0.0] * m
                tau = agg.combine(last_grades)
                ranks_read = depth + 1
                d_star = None  # every seen object is in play
                if not _ta_stopped(seen, scores, first_seen, _NEVER - 1, n, tau):
                    stop_reason = "exhausted"
                break
            lo, hi = depth, min(depth + size, max_len)
            for cursor in cursors:
                cursor.ensure(hi)
            doc_cols, grade_cols = _segment_columns(sources, lo, hi)

            # complete every object first seen in this block row with
            # one vectorized probe per source (same floats the scalar
            # engine fetches one random access at a time)
            all_docs = np.concatenate(doc_cols)
            offsets = np.tile(np.arange(lo, hi, dtype=np.int64), m)
            valid = all_docs >= 0
            fresh = valid & ~seen[np.clip(all_docs, 0, None)]
            fresh_docs = all_docs[fresh]
            if len(fresh_docs):
                uniq = np.unique(fresh_docs)
                seen[uniq] = True
                grade_rows = [src.random_access_many(uniq) for src in sources]
                random_accesses += (m - 1) * len(uniq)
                scores[uniq] = _combine_columns(agg, grade_rows)
                np.minimum.at(first_seen, fresh_docs, offsets[fresh])

            # τ per depth of the row — one column fold, exact floats
            tau_row = _combine_columns(agg, grade_cols)
            last_grades = [
                float(grade_cols[i][hi - 1 - lo]) for i in range(m)
            ]
            if traced:
                tracer.event("ta.block", lo=lo, hi=hi,
                             threshold=float(tau_row[-1]),
                             objects_seen=int(np.count_nonzero(seen)))
            ranks_read = hi
            if _ta_stopped(seen, scores, first_seen, hi - 1, n, float(tau_row[-1])):
                # monotone stop rule: binary-search the exact scalar
                # stop depth inside this block row
                left, right = lo, hi - 1
                while left < right:
                    mid = (left + right) // 2
                    if _ta_stopped(seen, scores, first_seen, mid, n,
                                   float(tau_row[mid - lo])):
                        right = mid
                    else:
                        left = mid + 1
                d_star = left
                ranks_read = d_star + 1
                last_grades = [
                    float(grade_cols[i][d_star - lo]) for i in range(m)
                ]
                break
            depth = hi

        threshold = agg.combine(last_grades)
        in_play = seen if d_star is None else (seen & (first_seen <= d_star))
        ids = np.flatnonzero(in_play)
        items = _canonical_topn(ids, scores[ids], n)
        blocks_read, blocks_skipped = _emit_block_metrics(cursors)
        tracer.annotate(stop_reason=stop_reason, depth=ranks_read,
                        blocks_read=blocks_read, blocks_skipped=blocks_skipped)
        run_stats = {
            "depth": ranks_read,
            "objects_seen": len(ids),
            "random_accesses": random_accesses,
            "final_threshold": threshold,
            "stop_reason": stop_reason,
            "resumed_from": resumed_from,
            "block_size": size,
            "blocks_read": blocks_read,
            "blocks_skipped": blocks_skipped,
        }
        if capture_state:
            from ..cache.resume import TAResumeState
            run_stats["resume_state"] = TAResumeState(
                n=n, m_sources=m, agg_name=agg.name, depth_next=ranks_read,
                last_grades=tuple(last_grades),
                seen_scores={int(obj): float(scores[obj]) for obj in ids},
                exhausted=(stop_reason == "exhausted"),
            )
        return TopNResult(items, n, strategy="fagin-ta-blocked", safe=True,
                          stats=run_stats)


def _ta_stopped(seen, scores, first_seen, depth, n, tau) -> bool:
    """TA's stop rule at ``depth``: the n-th best score over objects
    first seen at or before it has reached τ."""
    mask = seen & (first_seen <= depth)
    count = int(np.count_nonzero(mask))
    if count < n:
        return False
    vals = scores[mask]
    nth = np.partition(vals, count - n)[count - n]
    return bool(nth >= tau)


# -- NRA ----------------------------------------------------------------------


def blocked_nra_topn(sources: list, n: int, agg: AggregateFunction = SUM,
                     check_every: int = 16, max_depth: int | None = None,
                     min_check_depth: int = 0, *,
                     block_size: int | None = None,
                     cancel=None) -> TopNResult:
    """Block-at-a-time NRA, bit-identical to
    :func:`~repro.topn.nra.nra_topn`.

    NRA's reported scores are the lower bounds *at its termination
    depth*, so the blocked variant must stop exactly where the scalar
    one does: it ingests block slabs between check depths and evaluates
    the stop condition at the same ``check_every`` cadence — but the
    whole bound administration (lower/upper bounds over every seen
    object, the canonical ``(-lower, id)`` frontier) is one numpy pass
    per check instead of a Python dict walk.
    """
    _require_blocked(sources, "blocked_nra_topn")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-nra-blocked", safe=True)
    state = _BoundState(sources, n, agg, "blocked_nra_topn", block_size)
    with tracer.span("topn.nra_blocked", n=n, m=state.m, agg=agg.name,
                     check_every=check_every, block_size=state.size):
        traced = tracer.enabled()
        stop_reason = "exhausted"
        bound_checks = 0
        checks_skipped = 0
        final_depth = None
        ingest_end = state.max_len if max_depth is None \
            else min(max_depth, state.max_len)
        stopped = False
        for check_at in range(check_every, ingest_end + 1, check_every):
            _check_cancel(cancel, "blocked_nra_topn", check_at)
            state.ingest_to(check_at)
            if check_at < min_check_depth:
                checks_skipped += 1
                continue
            bound_checks += 1
            stopped = state.stop_condition(check_at)
            if traced:
                tracer.event("nra.check", depth=check_at, stopped=stopped,
                             objects_seen=state.objects_seen())
            if stopped:
                stop_reason = "bounds"
                final_depth = check_at
                break
        if not stopped:
            state.ingest_to(ingest_end)
            if max_depth is not None and max_depth <= state.max_len:
                stop_reason = "max_depth"
                final_depth = max_depth
            else:
                # the scalar engine's final inactive round: depth counts
                # one past the longest list, bottoms floor to 0
                final_depth = state.max_len + 1
        bottoms = state.effective_bottoms(final_depth)
        items = state.final_items(n)
        blocks_read, blocks_skipped = _emit_block_metrics(state.cursors)
        tracer.annotate(stop_reason=stop_reason, depth=final_depth,
                        objects_seen=state.objects_seen(),
                        blocks_read=blocks_read, blocks_skipped=blocks_skipped)
        return TopNResult(
            items, n, strategy="fagin-nra-blocked", safe=True,
            stats={
                "depth": final_depth,
                "objects_seen": state.objects_seen(),
                "bottom_aggregate": agg.combine(bottoms),
                "stop_reason": stop_reason,
                "bound_checks": bound_checks,
                "checks_skipped": checks_skipped,
                "block_size": state.size,
                "blocks_read": blocks_read,
                "blocks_skipped": blocks_skipped,
            },
        )


# -- CA -----------------------------------------------------------------------


def blocked_combined_topn(sources: list, n: int, agg: AggregateFunction = SUM,
                          h: int = 4, check_every: int = 8,
                          max_depth: int | None = None,
                          min_check_depth: int = 0, *,
                          block_size: int | None = None,
                          cancel=None) -> TopNResult:
    """Block-at-a-time CA, bit-identical to
    :func:`~repro.topn.ca.combined_topn`.

    Sorted access proceeds in block slabs; every ``h`` rounds the most
    promising incomplete candidate — argmax of the vectorized upper
    bounds, ties to the smallest id — is completed by random access,
    and the stop condition runs at the scalar ``check_every`` cadence.
    """
    _require_blocked(sources, "blocked_combined_topn")
    if h < 1:
        raise TopNError(f"cost ratio h must be >= 1, got {h}")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-ca-blocked", safe=True)
    state = _BoundState(sources, n, agg, "blocked_combined_topn", block_size)
    with tracer.span("topn.ca_blocked", n=n, m=state.m, agg=agg.name, h=h,
                     block_size=state.size):
        traced = tracer.enabled()
        stop_reason = "exhausted"
        bound_checks = 0
        checks_skipped = 0
        completions = 0
        final_depth = None
        ingest_end = state.max_len if max_depth is None \
            else min(max_depth, state.max_len)
        stopped = False
        for event in _event_depths(h, check_every, ingest_end):
            _check_cancel(cancel, "blocked_combined_topn", event)
            state.ingest_to(event)
            if event % h == 0 and state.objects_seen():
                completed = state.complete_best(event)
                if completed is not None:
                    completions += 1
                    if traced:
                        tracer.event("ca.completion", depth=event, obj=completed)
            if event % check_every == 0:
                if event < min_check_depth:
                    checks_skipped += 1
                    continue
                bound_checks += 1
                stopped = state.stop_condition(event)
                if traced:
                    tracer.event("ca.check", depth=event, stopped=stopped,
                                 objects_seen=state.objects_seen())
                if stopped:
                    stop_reason = "bounds"
                    final_depth = event
                    break
        if not stopped:
            state.ingest_to(ingest_end)
            if max_depth is not None and max_depth <= state.max_len:
                stop_reason = "max_depth"
                final_depth = max_depth
            else:
                # the scalar engine's final inactive round still runs
                # its scheduled completion before breaking
                final_depth = state.max_len + 1
                if final_depth % h == 0 and state.objects_seen():
                    if state.complete_best(final_depth) is not None:
                        completions += 1
        items = state.final_items(n)
        blocks_read, blocks_skipped = _emit_block_metrics(state.cursors)
        tracer.annotate(stop_reason=stop_reason, depth=final_depth,
                        objects_seen=state.objects_seen(),
                        completions=completions,
                        blocks_read=blocks_read, blocks_skipped=blocks_skipped)
        return TopNResult(
            items, n, strategy="fagin-ca-blocked", safe=True,
            stats={
                "depth": final_depth,
                "objects_seen": state.objects_seen(),
                "completions": completions,
                "h": h,
                "stop_reason": stop_reason,
                "bound_checks": bound_checks,
                "checks_skipped": checks_skipped,
                "block_size": state.size,
                "blocks_read": blocks_read,
                "blocks_skipped": blocks_skipped,
            },
        )


def _event_depths(h: int, check_every: int, limit: int):
    """Depths where CA does non-streaming work (completion every ``h``,
    stop check every ``check_every``), ascending, up to ``limit``."""
    events = sorted(
        set(range(h, limit + 1, h)) | set(range(check_every, limit + 1, check_every))
    )
    return events


class _BoundState:
    """Shared NRA/CA administration: per-source seen masks over dense
    grade columns, vectorized lower/upper bounds, block cursors."""

    def __init__(self, sources, n, agg, engine, block_size):
        require_monotone(agg, engine)
        agg.validate_arity(len(sources))
        if block_size is not None and any(s.block_size != block_size for s in sources):
            raise TopNError(
                f"sources are blocked at {[s.block_size for s in sources]}, "
                f"query asks block_size={block_size}")
        self.sources = sources
        self.agg = agg
        self.n = n
        self.m = len(sources)
        self.size = sources[0].block_size
        self.n_objects = max(s.n_objects for s in sources)
        self.lengths = [s.blocks.n_postings for s in sources]
        self.max_len = max(self.lengths) if self.lengths else 0
        self.dense = [s.dense_grades for s in sources]
        self.seen = np.zeros((self.m, self.n_objects), dtype=bool)
        self.any_seen = np.zeros(self.n_objects, dtype=bool)
        self.cursors = [_Cursor(s) for s in sources]
        self._ingested = 0

    def ingest_to(self, depth: int) -> None:
        """Mark every posting at rank < ``depth`` as seen (reading —
        and charging — whole blocks)."""
        depth = min(depth, self.max_len)
        if depth <= self._ingested:
            return
        for i, source in enumerate(self.sources):
            valid = min(depth, self.lengths[i]) - self._ingested
            if valid <= 0:
                continue
            self.cursors[i].ensure(self._ingested + valid)
            docs = source.blocks.doc_ids[self._ingested:self._ingested + valid]
            self.seen[i][docs] = True
            self.any_seen[docs] = True
        self._ingested = depth

    def objects_seen(self) -> int:
        return int(np.count_nonzero(self.any_seen))

    def effective_bottoms(self, depth: int) -> list[float]:
        """Per-source grade floor after ``depth`` ingested ranks: the
        grade at the last rank read, 0 once the list is exhausted."""
        out = []
        for i, source in enumerate(self.sources):
            if depth >= 1 and depth - 1 < self.lengths[i]:
                out.append(float(source.blocks.grades[depth - 1]))
            else:
                out.append(0.0)
        return out

    def _bounds_at(self, depth: int):
        ids = np.flatnonzero(self.any_seen)
        if len(ids) == 0:
            return ids, None, None, self.effective_bottoms(depth)
        bottoms = self.effective_bottoms(depth)
        lower_cols, upper_cols = [], []
        for i in range(self.m):
            seen_i = self.seen[i][ids]
            grades_i = self.dense[i][ids]
            lower_cols.append(np.where(seen_i, grades_i, 0.0))
            upper_cols.append(np.where(seen_i, grades_i, bottoms[i]))
        lowers = _combine_columns(self.agg, lower_cols)
        uppers = _combine_columns(self.agg, upper_cols)
        return ids, lowers, uppers, bottoms

    def stop_condition(self, depth: int) -> bool:
        """The scalar stop rule, one numpy pass: n-th best lower bound
        (canonical ``(-lower, id)`` order) dominates every other
        object's upper bound and the virtual never-seen object's."""
        ids, lowers, uppers, bottoms = self._bounds_at(depth)
        n = self.n
        if lowers is None or len(ids) < n:
            return False
        order = np.lexsort((ids, -lowers))
        nth_lower = float(lowers[order[n - 1]])
        rest = order[n:]
        max_rest = float(uppers[rest].max()) if len(rest) else -np.inf
        virtual = self.agg.combine(bottoms)
        return nth_lower >= max(max_rest, virtual)

    def complete_best(self, depth: int):
        """CA's completion: random-access the incomplete candidate with
        the best ``(upper bound, smallest id)`` key; returns its id (or
        None when every seen object is complete)."""
        incomplete = self.any_seen & ~self.seen.all(axis=0)
        ids = np.flatnonzero(incomplete)
        if len(ids) == 0:
            return None
        bottoms = self.effective_bottoms(depth)
        upper_cols = [
            np.where(self.seen[i][ids], self.dense[i][ids], bottoms[i])
            for i in range(self.m)
        ]
        uppers = _combine_columns(self.agg, upper_cols)
        best = float(uppers.max())
        obj = int(ids[uppers == best].min())
        # one charged random access per missing grade, like the scalar loop
        for i, source in enumerate(self.sources):
            if not self.seen[i][obj]:
                source.random_access(obj)
        self.seen[:, obj] = True
        return obj

    def final_items(self, n: int) -> list[RankedItem]:
        """Lower bounds of every seen object through the canonical
        ``(-lower, id)`` cut — the scalar engines' final sort."""
        ids = np.flatnonzero(self.any_seen)
        if len(ids) == 0:
            return []
        lower_cols = [
            np.where(self.seen[i][ids], self.dense[i][ids], 0.0)
            for i in range(self.m)
        ]
        lowers = _combine_columns(self.agg, lower_cols)
        order = np.lexsort((ids, -lowers))[:n]
        return [RankedItem(int(ids[i]), float(lowers[i])) for i in order]
