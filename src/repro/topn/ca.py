"""The Combined Algorithm (CA): TA/NRA hybrid for costed access.

Fagin's framework (cited by the paper for its upper/lower bound
administration) includes CA for the realistic middleware regime where
a random access costs ``h`` times a sorted access: run NRA-style
bookkeeping on sorted accesses, and only once every ``h`` rounds spend
random accesses — on the most promising incomplete candidate.  With
``h = 1`` CA behaves like an eager TA; as ``h`` grows it degrades
gracefully toward NRA.

The result is the exact top-N set; completed candidates report exact
scores, others their lower bounds.
"""

from __future__ import annotations

import math

from ..errors import TopNError
from ..obs import tracer
from ..storage import stats
from .aggregates import AggregateFunction, SUM, require_monotone
from .result import RankedItem, TopNResult


def combined_topn(sources: list, n: int, agg: AggregateFunction = SUM,
                  h: int = 4, check_every: int = 8,
                  max_depth: int | None = None,
                  min_check_depth: int = 0) -> TopNResult:
    """Exact top-N with CA under random/sorted cost ratio ``h``.

    ``min_check_depth`` skips stop-condition evaluations below the
    given depth (bound-cache seeding; see :func:`repro.topn.nra_topn`
    for the reuse discipline — membership stays exact for any value).
    """
    if not sources:
        raise TopNError("combined_topn needs at least one source")
    if h < 1:
        raise TopNError(f"cost ratio h must be >= 1, got {h}")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-ca", safe=True)
    require_monotone(agg, "CA")
    agg.validate_arity(len(sources))

    m = len(sources)
    traced = tracer.enabled()
    grades: dict[int, list[float | None]] = {}
    bottoms = [math.inf] * m
    depth = 0
    completions = 0

    def effective_bottoms():
        return [0.0 if b is math.inf else b for b in bottoms]

    def lower(seen):
        return agg.combine([0.0 if g is None else g for g in seen])

    def upper(seen):
        eb = effective_bottoms()
        return agg.combine([eb[i] if g is None else g for i, g in enumerate(seen)])

    def stop_condition():
        bounds = sorted(
            ((lower(seen), upper(seen), obj) for obj, seen in grades.items()),
            key=lambda t: (-t[0], t[2]),
        )
        if len(bounds) < n:
            return False
        top, rest = bounds[:n], bounds[n:]
        nth_lower = top[-1][0]
        virtual = agg.combine(effective_bottoms())
        max_rest = max((u for _, u, _ in rest), default=-math.inf)
        return nth_lower >= max(max_rest, virtual)

    with tracer.span("topn.ca", n=n, m=m, agg=agg.name, h=h,
                     objects=max(source.n_objects for source in sources)):
        stop_reason = "exhausted"
        bound_checks = 0
        checks_skipped = 0
        while True:
            if max_depth is not None and depth >= max_depth:
                stop_reason = "max_depth"
                break
            active = False
            for i, source in enumerate(sources):
                if source.exhausted(depth):
                    bottoms[i] = 0.0
                    continue
                active = True
                obj, grade = source.sorted_access(depth)
                bottoms[i] = grade
                grades.setdefault(obj, [None] * m)[i] = grade
            depth += 1
            if depth % h == 0 and grades:
                # complete the most promising incomplete candidate
                best_obj, best_seen = None, None
                best_key = None
                for obj, seen in grades.items():
                    if None not in seen:
                        continue
                    key = (upper(seen), -obj)
                    if best_key is None or key > best_key:
                        best_key, best_obj, best_seen = key, obj, seen
                if best_obj is not None:
                    for i, grade in enumerate(best_seen):
                        if grade is None:
                            best_seen[i] = sources[i].random_access(best_obj)
                    completions += 1
                    if traced:
                        tracer.event("ca.completion", depth=depth, obj=best_obj)
            if not active:
                break
            if depth % check_every == 0:
                if depth < min_check_depth:
                    checks_skipped += 1
                    continue
                bound_checks += 1
                stopped = stop_condition()
                if traced:
                    tracer.event("ca.check", depth=depth, stopped=stopped,
                                 objects_seen=len(grades))
                if stopped:
                    stop_reason = "bounds"
                    break

        scored = sorted(
            ((lower(seen), obj) for obj, seen in grades.items()),
            key=lambda pair: (-pair[0], pair[1]),
        )
        items = [RankedItem(obj, score) for score, obj in scored[:n]]
        tracer.annotate(stop_reason=stop_reason, depth=depth,
                        objects_seen=len(grades), completions=completions)
        return TopNResult(
            items, n, strategy="fagin-ca", safe=True,
            stats={"depth": depth, "objects_seen": len(grades),
                   "completions": completions, "h": h, "stop_reason": stop_reason,
                   "bottom_aggregate": agg.combine(effective_bottoms()),
                   "bound_checks": bound_checks, "checks_skipped": checks_skipped},
        )
