"""Fagin's Algorithm (FA) — the original middleware top-N algorithm.

[Fag98/Fag99]: perform sorted access on all m graded lists in
parallel until at least N objects have been seen *in every list*; then
complete the grades of every seen object by random access and return
the best N.  For monotone aggregation functions the result is exactly
the top N ("ending the processing as soon as it is certain that the
required top N answers have been computed" — the paper's Section 2).
"""

from __future__ import annotations

from ..errors import TopNError
from ..obs import tracer
from .aggregates import AggregateFunction, SUM, require_monotone
from .heap import BoundedTopN
from .result import TopNResult


def fagin_topn(sources: list, n: int, agg: AggregateFunction = SUM) -> TopNResult:
    """Exact top-N over graded sources with Fagin's Algorithm."""
    if not sources:
        raise TopNError("fagin_topn needs at least one source")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-fa", safe=True)
    # FA's phase-1 stop ("N objects seen in every list") certifies the
    # answer only for monotone t — same precondition as TA/NRA/CA
    require_monotone(agg, "FA")
    agg.validate_arity(len(sources))

    m = len(sources)
    with tracer.span("topn.fa", n=n, m=m, agg=agg.name,
                     objects=max(source.n_objects for source in sources)):
        traced = tracer.enabled()
        seen_in: dict[int, int] = {}  # obj -> number of lists it was seen in
        seen_in_all = 0
        depth = 0
        with tracer.span("fa.sorted_phase"):
            active = True
            while active and seen_in_all < n:
                active = False
                for source in sources:
                    if source.exhausted(depth):
                        continue
                    active = True
                    obj, _grade = source.sorted_access(depth)
                    count = seen_in.get(obj, 0) + 1
                    seen_in[obj] = count
                    if count == m:
                        seen_in_all += 1
                depth += 1
                if traced:
                    tracer.event("fa.round", depth=depth, seen_in_all=seen_in_all)
                # a source that exhausts means every unseen object grades at its
                # floor there; FA's phase-1 condition can also be met by running
                # out of input on all lists (handled by `active`)
            tracer.annotate(depth=depth, objects_seen=len(seen_in),
                            stop_reason="seen_in_all" if seen_in_all >= n else "exhausted")

        # phase 2: complete grades by random access for every seen object
        heap = BoundedTopN(n)
        random_accesses = 0
        with tracer.span("fa.random_phase", objects=len(seen_in)):
            for obj in sorted(seen_in):
                grades = []
                for source in sources:
                    grades.append(source.random_access(obj))
                    random_accesses += 1
                heap.push(obj, agg.combine(grades))
        tracer.annotate(heap_churn=heap.churn())
        return TopNResult(
            heap.items_sorted(), n, strategy="fagin-fa", safe=True,
            stats={
                "depth": depth,
                "objects_seen": len(seen_in),
                "random_accesses": random_accesses,
                "heap_churn": heap.churn(),
            },
        )
