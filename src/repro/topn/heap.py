"""A bounded top-N heap with deterministic tie-breaking.

All top-N strategies share the convention: higher score first, ties
broken by smaller object id.  The heap keeps the N current best and
exposes the *threshold* (the N-th best score) that drives the stopping
rules of TA and of the unsafe pruning heuristics.
"""

from __future__ import annotations

import heapq
import math

from ..errors import TopNError
from .result import RankedItem


class BoundedTopN:
    """Keeps the top ``n`` (score, obj_id) pairs seen so far."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise TopNError(f"n must be non-negative, got {n}")
        self.n = n
        # min-heap of (score, -obj_id): the root is the *weakest* entry —
        # lowest score; among equal scores the largest id (ids tie-break
        # in favour of smaller ids, so larger ids are weaker)
        self._heap: list[tuple[float, int]] = []
        # churn accounting (plain ints: cheap enough to keep always on;
        # engines surface them through span attrs / result stats)
        self.offers = 0
        self.accepts = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.n

    def threshold(self) -> float:
        """The N-th best score, or ``-inf`` while not yet full."""
        if not self.full or self.n == 0:
            return -math.inf
        return self._heap[0][0]

    def would_enter(self, score: float, obj_id: int) -> bool:
        """Whether pushing this pair would change the heap contents."""
        if self.n == 0:
            return False
        if not self.full:
            return True
        weakest_score, neg_weakest_id = self._heap[0]
        if score != weakest_score:
            return score > weakest_score
        return obj_id < -neg_weakest_id

    def push(self, obj_id: int, score: float) -> bool:
        """Offer a pair; returns True if it entered the top-N."""
        self.offers += 1
        if not self.would_enter(score, obj_id):
            return False
        self.accepts += 1
        entry = (score, -obj_id)
        if self.full:
            heapq.heapreplace(self._heap, entry)
            self.evictions += 1
        else:
            heapq.heappush(self._heap, entry)
        return True

    def churn(self) -> dict:
        """Heap traffic summary: offers seen, entries accepted,
        previous members evicted."""
        return {
            "offers": self.offers,
            "accepts": self.accepts,
            "evictions": self.evictions,
        }

    def items_sorted(self) -> list[RankedItem]:
        """Contents, best first (score desc, id asc)."""
        pairs = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [RankedItem(-neg_id, score) for score, neg_id in pairs]

    def contains_ids(self) -> set[int]:
        """Object ids currently held (for membership checks)."""
        return {-neg_id for _, neg_id in self._heap}
