"""Naive (unoptimized) top-N evaluation — the baseline of every
experiment.

Two entry points matching the two substrates:

* :func:`naive_topn` — IR queries over an inverted index: read every
  query term's complete posting list, materialize all candidate
  scores, partial-sort for the top N ("compute some ranking ... then
  sorted by descending relevance", the paper's Section 1 description
  of the usual way of operation);
* :func:`naive_topn_sources` — Fagin's setting: read *every* object's
  grade from every source and aggregate.
"""

from __future__ import annotations

from ..ir.invindex import InvertedIndex
from ..ir.ranking import ScoringModel, score_all
from ..obs import tracer
from ..storage import kernel
from .aggregates import AggregateFunction, SUM
from .heap import BoundedTopN
from .result import TopNResult


def naive_topn(index: InvertedIndex, tids: list[int], model: ScoringModel,
               n: int) -> TopNResult:
    """Exact top-N by full evaluation over the inverted index."""
    with tracer.span("topn.naive", n=n, terms=len(tids)):
        with tracer.span("naive.score_all"):
            scores = score_all(index, tids, model)
        top = kernel.topn_tail(scores, n, descending=True)
        tracer.annotate(candidates=len(scores))
        return TopNResult.from_bat(
            top, n, strategy="naive", safe=True,
            stats={"candidates": len(scores), "postings_read": sum(
                index.posting_length(tid) for tid in tids
            )},
        )


def naive_full_ranking(index: InvertedIndex, tids: list[int],
                       model: ScoringModel) -> TopNResult:
    """The complete candidate ranking (N = all candidates).  Used as
    the quality reference for unsafe strategies."""
    scores = score_all(index, tids, model)
    full = kernel.topn_tail(scores, len(scores), descending=True)
    return TopNResult.from_bat(
        full, len(scores), strategy="naive-full", safe=True,
        stats={"candidates": len(scores)},
    )


def conjunctive_topn(index: InvertedIndex, tids: list[int], model: ScoringModel,
                     n: int) -> TopNResult:
    """Exact top-N restricted to documents containing *all* query terms
    (Boolean AND + ranking, the classic IR hybrid).

    Processes terms rarest-first so the candidate set shrinks as early
    as possible — the same "most interesting terms first" ordering the
    paper's Step 1 builds on.
    """
    import numpy as np

    if not tids:
        return TopNResult([], n, strategy="naive-and", safe=True,
                          stats={"candidates": 0})
    ordered = sorted(tids, key=index.posting_length)
    candidates = None
    postings = {}
    postings_read = 0
    for tid in ordered:
        doc_ids, tfs = index.postings(tid)
        postings_read += len(doc_ids)
        postings[tid] = (doc_ids, tfs)
        candidates = doc_ids if candidates is None else np.intersect1d(candidates, doc_ids)
        if len(candidates) == 0:
            break
    if candidates is None or len(candidates) == 0:
        return TopNResult([], n, strategy="naive-and", safe=True,
                          stats={"candidates": 0, "postings_read": postings_read})
    scores = np.zeros(len(candidates))
    for tid in ordered:
        doc_ids, tfs = postings[tid]
        mask = np.isin(doc_ids, candidates)
        partials = model.partial_scores(index, tid, doc_ids[mask], tfs[mask])
        positions = np.searchsorted(candidates, doc_ids[mask])
        scores[positions] += partials
    from ..storage.bat import BAT

    bat = BAT(scores, head=candidates.astype("int64"), head_key=True)
    top = kernel.topn_tail(bat, n, descending=True)
    return TopNResult.from_bat(
        top, n, strategy="naive-and", safe=True,
        stats={"candidates": len(candidates), "postings_read": postings_read},
    )


def naive_topn_sources(sources: list, n: int,
                       agg: AggregateFunction = SUM) -> TopNResult:
    """Exact top-N over graded sources by exhaustive random access."""
    agg.validate_arity(len(sources))
    with tracer.span("topn.naive_sources", n=n, m=len(sources), agg=agg.name):
        heap = BoundedTopN(n)
        n_objects = max((source.n_objects for source in sources), default=0)
        for obj in range(n_objects):
            grades = [source.random_access(obj) for source in sources]
            heap.push(obj, agg.combine(grades))
        tracer.annotate(objects_scored=n_objects, heap_churn=heap.churn())
        return TopNResult(
            heap.items_sorted(), n, strategy="naive-sources", safe=True,
            stats={"objects_scored": n_objects, "heap_churn": heap.churn()},
        )
