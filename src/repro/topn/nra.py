"""No-Random-Access (NRA) algorithm.

For subsystems that only support sorted access (streams, remote
engines), NRA maintains for every seen object a *lower bound* (seen
grades, unseen grades floored at 0) and an *upper bound* (unseen
grades capped at the source's current bottom grade).  It stops when
the N-th best lower bound is at least the upper bound of every other
object — including the "virtual" object never seen anywhere, whose
upper bound is the aggregate of the current bottoms.

NRA guarantees the correct top-N *membership*; reported scores are the
lower bounds at termination (exact when the object was seen
everywhere).  This is the fullest form of the "upper and lower bound
administration" the paper cites from Fagin's work.
"""

from __future__ import annotations

import math

from ..errors import TopNError
from ..obs import tracer
from .aggregates import AggregateFunction, SUM, require_monotone
from .result import RankedItem, TopNResult


def nra_topn(sources: list, n: int, agg: AggregateFunction = SUM,
             check_every: int = 16, max_depth: int | None = None,
             min_check_depth: int = 0) -> TopNResult:
    """Top-N by sorted access only (NRA).

    ``check_every`` controls how often the (relatively expensive) stop
    condition is evaluated; ``max_depth`` optionally caps sorted-access
    depth (the result is then best-effort, still safe in membership if
    the stop condition was met earlier).

    ``min_check_depth`` seeds the stop-condition schedule from the
    bound cache: checks below that depth are skipped.  Membership stays
    exact for any value (the conditions that do run are unchanged), but
    the reported lower bounds are only bit-identical to an unseeded run
    when the seed comes from the *same* fingerprint and ``n`` — i.e.
    from a previous run's recorded stop depth, whose skipped checks are
    exactly the ones that evaluated false.
    """
    if not sources:
        raise TopNError("nra_topn needs at least one source")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-nra", safe=True)
    require_monotone(agg, "NRA")
    agg.validate_arity(len(sources))

    m = len(sources)
    with tracer.span("topn.nra", n=n, m=m, agg=agg.name, check_every=check_every,
                     objects=max(source.n_objects for source in sources)):
        traced = tracer.enabled()
        grades: dict[int, list[float | None]] = {}
        bottoms = [math.inf] * m  # current last sorted-access grade per source
        depth = 0
        stopped = False
        stop_reason = "exhausted"
        bound_checks = 0
        checks_skipped = 0
        while not stopped:
            if max_depth is not None and depth >= max_depth:
                stop_reason = "max_depth"
                break
            active = False
            for i, source in enumerate(sources):
                if source.exhausted(depth):
                    bottoms[i] = 0.0
                    continue
                active = True
                obj, grade = source.sorted_access(depth)
                bottoms[i] = grade
                grades.setdefault(obj, [None] * m)[i] = grade
            depth += 1
            if not active:
                break
            if depth % check_every == 0:
                if depth < min_check_depth:
                    checks_skipped += 1
                    continue
                bound_checks += 1
                stopped = _stop_condition_met(grades, bottoms, n, agg)
                if stopped:
                    stop_reason = "bounds"
                if traced:
                    tracer.event("nra.check", depth=depth, stopped=stopped,
                                 objects_seen=len(grades))
        # final check (also covers exhausted inputs)
        effective_bottoms = [0.0 if b is math.inf else b for b in bottoms]

        scored = []
        for obj, seen in grades.items():
            lower = agg.combine([0.0 if g is None else g for g in seen])
            scored.append((lower, obj))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        items = [RankedItem(obj, lower) for lower, obj in scored[:n]]
        tracer.annotate(stop_reason=stop_reason, depth=depth,
                        objects_seen=len(grades))
        return TopNResult(
            items, n, strategy="fagin-nra", safe=True,
            stats={
                "depth": depth,
                "objects_seen": len(grades),
                "bottom_aggregate": agg.combine(effective_bottoms),
                "stop_reason": stop_reason,
                "bound_checks": bound_checks,
                "checks_skipped": checks_skipped,
            },
        )


def _stop_condition_met(grades, bottoms, n, agg) -> bool:
    """True when the N-th best lower bound dominates every other
    object's upper bound (and the virtual unseen object's)."""
    effective_bottoms = [0.0 if b is math.inf else b for b in bottoms]
    bounds = []
    for obj, seen in grades.items():
        lower = agg.combine([0.0 if g is None else g for g in seen])
        upper = agg.combine([
            effective_bottoms[i] if g is None else g for i, g in enumerate(seen)
        ])
        bounds.append((lower, upper, obj))
    if len(bounds) < n:
        return False
    bounds.sort(key=lambda triple: (-triple[0], triple[2]))
    top, rest = bounds[:n], bounds[n:]
    nth_lower = top[-1][0]
    # the virtual never-seen object
    virtual_upper = agg.combine(effective_bottoms)
    max_rest_upper = max((upper for _, upper, _ in rest), default=-math.inf)
    return nth_lower >= max(max_rest_upper, virtual_upper)
