"""Donjerkovic–Ramakrishnan probabilistic top-N optimization.

[DR99]: turn ``ORDER BY score DESC STOP AFTER N`` into an ordinary
*selection* ``score >= cutoff`` by choosing the cutoff from a histogram
of the score distribution, such that the expected number of qualifying
tuples slightly exceeds N.  The selection uses a cheap access path
(here: binary search on a score-sorted BAT, or the paper's non-dense
index); only the few survivors are sorted.  If the histogram guessed
too high and fewer than N qualify, the query *restarts* with a lower
cutoff.  Exact answers with high probability of a single pass — the
cutoff only trades cost against restart risk, never correctness.
"""

from __future__ import annotations

import numpy as np

from ..errors import TopNError
from ..obs import tracer
from ..storage import kernel, stats
from ..storage.bat import BAT
from ..storage.index import SparseIndex
from .result import TopNResult


class ScoreHistogram:
    """Equi-depth histogram of a score column.

    Built offline (like any optimizer statistic); ``cutoff_for(n)``
    returns a score below which fewer than ~``n`` tuples are expected
    to lie above."""

    def __init__(self, scores: np.ndarray, n_buckets: int = 64) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if len(scores) == 0:
            raise TopNError("cannot build a histogram over no scores")
        if n_buckets < 2:
            raise TopNError(f"need at least 2 buckets, got {n_buckets}")
        self.total = len(scores)
        quantiles = np.linspace(0.0, 1.0, min(n_buckets, self.total) + 1)
        self.boundaries = np.quantile(scores, quantiles)
        # counts above each boundary (exact on the build sample)
        self.above = np.array([
            (scores >= b).sum() for b in self.boundaries
        ])

    def cutoff_for(self, n: int, slack: float = 1.2) -> float:
        """Highest boundary expected to leave at least ``n * slack``
        tuples above it (falls back to the minimum score)."""
        if n <= 0:
            raise TopNError(f"n must be positive, got {n}")
        target = n * slack
        # boundaries ascend; iterate from the top down
        for i in range(len(self.boundaries) - 1, -1, -1):
            if self.above[i] >= target:
                return float(self.boundaries[i])
        return float(self.boundaries[0])

    def next_lower_cutoff(self, cutoff: float) -> float:
        """The next boundary strictly below ``cutoff`` (restart step)."""
        lower = self.boundaries[self.boundaries < cutoff]
        if len(lower) == 0:
            return float("-inf")
        return float(lower[-1])


def probabilistic_topn(
    scores_sorted: BAT,
    n: int,
    histogram: ScoreHistogram,
    slack: float = 1.2,
    max_restarts: int = 32,
) -> TopNResult:
    """Exact top-N via histogram cutoff + indexed selection + restarts.

    ``scores_sorted`` must be an ascending tail-sorted BAT of
    ``(obj, score)`` (the access path that makes the cutoff selection
    cheap — a clustered score index).  Returns the exact top-N; the
    number of restarts taken is in ``stats``.
    """
    if not scores_sorted.tail_sorted:
        raise TopNError("probabilistic_topn needs an ascending score-sorted BAT "
                        "(the selection's cheap access path)")
    total = len(scores_sorted)
    with tracer.span("topn.probabilistic", n=n, size=total, slack=slack):
        cutoff = histogram.cutoff_for(n, slack=slack)
        restarts = 0
        while True:
            candidates = kernel.select_range(scores_sorted, lo=cutoff, hi=None)
            if len(candidates) >= min(n, total) or cutoff == float("-inf"):
                break
            if restarts >= max_restarts:
                cutoff = float("-inf")
                continue
            restarts += 1
            stats.charge_extra("probabilistic_restarts")
            cutoff = histogram.next_lower_cutoff(cutoff)
            tracer.event("prob.restart", cutoff=cutoff, candidates=len(candidates))
        top = kernel.topn_tail(candidates, n, descending=True)
        tracer.annotate(restarts=restarts, candidates=len(candidates))
        return TopNResult.from_bat(
            top, n, strategy="probabilistic", safe=True,
            stats={
                "cutoff": cutoff,
                "candidates": len(candidates),
                "restarts": restarts,
                "fraction_scanned": len(candidates) / total if total else 0.0,
            },
        )


def probabilistic_topn_indexed(
    index: SparseIndex,
    n: int,
    histogram: ScoreHistogram,
    slack: float = 1.2,
    max_restarts: int = 32,
) -> TopNResult:
    """Variant running the cutoff selection through the paper's
    non-dense index (Step 1's access path for the large fragment)."""
    total = len(index.base)
    with tracer.span("topn.probabilistic_indexed", n=n, size=total, slack=slack):
        cutoff = histogram.cutoff_for(n, slack=slack)
        restarts = 0
        while True:
            candidates = index.lookup_range(lo=cutoff, hi=None)
            if len(candidates) >= min(n, total) or cutoff == float("-inf"):
                break
            if restarts >= max_restarts:
                cutoff = float("-inf")
                continue
            restarts += 1
            stats.charge_extra("probabilistic_restarts")
            cutoff = histogram.next_lower_cutoff(cutoff)
            tracer.event("prob.restart", cutoff=cutoff, candidates=len(candidates))
        top = kernel.topn_tail(candidates, n, descending=True)
        tracer.annotate(restarts=restarts, candidates=len(candidates))
        return TopNResult.from_bat(
            top, n, strategy="probabilistic-indexed", safe=True,
            stats={"cutoff": cutoff, "candidates": len(candidates), "restarts": restarts},
        )
