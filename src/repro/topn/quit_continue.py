"""Unsafe term-pruning heuristics (Brown 1995 / INQUERY style).

The IR-side unsafe techniques the paper cites: process query terms in
decreasing order of "interest" (score upper bound — rare terms first),
under a postings budget.

* ``quit``: once the budget is exhausted, stop entirely — remaining
  terms contribute nothing;
* ``continue``: after the budget point, keep reading the remaining
  (frequent, long) posting lists but only update the accumulators of
  documents already seen — no new candidates are admitted.  Slower
  than quit but much closer to the exact ranking.

Both are *unsafe*: they can miss documents and mis-score survivors;
experiment E12 quantifies the quality/speed trade-off against the safe
techniques.
"""

from __future__ import annotations

import numpy as np

from ..errors import TopNError
from ..ir.invindex import InvertedIndex
from ..ir.ranking import ScoringModel
from ..obs import metrics, tracer
from ..storage import kernel, stats
from ..storage.bat import BAT
from ..storage.blocks import DocBlocks
from .result import TopNResult

_STRATEGIES = ("quit", "continue")


def quit_continue_topn(
    index: InvertedIndex,
    tids: list[int],
    model: ScoringModel,
    n: int,
    budget_fraction: float = 0.25,
    strategy: str = "continue",
    *,
    block_size: int | None = None,
    resume_from=None,
    capture_state: bool = False,
) -> TopNResult:
    """Unsafe top-N with a postings budget.

    ``budget_fraction`` is the fraction of the query's total posting
    volume processed *fully* (with accumulator creation); term order is
    by descending score upper bound, so the budget is spent on the most
    interesting terms first.

    The accumulation phase is independent of ``n`` — only the final
    tail cut depends on it — so ``capture_state=True`` snapshots the
    candidate/score arrays into ``stats["resume_state"]`` and
    ``resume_from`` answers *any* ``n`` by re-cutting the cached
    arrays, reading no postings at all.  The re-cut is the same
    deterministic ``topn_tail``, so a resumed answer is identical to a
    cold run at the new ``n``.

    ``block_size`` switches the continue phase to block-at-a-time: each
    continue-term posting list is viewed as :class:`DocBlocks` (doc-id
    order, per-block ``(min_doc, max_doc)`` metadata), and blocks whose
    id range provably contains no admitted document are skipped without
    reading their payload — the accumulator (and the answer) is
    bit-identical to the scalar pass, which masks those postings to
    nothing anyway.  The full phase is already one vectorized
    accumulation per term, so blocking only changes the continue phase.
    """
    if strategy not in _STRATEGIES:
        raise TopNError(f"unknown strategy {strategy!r}; have {_STRATEGIES}")
    if not 0.0 < budget_fraction <= 1.0:
        raise TopNError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
    if resume_from is not None:
        return _resume_cut(resume_from, tids, model, n, budget_fraction, strategy)

    # order terms by interest: highest upper bound first
    ordered = sorted(
        tids,
        key=lambda tid: -model.upper_bound(index, index.term_stats(tid)),
    )
    total_postings = sum(index.posting_length(tid) for tid in tids)
    budget = budget_fraction * total_postings

    with tracer.span("topn.quit_continue", n=n, strategy=strategy,
                     budget_fraction=budget_fraction, terms=len(tids)):
        traced = tracer.enabled()
        accumulator = np.zeros(index.n_docs, dtype=np.float64)
        admitted = np.zeros(index.n_docs, dtype=bool)
        postings_full = 0
        postings_continued = 0
        terms_full = 0
        quit_reached = False
        # the admitted set is frozen once the budget is exhausted, so
        # the continue phase can prune against one sorted snapshot
        admitted_ids = None
        blocks_read = 0
        blocks_skipped = 0
        for tid in ordered:
            plen = index.posting_length(tid)
            if not quit_reached and postings_full + plen > budget and terms_full > 0:
                quit_reached = True
                if traced:
                    tracer.event("qc.budget_exhausted", terms_full=terms_full,
                                 postings_full=postings_full)
            if quit_reached and strategy == "quit":
                break
            doc_ids, tfs = index.postings(tid)
            if len(doc_ids) == 0:
                continue
            partials = model.partial_scores(index, tid, doc_ids, tfs)
            if not quit_reached:
                np.add.at(accumulator, doc_ids, partials)
                admitted[doc_ids] = True
                postings_full += plen
                terms_full += 1
            elif block_size is None:
                # continue phase: update existing accumulators only
                mask = admitted[doc_ids]
                np.add.at(accumulator, doc_ids[mask], partials[mask])
                postings_continued += plen
                stats.charge_comparisons(len(doc_ids))
            else:
                # blocked continue phase: skip blocks whose id range
                # holds no admitted document (metadata-only decision)
                if admitted_ids is None:
                    admitted_ids = np.flatnonzero(admitted)
                blocks = DocBlocks(doc_ids, partials, block_size)
                overlap = blocks.overlapping(admitted_ids)
                for b in np.flatnonzero(overlap):
                    b_docs, b_partials = blocks.block(int(b))
                    mask = admitted[b_docs]
                    np.add.at(accumulator, b_docs[mask], b_partials[mask])
                    stats.charge_comparisons(len(b_docs))
                read = int(np.count_nonzero(overlap))
                blocks_read += read
                blocks_skipped += blocks.n_blocks - read
                postings_continued += plen

        candidates = np.nonzero(admitted)[0]
        stats.charge_tuples_written(len(candidates))
        scores = BAT(accumulator[candidates], head=candidates.astype(np.int64), head_key=True)
        top = kernel.topn_tail(scores, n, descending=True)
        tracer.annotate(quit_reached=quit_reached, terms_full=terms_full,
                        candidates=len(candidates))
        run_stats = {
            "terms_total": len(tids),
            "terms_full": terms_full,
            "postings_total": total_postings,
            "postings_full": postings_full,
            "postings_continued": postings_continued,
            "candidates": len(candidates),
            "resumed": False,
        }
        if block_size is not None:
            run_stats["block_size"] = block_size
            run_stats["blocks_read"] = blocks_read
            run_stats["blocks_skipped"] = blocks_skipped
            if metrics.enabled():
                metrics.inc("topn.blocks_read", blocks_read)
                metrics.inc("topn.blocks_skipped", blocks_skipped)
        result = TopNResult.from_bat(
            top, n, strategy=f"brown-{strategy}", safe=False, stats=run_stats,
        )
        if capture_state:
            from ..cache.resume import AccumulatorResumeState
            result.stats["resume_state"] = AccumulatorResumeState(
                strategy=strategy,
                budget_fraction=budget_fraction,
                terms=tuple(sorted(int(t) for t in tids)),
                candidates=candidates.copy(),
                scores=accumulator[candidates].copy(),
                run_stats={k: v for k, v in run_stats.items() if k != "resumed"},
            )
        return result


def _resume_cut(state, tids, model, n: int, budget_fraction: float,
                strategy: str) -> TopNResult:
    """Answer top-``n`` from a cached accumulation snapshot."""
    del model  # term identity covers the model through the fingerprint
    if state.strategy != strategy or state.budget_fraction != budget_fraction:
        raise TopNError(
            f"resume state was built with strategy={state.strategy!r}/"
            f"budget={state.budget_fraction}, query asks {strategy!r}/"
            f"{budget_fraction}")
    if tuple(sorted(int(t) for t in tids)) != state.terms:
        raise TopNError("resume state covers a different term set")
    with tracer.span("topn.quit_continue", n=n, strategy=strategy,
                     budget_fraction=budget_fraction, terms=len(tids),
                     resumed=True):
        candidates = state.candidates
        # materializing the candidate BAT is the only charged work —
        # the postings the cold run read stay untouched
        stats.charge_tuples_written(len(candidates))
        scores = BAT(np.asarray(state.scores, dtype=np.float64),
                     head=np.asarray(candidates, dtype=np.int64), head_key=True)
        top = kernel.topn_tail(scores, n, descending=True)
        tracer.annotate(candidates=len(candidates))
        run_stats = dict(state.run_stats)
        run_stats["resumed"] = True
        return TopNResult.from_bat(
            top, n, strategy=f"brown-{strategy}", safe=False, stats=run_stats,
        )
