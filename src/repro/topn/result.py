"""Top-N result representation shared by all strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopNError
from ..storage.bat import BAT


@dataclass(frozen=True)
class RankedItem:
    """One result: an object/document id and its score."""

    obj_id: int
    score: float


@dataclass
class TopNResult:
    """A ranked top-N answer plus provenance.

    ``safe`` records the paper's safe/unsafe taxonomy: safe strategies
    guarantee the exact top-N (up to score ties); unsafe strategies
    trade answer quality for speed.  ``stats`` carries strategy-specific
    counters (restarts, stop depth, postings touched, ...).

    Deterministic tie-breaking (enforced)
    -------------------------------------
    Every strategy in :mod:`repro.topn` shares one convention: results
    are ordered by **score descending, then object id ascending**, and
    when a tied score group straddles the N-boundary the *smallest*
    ids win.  ``__post_init__`` enforces the ordering half of this
    contract — a result whose tied items are not id-ascending raises
    :class:`~repro.errors.TopNError` — so any two exact engines on the
    same instance return byte-identical rankings and the differential
    conformance suite can compare them directly.  The producing
    primitives uphold the boundary half: ``BoundedTopN`` treats larger
    ids as weaker on equal scores, and ``kernel.topn_tail`` /
    ``kernel.sort_tail`` break ties by head oid.
    """

    items: list[RankedItem]
    n_requested: int
    strategy: str
    safe: bool
    stats: dict = field(default_factory=dict)
    #: distributed-merge certification: ``True`` when a parallel
    #: coordinator proved (via its threshold bound, or a round-2 probe)
    #: that this answer equals the serial exact answer; ``False`` when a
    #: bounded merge could not certify; ``None`` for serial strategies,
    #: where the ``safe`` taxonomy already answers the question.
    certified: bool | None = None

    def __post_init__(self) -> None:
        if len(self.items) > self.n_requested:
            raise TopNError(
                f"{self.strategy}: returned {len(self.items)} items for N={self.n_requested}"
            )
        scores = [item.score for item in self.items]
        if any(a < b for a, b in zip(scores, scores[1:])):
            raise TopNError(f"{self.strategy}: result items are not score-descending")
        for a, b in zip(self.items, self.items[1:]):
            if a.score == b.score and a.obj_id >= b.obj_id:
                raise TopNError(
                    f"{self.strategy}: tied scores must be id-ascending "
                    f"(got {a.obj_id} before {b.obj_id} at score {a.score})"
                )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def doc_ids(self) -> list[int]:
        """Result object ids, best first."""
        return [item.obj_id for item in self.items]

    @property
    def scores(self) -> list[float]:
        return [item.score for item in self.items]

    def same_ranking(self, other: "TopNResult") -> bool:
        """Same object ids in the same order (scores may differ by
        representation, e.g. NRA reports lower bounds)."""
        return self.doc_ids == other.doc_ids

    def same_set(self, other: "TopNResult") -> bool:
        """Same object ids regardless of order."""
        return set(self.doc_ids) == set(other.doc_ids)

    @classmethod
    def from_bat(cls, bat: BAT, n: int, strategy: str, safe: bool,
                 stats: dict | None = None) -> "TopNResult":
        """Wrap a ``[(obj, score)]`` BAT that is already the descending
        top-N (e.g. the output of ``kernel.topn_tail``)."""
        items = [RankedItem(int(h), float(t)) for h, t in bat.to_list()[:n]]
        return cls(items, n, strategy, safe, stats or {})
