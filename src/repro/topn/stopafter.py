"""Carey–Kossmann STOP AFTER operators ("Reducing the Braking Distance
of an SQL Query Engine", VLDB'98).

The relational side of top-N: a ``STOP AFTER N`` operator truncates a
tuple stream.  The "braking distance" is how many tuples still flow
through the plan before the stop takes effect.  Policies:

* ``classic_topn`` — the unoptimized plan: full sort, then slice;
* ``sort_stop`` — STOP folded into the sort: a partial (top-N) sort;
* ``scan_stop`` — STOP over an already score-ordered input: read just
  the prefix;
* ``stop_after_filter`` — STOP placement around a filter:
  *conservative* keeps the stop above the filter (always exact, no
  restart), *aggressive* pushes a stop *below* the filter using an
  inflated K and restarts with a doubled K when the filter eats too
  much — Carey–Kossmann's restart policy.
"""

from __future__ import annotations

import numpy as np

from ..errors import TopNError
from ..obs import tracer
from ..storage import kernel, stats
from ..storage.bat import BAT
from .result import TopNResult


def classic_topn(scores: BAT, n: int) -> TopNResult:
    """Full sort + slice: the plan without a STOP AFTER operator."""
    with tracer.span("topn.classic", n=n, size=len(scores)):
        ordered = kernel.sort_tail(scores, descending=True)
        top = kernel.slice_pairs(ordered, 0, n)
        return TopNResult.from_bat(top, n, strategy="classic-sort", safe=True,
                                   stats={"tuples_flowing": len(scores)})


def sort_stop(scores: BAT, n: int) -> TopNResult:
    """STOP folded into the sort: partial top-N selection."""
    with tracer.span("topn.sort_stop", n=n, size=len(scores)):
        top = kernel.topn_tail(scores, n, descending=True)
        return TopNResult.from_bat(top, n, strategy="sort-stop", safe=True,
                                   stats={"tuples_flowing": len(scores)})


def scan_stop(scores: BAT, n: int) -> TopNResult:
    """STOP over a score-ordered input: take the prefix.

    Exact only when the input is descending-sorted on score; raises
    otherwise rather than silently returning garbage."""
    if not scores.tail_sorted_desc:
        raise TopNError("scan_stop requires a descending score-sorted input")
    with tracer.span("topn.scan_stop", n=n, size=len(scores)):
        top = kernel.slice_pairs(scores, 0, n)
        return TopNResult.from_bat(top, n, strategy="scan-stop", safe=True,
                                   stats={"tuples_flowing": min(n, len(scores))})


def stop_after_filter(
    scores: BAT,
    attributes: BAT,
    n: int,
    attr_lo,
    attr_hi,
    policy: str = "conservative",
    inflation: float = 2.0,
) -> TopNResult:
    """Top-N of ``scores`` restricted to objects whose attribute lies
    in ``[attr_lo, attr_hi]``.

    Both BATs must be aligned over the same dense object ids.  The
    *conservative* policy filters everything and then sort-stops; the
    *aggressive* policy partial-sorts only ``K = ceil(n * inflation)``
    best scores, filters those, and restarts with K doubled whenever
    fewer than ``n`` survive (restarts counted in ``stats``).
    """
    if policy not in ("conservative", "aggressive"):
        raise TopNError(f"unknown policy {policy!r}")
    if len(scores) != len(attributes):
        raise TopNError("scores and attributes must be aligned")
    if inflation < 1.0:
        raise TopNError(f"inflation must be >= 1.0, got {inflation}")

    if policy == "conservative":
        with tracer.span("topn.stop_after", n=n, policy=policy, size=len(scores)):
            mask = (attributes.tail >= attr_lo) & (attributes.tail <= attr_hi)
            kernel.scan_cost(attributes)
            stats.charge_comparisons(2 * len(attributes))
            surviving = kernel.select_mask(scores, mask, _precharged=True)
            kernel.scan_cost(scores)
            top = kernel.topn_tail(surviving, n, descending=True)
            return TopNResult.from_bat(
                top, n, strategy="stop-conservative", safe=True,
                stats={"tuples_flowing": len(scores) + len(surviving), "restarts": 0},
            )

    # aggressive: stop below the filter, restart on underflow
    with tracer.span("topn.stop_after", n=n, policy=policy, size=len(scores),
                     inflation=inflation):
        k = max(int(np.ceil(n * inflation)), n)
        restarts = 0
        tuples_flowing = 0
        while True:
            prefix = kernel.topn_tail(scores, k, descending=True)
            tuples_flowing += len(prefix)
            attr_values = kernel.fetch_values(attributes, prefix.head_array())
            stats.charge_comparisons(2 * len(attr_values))
            mask = (attr_values >= attr_lo) & (attr_values <= attr_hi)
            surviving = kernel.select_mask(prefix, mask, _precharged=True)
            if len(surviving) >= n or k >= len(scores):
                top = kernel.slice_pairs(surviving, 0, n)
                tracer.annotate(restarts=restarts, final_k=k)
                return TopNResult.from_bat(
                    top, n, strategy="stop-aggressive", safe=True,
                    stats={"tuples_flowing": tuples_flowing, "restarts": restarts,
                           "final_k": k},
                )
            restarts += 1
            stats.charge_extra("stop_after_restarts")
            k = min(k * 2, len(scores))
            tracer.event("stop.restart", k=k, surviving=len(surviving))
