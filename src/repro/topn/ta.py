"""The Threshold Algorithm (TA).

[Fag99 / Fagin-Lotem-Naor]: interleave sorted access on all lists; for
every newly seen object, immediately complete its grade by random
access to the other lists; maintain the best N seen so far and the
*threshold* τ = t(last grades seen under sorted access on each list).
No unseen object can aggregate above τ (monotonicity), so TA stops as
soon as the current N-th best score reaches τ.  TA is
instance-optimal: it stops no later than FA and usually far earlier —
this is the "upper and lower bound administration" the paper cites.

Incremental ("continue") evaluation
-----------------------------------
Because TA completes every object the moment it is first seen, its
whole state is exact: the seen-object score map, the per-source last
grades, and the next sorted-access depth.  ``capture_state=True``
snapshots that frontier into the result's ``stats["resume_state"]``;
passing it back via ``resume_from`` with a larger ``n`` continues the
run instead of restarting it.  The resumed run first re-evaluates the
stop rule *at the saved depth* — a cold run at the larger ``n`` checks
there too, and because a larger heap's N-th-best never exceeds a
smaller one's, the cold run can never have stopped earlier than the
saved frontier.  From that point the depth loop proceeds exactly as
cold, so the resumed answer is identical to a cold run at the new
``n`` (including tie order) while paying no repeated sorted or random
accesses for the saved prefix.
"""

from __future__ import annotations

from ..errors import TopNError
from ..obs import tracer
from .aggregates import AggregateFunction, SUM, require_monotone
from .heap import BoundedTopN
from .result import TopNResult


def _check_resume(resume_from, n: int, m: int, agg: AggregateFunction) -> None:
    if getattr(resume_from, "m_sources", None) != m:
        raise TopNError(
            f"resume state covers {getattr(resume_from, 'm_sources', '?')} "
            f"sources, query has {m}")
    if getattr(resume_from, "agg_name", None) != agg.name:
        raise TopNError(
            f"resume state was built with aggregate "
            f"{getattr(resume_from, 'agg_name', '?')!r}, query uses {agg.name!r}")
    if n < resume_from.n:
        raise TopNError(
            f"resume target n={n} is below the saved frontier's n={resume_from.n}; "
            "serve shrinking requests from the result cache instead")


def threshold_topn(sources: list, n: int, agg: AggregateFunction = SUM, *,
                   resume_from=None, capture_state: bool = False,
                   max_depth: int | None = None) -> TopNResult:
    """Exact top-N over graded sources with the Threshold Algorithm.

    ``resume_from`` continues a previous run's saved frontier (a
    :class:`~repro.cache.resume.TAResumeState` with the same sources,
    aggregate, and ``n`` no smaller than the saved one).
    ``capture_state=True`` stores this run's frontier under
    ``stats["resume_state"]`` for a later continue.

    ``max_depth`` caps the sorted-access depth: the run stops before
    reading rank ``max_depth`` with ``stats["stop_reason"] ==
    "max_depth"`` and the best-effort top of everything seen so far
    (``stats["final_threshold"]`` is then a certified upper bound on
    any *unseen* object's score).  A capped run's captured state
    resumes exactly — chaining capped runs with growing depths visits
    the same states a single uncapped run does, which is how the serve
    layer streams anytime answers.
    """
    if not sources:
        raise TopNError("threshold_topn needs at least one source")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-ta", safe=True)
    require_monotone(agg, "TA")
    agg.validate_arity(len(sources))

    m = len(sources)
    with tracer.span("topn.ta", n=n, m=m, agg=agg.name,
                     objects=max(source.n_objects for source in sources),
                     resumed=resume_from is not None):
        traced = tracer.enabled()
        heap = BoundedTopN(n)
        # exact aggregate of every object seen under sorted access — the
        # heap alone is not resumable (it forgets evicted objects)
        seen_scores: dict[int, float] = {}
        # per-source grade floor once a list is exhausted: 0 (grades are
        # non-negative, and posting-style sources grade absent objects 0)
        last_grades = [0.0] * m
        depth = 0
        random_accesses = 0
        resumed_from = 0
        stop_reason = "threshold"
        threshold = 0.0
        done = False
        if resume_from is not None:
            _check_resume(resume_from, n, m, agg)
            resumed_from = resume_from.n
            seen_scores = dict(resume_from.seen_scores)
            for obj, score in seen_scores.items():
                heap.push(obj, score)
            last_grades = list(resume_from.last_grades)
            depth = resume_from.depth_next
            threshold = agg.combine(last_grades)
            if resume_from.exhausted:
                # the saved run drained every source: no unseen objects
                done, stop_reason = True, "exhausted"
            elif heap.full and heap.threshold() >= threshold:
                # re-check the stop rule at the saved depth before reading
                # deeper — a cold run at this n checks (and may stop) here
                done = True
        ranks_read = depth
        while not done:
            if max_depth is not None and depth >= max_depth:
                stop_reason = "max_depth"
                break
            active = False
            for i, source in enumerate(sources):
                if source.exhausted(depth):
                    last_grades[i] = 0.0
                    continue
                active = True
                obj, grade = source.sorted_access(depth)
                last_grades[i] = grade
                if obj in seen_scores:
                    continue
                grades = [
                    grade if j == i else other.random_access(obj)
                    for j, other in enumerate(sources)
                ]
                random_accesses += m - 1
                score = agg.combine(grades)
                seen_scores[obj] = score
                heap.push(obj, score)
            threshold = agg.combine(last_grades)
            if traced:
                # per-round threshold evolution: τ falls, the heap's
                # N-th best rises; they crossing is the stop decision
                tracer.event("ta.round", depth=depth, threshold=threshold,
                             heap_threshold=heap.threshold(),
                             objects_seen=len(seen_scores))
            ranks_read = depth + 1
            if heap.full and heap.threshold() >= threshold:
                break
            if not active:
                stop_reason = "exhausted"
                break
            depth += 1
        tracer.annotate(stop_reason=stop_reason, depth=ranks_read,
                        heap_churn=heap.churn())
        stats = {
            "depth": ranks_read,
            "objects_seen": len(seen_scores),
            "random_accesses": random_accesses,
            "final_threshold": threshold,
            "stop_reason": stop_reason,
            "heap_churn": heap.churn(),
            "resumed_from": resumed_from,
        }
        if capture_state:
            from ..cache.resume import TAResumeState
            stats["resume_state"] = TAResumeState(
                n=n, m_sources=m, agg_name=agg.name, depth_next=ranks_read,
                last_grades=tuple(last_grades), seen_scores=dict(seen_scores),
                exhausted=(stop_reason == "exhausted"),
            )
        return TopNResult(heap.items_sorted(), n, strategy="fagin-ta",
                          safe=True, stats=stats)
