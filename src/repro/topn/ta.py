"""The Threshold Algorithm (TA).

[Fag99 / Fagin-Lotem-Naor]: interleave sorted access on all lists; for
every newly seen object, immediately complete its grade by random
access to the other lists; maintain the best N seen so far and the
*threshold* τ = t(last grades seen under sorted access on each list).
No unseen object can aggregate above τ (monotonicity), so TA stops as
soon as the current N-th best score reaches τ.  TA is
instance-optimal: it stops no later than FA and usually far earlier —
this is the "upper and lower bound administration" the paper cites.
"""

from __future__ import annotations

from ..errors import TopNError
from ..obs import tracer
from .aggregates import AggregateFunction, SUM
from .heap import BoundedTopN
from .result import TopNResult


def threshold_topn(sources: list, n: int, agg: AggregateFunction = SUM) -> TopNResult:
    """Exact top-N over graded sources with the Threshold Algorithm."""
    if not sources:
        raise TopNError("threshold_topn needs at least one source")
    if n <= 0:
        return TopNResult([], max(n, 0), strategy="fagin-ta", safe=True)
    agg.validate_arity(len(sources))

    m = len(sources)
    with tracer.span("topn.ta", n=n, m=m, agg=agg.name):
        traced = tracer.enabled()
        heap = BoundedTopN(n)
        seen: set[int] = set()
        # per-source grade floor once a list is exhausted: 0 (grades are
        # non-negative, and posting-style sources grade absent objects 0)
        last_grades = [0.0] * m
        depth = 0
        random_accesses = 0
        stop_reason = "threshold"
        while True:
            active = False
            for i, source in enumerate(sources):
                if source.exhausted(depth):
                    last_grades[i] = 0.0
                    continue
                active = True
                obj, grade = source.sorted_access(depth)
                last_grades[i] = grade
                if obj in seen:
                    continue
                seen.add(obj)
                grades = [
                    grade if j == i else other.random_access(obj)
                    for j, other in enumerate(sources)
                ]
                random_accesses += m - 1
                heap.push(obj, agg.combine(grades))
            threshold = agg.combine(last_grades)
            if traced:
                # per-round threshold evolution: τ falls, the heap's
                # N-th best rises; they crossing is the stop decision
                tracer.event("ta.round", depth=depth, threshold=threshold,
                             heap_threshold=heap.threshold(), objects_seen=len(seen))
            if heap.full and heap.threshold() >= threshold:
                break
            if not active:
                stop_reason = "exhausted"
                break
            depth += 1
        tracer.annotate(stop_reason=stop_reason, depth=depth + 1,
                        heap_churn=heap.churn())
        return TopNResult(
            heap.items_sorted(), n, strategy="fagin-ta", safe=True,
            stats={
                "depth": depth + 1,
                "objects_seen": len(seen),
                "random_accesses": random_accesses,
                "final_threshold": threshold,
                "stop_reason": stop_reason,
                "heap_churn": heap.churn(),
            },
        )
