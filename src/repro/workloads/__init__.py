"""Workload generation: synthetic Zipf collections with planted topics,
topical queries with derived relevance judgments, and FT-like presets."""

from .queries import Query, QuerySet, generate_queries
from .synthetic import SyntheticCollection, SyntheticSpec, term_string
from . import trec

__all__ = [
    "Query",
    "QuerySet",
    "SyntheticCollection",
    "SyntheticSpec",
    "generate_queries",
    "term_string",
    "trec",
]
