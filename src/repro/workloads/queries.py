"""Query and relevance-judgment generation for synthetic collections.

Queries are topical: a query picks a planted topic and samples some of
that topic's terms, biased toward the *rarer* (higher-rank) ones — the
"most interesting" terms in the paper's vocabulary.  The documents
generated from the same topic form the relevance judgments (qrels), so
precision/recall of any retrieval strategy can be measured without
human assessments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..ir.documents import Collection


@dataclass(frozen=True)
class Query:
    """One query: term ids (deduplicated), its topic, and an id."""

    query_id: int
    term_ids: tuple[int, ...]
    topic: int

    def __len__(self) -> int:
        return len(self.term_ids)

    def text(self, collection: Collection) -> str:
        return " ".join(collection.term_strings[t] for t in self.term_ids)


@dataclass
class QuerySet:
    """Queries plus binary relevance judgments (query id → doc ids)."""

    queries: list[Query]
    qrels: dict[int, frozenset[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def relevant(self, query_id: int) -> frozenset[int]:
        return self.qrels.get(query_id, frozenset())

    def __iter__(self):
        return iter(self.queries)


def generate_queries(
    collection: Collection,
    n_queries: int = 50,
    terms_range: tuple[int, int] = (2, 8),
    rare_bias: float = 1.5,
    seed: int = 0,
) -> QuerySet:
    """Generate topical queries with qrels for a synthetic collection.

    Parameters
    ----------
    terms_range:
        Inclusive (min, max) number of distinct query terms.
    rare_bias:
        Exponent biasing term choice toward rarer terms within the
        topic (0 = uniform; larger = rarer).
    """
    topic_terms = collection.extras.get("topic_terms")
    if topic_terms is None:
        raise WorkloadError(
            "collection has no planted topics; generate it with SyntheticCollection"
        )
    lo, hi = terms_range
    if not 1 <= lo <= hi:
        raise WorkloadError(f"invalid terms_range {terms_range}")
    rng = np.random.default_rng(seed)
    n_topics = len(topic_terms)

    # relevance: documents generated from the query's topic
    docs_by_topic: dict[int, list[int]] = {}
    for doc in collection.documents:
        docs_by_topic.setdefault(doc.topic, []).append(doc.doc_id)

    queries = []
    qrels = {}
    for query_id in range(n_queries):
        topic = int(rng.integers(0, n_topics))
        candidates = np.asarray(topic_terms[topic])
        # bias toward rarer terms: weight ∝ (term rank)^rare_bias
        weights = np.power(candidates.astype(np.float64) + 1.0, rare_bias)
        weights /= weights.sum()
        k = int(rng.integers(lo, hi + 1))
        k = min(k, len(candidates))
        picked = rng.choice(candidates, size=k, replace=False, p=weights)
        queries.append(Query(query_id, tuple(int(t) for t in sorted(picked)), topic))
        qrels[query_id] = frozenset(docs_by_topic.get(topic, ()))
    return QuerySet(queries, qrels)
