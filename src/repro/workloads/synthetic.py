"""Synthetic Zipf text collections with planted topics.

This is the substitution for the TREC FT collection (see DESIGN.md):
the paper's fragmentation argument depends only on (a) term frequencies
being Zipf distributed and (b) queries touching topical, mostly
mid-to-rare terms whose postings are small, while frequent terms own
most of the postings volume.  The generator plants exactly that
structure, with ground-truth topics from which relevance judgments are
derived.

Generation model
----------------
* a vocabulary of ``vocabulary_size`` terms; term id equals global
  frequency rank (id 0 = most frequent); global probabilities follow a
  Zipf-Mandelbrot law ``p(r) ∝ 1 / (r + q)^s``;
* ``n_topics`` topics, each owning ``terms_per_topic`` *topical terms*
  drawn from the mid-to-rare rank band (frequent function-word-like
  terms are never topical, matching natural language);
* each document draws a topic and a log-normal length; each token comes
  from the topic's term distribution with probability ``topic_mix``,
  otherwise from the global Zipf distribution.

Everything is driven by one integer seed; generation is vectorized (a
few numpy draws for the whole corpus).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

_SYLLABLES = (
    "ba be bi bo bu da de di do du fa fe fi fo fu ga ge gi go gu "
    "ka ke ki ko ku la le li lo lu ma me mi mo mu na ne ni no nu "
    "pa pe pi po pu ra re ri ro ru sa se si so su ta te ti to tu "
    "va ve vi vo vu za ze zi zo zu"
).split()


def term_string(rank: int) -> str:
    """Deterministic pronounceable surface form for a term rank."""
    parts = []
    value = rank
    while True:
        parts.append(_SYLLABLES[value % len(_SYLLABLES)])
        value //= len(_SYLLABLES)
        if value == 0:
            break
    return "".join(reversed(parts))


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic collection."""

    n_docs: int = 2000
    vocabulary_size: int = 20_000
    zipf_exponent: float = 1.1
    zipf_shift: float = 2.7
    n_topics: int = 40
    terms_per_topic: int = 60
    topic_mix: float = 0.55
    #: Zipf exponent of the within-topic term distribution; topical
    #: terms that are globally rarer are also rarer within their topic,
    #: so every topic has both common and "interesting" rare terms
    topic_zipf: float = 1.0
    doc_length_mean: float = 160.0
    doc_length_sigma: float = 0.45
    min_doc_length: int = 10
    #: topical terms are drawn from ranks in this fractional band
    topical_band: tuple[float, float] = (0.05, 0.85)
    seed: int = 0

    def validate(self) -> None:
        if self.n_docs <= 0 or self.vocabulary_size <= 0:
            raise WorkloadError("n_docs and vocabulary_size must be positive")
        if not 0.0 <= self.topic_mix <= 1.0:
            raise WorkloadError(f"topic_mix must be in [0, 1], got {self.topic_mix}")
        if self.n_topics <= 0 or self.terms_per_topic <= 0:
            raise WorkloadError("n_topics and terms_per_topic must be positive")
        lo, hi = self.topical_band
        if not 0.0 <= lo < hi <= 1.0:
            raise WorkloadError(f"invalid topical_band {self.topical_band}")
        band_size = int((hi - lo) * self.vocabulary_size)
        if self.terms_per_topic > band_size:
            raise WorkloadError(
                f"terms_per_topic={self.terms_per_topic} exceeds the topical band "
                f"({band_size} terms)"
            )


class SyntheticCollection:
    """Factory namespace for synthetic collections."""

    @staticmethod
    def generate(spec: SyntheticSpec | None = None, **overrides) -> "Collection":
        """Generate a collection; keyword overrides update the spec.

        ``SyntheticCollection.generate(n_docs=500, seed=3)`` is the
        short form used throughout examples and tests.
        """
        from ..ir.documents import Collection, Document  # local import avoids cycles

        if spec is None:
            spec = SyntheticSpec(**overrides)
        elif overrides:
            spec = SyntheticSpec(**{**spec.__dict__, **overrides})
        spec.validate()
        rng = np.random.default_rng(spec.seed)

        vocab = spec.vocabulary_size
        ranks = np.arange(vocab, dtype=np.float64)
        global_probs = 1.0 / np.power(ranks + 1.0 + spec.zipf_shift, spec.zipf_exponent)
        global_probs /= global_probs.sum()

        # plant topics in the mid-to-rare band; within a topic, terms
        # are Zipf distributed too, ordered by global rank so globally
        # rare terms are also the topic's rare ("interesting") ones
        band_lo = int(spec.topical_band[0] * vocab)
        band_hi = int(spec.topical_band[1] * vocab)
        topic_terms = np.stack([
            np.sort(rng.choice(np.arange(band_lo, band_hi),
                               size=spec.terms_per_topic, replace=False))
            for _ in range(spec.n_topics)
        ])
        topic_probs = 1.0 / np.power(
            np.arange(1, spec.terms_per_topic + 1, dtype=np.float64), spec.topic_zipf
        )
        topic_probs /= topic_probs.sum()

        # document skeletons
        lengths = np.maximum(
            rng.lognormal(np.log(spec.doc_length_mean), spec.doc_length_sigma, spec.n_docs)
            .astype(np.int64),
            spec.min_doc_length,
        )
        topics = rng.integers(0, spec.n_topics, size=spec.n_docs)
        topical_counts = rng.binomial(lengths, spec.topic_mix)
        global_counts = lengths - topical_counts

        # one bulk draw for all global tokens, split per document
        all_global = rng.choice(vocab, size=int(global_counts.sum()), p=global_probs)
        global_splits = np.cumsum(global_counts)[:-1]
        global_parts = np.split(all_global, global_splits)

        # one bulk draw per topic for its topical tokens
        doc_topical_parts: list[np.ndarray | None] = [None] * spec.n_docs
        for topic in range(spec.n_topics):
            members = np.nonzero(topics == topic)[0]
            if len(members) == 0:
                continue
            counts = topical_counts[members]
            draws = rng.choice(topic_terms[topic], size=int(counts.sum()),
                               replace=True, p=topic_probs)
            splits = np.cumsum(counts)[:-1]
            for doc_index, part in zip(members, np.split(draws, splits)):
                doc_topical_parts[doc_index] = part

        documents = []
        for doc_id in range(spec.n_docs):
            topical = doc_topical_parts[doc_id]
            if topical is None:
                topical = np.empty(0, dtype=np.int64)
            token_ids = np.concatenate([global_parts[doc_id], topical]).astype(np.int64)
            rng.shuffle(token_ids)
            documents.append(Document(doc_id, token_ids, topic=int(topics[doc_id])))

        term_strings = [term_string(rank) for rank in range(vocab)]
        collection = Collection(documents, term_strings, name=f"synthetic-{spec.seed}")
        collection.extras["spec"] = spec
        collection.extras["topic_terms"] = topic_terms
        return collection
