"""Preset workloads modelled on the paper's experimental setting.

The author's experiments ran on the Financial Times (FT) collection of
TREC.  ``ft_like`` builds a scaled synthetic stand-in with FT-like
shape parameters (long-tailed Zipf vocabulary, news-article lengths);
``tiny`` and ``small`` are fast presets for tests and CI.
"""

from __future__ import annotations

from ..ir.documents import Collection
from .queries import QuerySet, generate_queries
from .synthetic import SyntheticCollection, SyntheticSpec


def tiny(seed: int = 0) -> SyntheticSpec:
    """A few hundred documents; for unit tests."""
    return SyntheticSpec(
        n_docs=300,
        vocabulary_size=4000,
        zipf_exponent=1.35,
        n_topics=10,
        terms_per_topic=40,
        topic_mix=0.45,
        topic_zipf=1.5,
        doc_length_mean=80.0,
        seed=seed,
    )


def small(seed: int = 0) -> SyntheticSpec:
    """A few thousand documents; for integration tests and quick runs."""
    return SyntheticSpec(
        n_docs=3000,
        vocabulary_size=30_000,
        zipf_exponent=1.5,
        n_topics=45,
        terms_per_topic=100,
        topic_mix=0.35,
        topic_zipf=1.5,
        doc_length_mean=120.0,
        seed=seed,
    )


def ft_like(scale: float = 1.0, seed: int = 0) -> SyntheticSpec:
    """FT-shaped preset: ``scale=1.0`` is ~20k documents (a laptop-scale
    stand-in for FT's ~210k; the paper's ratios, not its absolute
    sizes, are the reproduction target)."""
    n_docs = max(int(20_000 * scale), 100)
    return SyntheticSpec(
        n_docs=n_docs,
        vocabulary_size=max(int(60_000 * scale ** 0.5), 3000),
        zipf_exponent=1.5,
        n_topics=max(int(120 * scale ** 0.5), 8),
        terms_per_topic=100,
        topic_mix=0.35,
        topic_zipf=1.5,
        doc_length_mean=220.0,
        doc_length_sigma=0.5,
        seed=seed,
    )


def build(spec: SyntheticSpec, n_queries: int = 50,
          query_seed: int = 1) -> tuple[Collection, QuerySet]:
    """Generate a (collection, query set) pair from a preset spec."""
    collection = SyntheticCollection.generate(spec)
    queries = generate_queries(collection, n_queries=n_queries, seed=query_seed)
    return collection, queries
