"""End-to-end tests for expression evaluation (parse -> flatten -> run)."""

import pytest

from repro.algebra import (
    Apply,
    CollectionValue,
    FLOAT,
    INT,
    ListType,
    Literal,
    TupleType,
    Var,
    evaluate,
    explain,
    infer_type,
    make_bag,
    make_list,
    make_set,
    parse,
)
from repro.errors import AlgebraTypeError, EvaluationError, ParseError
from repro.storage import CostCounter


def run(text, env=None):
    return evaluate(parse(text), env)


class TestPaperExample1:
    """The worked example from Section 3, Step 2 of the paper."""

    def test_select_on_list(self):
        # select([1, 2, 3, 4, 4, 5], 2, 4) == [2, 3, 4, 4]
        result = run("select([1, 2, 3, 4, 4, 5], 2, 4)")
        assert result.to_python() == [2, 3, 4, 4]
        assert result.stype == ListType(INT)

    def test_projecttobag(self):
        result = run("projecttobag([1, 2, 3, 4, 4, 5])")
        assert result.stype.extension_name == "BAG"
        assert sorted(result.to_python()) == [1, 2, 3, 4, 4, 5]

    def test_nested_expression(self):
        # select(projecttobag([...]), 2, 4) -- the "bad" plan
        result = run("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
        assert result.stype.extension_name == "BAG"
        assert sorted(result.to_python()) == [2, 3, 4, 4]

    def test_rewritten_equivalent(self):
        # projecttobag(select([...], 2, 4)) -- the "good" plan
        bad = run("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
        good = run("projecttobag(select([1, 2, 3, 4, 4, 5], 2, 4))")
        assert bad.equals(good)


class TestListOperators:
    def test_sort(self):
        assert run("sort([3, 1, 2])").to_python() == [1, 2, 3]

    def test_sort_desc(self):
        assert run("sort([3, 1, 2], 1)").to_python() == [3, 2, 1]

    def test_topn(self):
        assert run("topn([5, 9, 1, 7], 2)").to_python() == [9, 7]

    def test_topn_ascending(self):
        assert run("topn([5, 9, 1, 7], 2, 0)").to_python() == [1, 5]

    def test_slice(self):
        assert run("slice([10, 20, 30, 40], 1, 2)").to_python() == [20, 30]

    def test_concat(self):
        assert run("concat([1, 2], [3])").to_python() == [1, 2, 3]

    def test_aggregates(self):
        assert run("count([1, 2, 3])").to_python() == 3
        assert run("sum([1.5, 2.5])").to_python() == 4.0
        assert run("max([3, 9, 1])").to_python() == 9
        assert run("min([3, 9, 1])").to_python() == 1

    def test_aggregate_empty_max_raises(self):
        with pytest.raises(EvaluationError):
            run("max(xs)", {"xs": make_list([], element_type=INT)})

    def test_projecttoset(self):
        result = run("projecttoset([3, 1, 3])")
        assert result.to_python() == {1, 3}

    def test_select_on_strings(self):
        assert run("select(['b', 'a', 'c'], 'a', 'b')").to_python() == ["b", "a"]


class TestBagSetOperators:
    def test_bag_select(self):
        result = run("select(xs, 2, 3)", {"xs": make_bag([1, 2, 3, 2])})
        assert result.equals(make_bag([2, 3, 2]))

    def test_bag_sort_gives_list(self):
        result = run("sort(xs)", {"xs": make_bag([3, 1])})
        assert result.stype.extension_name == "LIST"
        assert result.to_python() == [1, 3]

    def test_bag_topn(self):
        result = run("topn(xs, 2)", {"xs": make_bag([5, 1, 9])})
        assert result.to_python() == [9, 5]

    def test_bag_union(self):
        result = run("union(xs, ys)", {"xs": make_bag([1, 2]), "ys": make_bag([2])})
        assert result.equals(make_bag([1, 2, 2]))

    def test_set_ops(self):
        env = {"a": make_set([1, 2, 3]), "b": make_set([2, 3, 4])}
        assert run("union(a, b)", env).to_python() == {1, 2, 3, 4}
        assert run("intersect(a, b)", env).to_python() == {2, 3}
        assert run("difference(a, b)", env).to_python() == {1}

    def test_set_select_keeps_set(self):
        result = run("select(a, 2, 9)", {"a": make_set([1, 2, 3])})
        assert result.stype.extension_name == "SET"
        assert result.to_python() == {2, 3}

    def test_bag_slice_is_undefined(self):
        from repro.errors import AlgebraError

        with pytest.raises(AlgebraError):
            run("slice(xs, 0, 1)", {"xs": make_bag([1])})


class TestTupleCollections:
    def docs(self, struct=ListType):
        element = TupleType.of(doc=INT, score=FLOAT)
        rows = [
            {"doc": 1, "score": 0.3},
            {"doc": 2, "score": 0.9},
            {"doc": 3, "score": 0.5},
        ]
        return CollectionValue.from_rows(struct(element), rows)

    def test_topn_by_field(self):
        result = run("topn(docs, 'score', 2)", {"docs": self.docs()})
        assert [row["doc"] for row in result.to_python()] == [2, 3]

    def test_select_by_field(self):
        result = run("select(docs, 'score', 0.4, 1.0)", {"docs": self.docs()})
        assert [row["doc"] for row in result.to_python()] == [2, 3]

    def test_sort_by_field(self):
        result = run("sort(docs, 'score', 1)", {"docs": self.docs()})
        assert [row["doc"] for row in result.to_python()] == [2, 3, 1]

    def test_project(self):
        result = run("project(docs, 'doc')", {"docs": self.docs()})
        assert result.to_python() == [1, 2, 3]
        assert result.stype == ListType(INT)

    def test_aggregate_by_field(self):
        assert run("max(docs, 'score')", {"docs": self.docs()}).to_python() == 0.9
        assert run("sum(docs, 'score')", {"docs": self.docs()}).to_python() == pytest.approx(1.7)

    def test_field_required_for_tuples(self):
        with pytest.raises(AlgebraTypeError):
            run("topn(docs, 2)", {"docs": self.docs()})

    def test_unknown_field(self):
        with pytest.raises(AlgebraTypeError):
            run("topn(docs, 'nope', 2)", {"docs": self.docs()})


class TestTyping:
    def test_infer_type(self):
        assert infer_type(parse("topn([1, 2], 1)")) == ListType(INT)
        assert infer_type(parse("sum([1.0])")) == FLOAT

    def test_unbound_variable(self):
        with pytest.raises(AlgebraTypeError):
            evaluate(parse("select(xs, 1, 2)"))

    def test_unknown_operator(self):
        from repro.errors import UnknownOperatorError

        with pytest.raises(UnknownOperatorError):
            run("frobnicate([1])")

    def test_select_on_scalar_is_error(self):
        with pytest.raises(AlgebraTypeError):
            run("select(1, 2, 3)")

    def test_field_on_atoms_is_error(self):
        with pytest.raises(AlgebraTypeError):
            run("select([1, 2], 'field', 1, 2)")


class TestParser:
    def test_whitespace_insensitive(self):
        assert run(" select( [1,2,3] , 2 , 3 ) ").to_python() == [2, 3]

    def test_floats_and_negatives(self):
        assert run("select([-2.5, 0.5, 3.5], -3.0, 1.0)").to_python() == [-2.5, 0.5]

    def test_bag_literal(self):
        result = run("count({1, 1, 2})")
        assert result.to_python() == 3  # bag keeps duplicates

    def test_empty_list_literal(self):
        assert run("count([])").to_python() == 0

    def test_string_atoms(self):
        assert run('count(["a", "b"])').to_python() == 2

    def test_parse_errors(self):
        for bad in ["select(", "select)", "[1, ", "select([1], 2, 3) extra", "@!", "[[1]]"]:
            with pytest.raises(ParseError):
                parse(bad)

    def test_str_roundtrip(self):
        expr = parse("select(projecttobag(xs), 2, 4)")
        assert str(expr) == "select(projecttobag(xs), 2, 4)"


class TestExplainAndCosts:
    def test_explain_shows_plan(self):
        plan_text = explain(parse("select(projecttobag(xs), 2, 4)"), {"xs": make_list([1, 2, 3])})
        assert "range_select" in plan_text
        assert "convert->BAG" in plan_text

    def test_order_aware_select_is_cheaper(self):
        """A select on a sorted LIST (binary search) must beat the same
        select on an unsorted LIST of equal size (scan)."""
        sorted_xs = make_list(list(range(50_000)))
        shuffled = list(range(50_000))
        shuffled[0], shuffled[-1] = shuffled[-1], shuffled[0]
        unsorted_xs = make_list(shuffled)
        expr = parse("select(xs, 100, 120)")
        with CostCounter.activate() as fast:
            evaluate(expr, {"xs": sorted_xs})
        with CostCounter.activate() as slow:
            evaluate(expr, {"xs": unsorted_xs})
        assert fast.tuples_read < slow.tuples_read / 100

    def test_topn_on_sorted_list_is_prefix(self):
        """topn on a descending-sorted LIST should cost a slice, not a
        partition of the whole input."""
        xs = make_list(list(range(10_000, 0, -1)))
        with CostCounter.activate() as cost:
            result = evaluate(parse("topn(xs, 5)"), {"xs": xs})
        assert result.to_python() == [10_000, 9_999, 9_998, 9_997, 9_996]
        assert cost.comparisons < 100

    def test_evaluate_with_expression_api(self):
        expr = Apply("topn", Apply("select", Var("xs"), 10, 99), 3)
        result = evaluate(expr, {"xs": make_list([5, 50, 500, 40, 30])})
        assert result.to_python() == [50, 40, 30]

    def test_literal_expression_node(self):
        expr = Apply("count", Literal(make_list([1, 2, 3])))
        assert evaluate(expr).to_python() == 3
