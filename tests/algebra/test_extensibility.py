"""Extensibility: a third-party extension benefits from the
inter-object optimizer through metadata alone.

This is the paper's architectural claim in executable form: the
inter-object layer "coordinates optimization between operators on
distinct extensions" without knowing them — a new structure that
registers a conversion with the right metadata gets Example-1-style
pushdowns for free.
"""

import numpy as np
import pytest

from repro.algebra import (
    Apply,
    CollectionValue,
    INT,
    ListType,
    OperatorDef,
    Registry,
    Var,
    evaluate,
)
from repro.algebra import builtin, physical
from repro.algebra.types import _CollectionType
from repro.algebra.values import ELEM
from repro.optimizer import DEFAULT_INTER_OBJECT_RULES, RuleContext, rewrite_fixpoint
from repro.storage import BAT, CostCounter


class PQueueType(_CollectionType):
    """A third-party structure: a priority queue (kept max-first)."""

    ordered = True
    allows_duplicates = True
    extension_name = "PQUEUE"


def make_pqueue(elements) -> CollectionValue:
    """Build a PQUEUE value: elements stored best (largest) first."""
    arr = np.sort(np.asarray(list(elements), dtype=np.int64))[::-1]
    return CollectionValue(PQueueType(INT), {ELEM: BAT(arr.copy(), tail_sorted_desc=True)})


def custom_registry() -> Registry:
    """A registry with the builtins plus the PQUEUE extension."""
    registry = Registry()
    builtin.install(registry)

    def tolist_result(arg_types, scalars):
        return ListType(arg_types[0].element())

    def tolist_build(plans, scalars, arg_types):
        return physical.Convert(result_type=ListType(arg_types[0].element()),
                                children=tuple(plans))

    registry.register("PQUEUE", OperatorDef(
        name="tolist",
        result_type=tolist_result,
        build=tolist_build,
        # the metadata is all the inter-object layer needs:
        properties=dict(kind="conversion", target_extension="LIST",
                        content_preserving=True, filter_commutes=True),
    ))
    # reuse the builtin select/topn/aggregate implementations for PQUEUE
    list_ext = registry.extension("LIST")
    for name in ("select", "topn", "count", "sum", "max", "min"):
        source = list_ext.operator(name)
        registry.register("PQUEUE", OperatorDef(
            name=name, result_type=_keep_type(source, name),
            build=source.build, properties=dict(source.properties),
        ))
    return registry


def _keep_type(source, name):
    """select on PQUEUE stays PQUEUE; other ops keep builtin typing."""
    if name != "select":
        return source.result_type

    def result_type(arg_types, scalars):
        return arg_types[0]

    return result_type


@pytest.fixture(scope="module")
def registry():
    return custom_registry()


class TestThirdPartyExtension:
    def test_structure_evaluates(self, registry):
        value = make_pqueue([3, 9, 1])
        result = evaluate(Apply("count", Var("q")), {"q": value}, registry)
        assert result.to_python() == 3

    def test_conversion_works(self, registry):
        value = make_pqueue([3, 9, 1])
        result = evaluate(Apply("tolist", Var("q")), {"q": value}, registry)
        assert result.stype == ListType(INT)
        assert result.to_python() == [9, 3, 1]  # queue order preserved

    def test_inter_object_rule_applies_unchanged(self, registry):
        """select(tolist(q), lo, hi) is pushed below the third-party
        conversion by the *existing* rule set — no new rules."""
        value = make_pqueue(range(100))
        expr = Apply("select", Apply("tolist", Var("q")), 10, 20)
        context = RuleContext(env_types={"q": value.stype}, registry=registry)
        rewritten, trace = rewrite_fixpoint(expr, DEFAULT_INTER_OBJECT_RULES, context)
        assert str(rewritten) == "tolist(select(q, 10, 20))"
        assert [t.rule for t in trace] == ["push-select-through-conversion"]

    def test_rewrite_preserves_semantics(self, registry):
        value = make_pqueue(range(50))
        env = {"q": value}
        original = Apply("select", Apply("tolist", Var("q")), 10, 20)
        context = RuleContext(env_types={"q": value.stype}, registry=registry)
        rewritten, _ = rewrite_fixpoint(original, DEFAULT_INTER_OBJECT_RULES, context)
        assert evaluate(original, env, registry).equals(
            evaluate(rewritten, env, registry)
        )

    def test_topn_pushdown_through_third_party_conversion(self, registry):
        value = make_pqueue(range(100))
        expr = Apply("topn", Apply("tolist", Var("q")), 5)
        context = RuleContext(env_types={"q": value.stype}, registry=registry)
        rewritten, trace = rewrite_fixpoint(expr, DEFAULT_INTER_OBJECT_RULES, context)
        assert str(rewritten) == "topn(q, 5)"
        result = evaluate(rewritten, {"q": value}, registry)
        assert result.to_python() == [99, 98, 97, 96, 95]

    def test_order_awareness_carries_through(self, registry):
        """PQUEUE values are desc-sorted; the pushed-down topn is a
        prefix read — the third-party structure gets the order-aware
        fast path too."""
        value = make_pqueue(range(50_000))
        expr = Apply("topn", Var("q"), 5)
        with CostCounter.activate() as cost:
            result = evaluate(expr, {"q": value}, registry)
        assert result.to_python() == [49_999, 49_998, 49_997, 49_996, 49_995]
        assert cost.tuples_read <= 5

    def test_unknown_structure_without_registration(self):
        from repro.errors import UnknownExtensionError

        plain = Registry()
        builtin.install(plain)
        value = make_pqueue([1])
        with pytest.raises(UnknownExtensionError):
            evaluate(Apply("count", Var("q")), {"q": value}, plain)
