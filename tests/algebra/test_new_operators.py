"""Tests for the avg / reverse / contains / getat operators."""

import pytest

from repro.algebra import evaluate, make_bag, make_list, make_set, parse
from repro.errors import AlgebraError, AlgebraTypeError, EvaluationError
from repro.optimizer import DEFAULT_INTER_OBJECT_RULES, Optimizer, RuleContext, rewrite_fixpoint
from repro.storage import CostCounter


def run(text, env=None):
    return evaluate(parse(text), env)


class TestAvg:
    def test_basic(self):
        assert run("avg([1.0, 2.0, 3.0])").to_python() == 2.0

    def test_on_bag_and_set(self):
        assert run("avg(xs)", {"xs": make_bag([2, 4])}).to_python() == 3.0
        assert run("avg(xs)", {"xs": make_set([2, 4])}).to_python() == 3.0

    def test_by_field(self):
        from repro.algebra import CollectionValue, FLOAT, INT, ListType, TupleType

        docs = CollectionValue.from_rows(
            ListType(TupleType.of(d=INT, s=FLOAT)),
            [{"d": 1, "s": 2.0}, {"d": 2, "s": 4.0}],
        )
        assert run("avg(docs, 's')", {"docs": docs}).to_python() == 3.0

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            run("avg(xs)", {"xs": make_list([], element_type=None) if False else make_list([])})

    def test_strings_rejected(self):
        with pytest.raises(AlgebraTypeError):
            run("avg(['a'])")

    def test_avg_through_bag_conversion(self):
        out, trace = rewrite_fixpoint(
            parse("avg(projecttobag(xs))"), DEFAULT_INTER_OBJECT_RULES,
            RuleContext(env_types={"xs": make_list([1.0]).stype}),
        )
        assert str(out) == "avg(xs)"

    def test_avg_not_through_set_conversion(self):
        out, trace = rewrite_fixpoint(
            parse("avg(projecttoset(xs))"), DEFAULT_INTER_OBJECT_RULES,
            RuleContext(env_types={"xs": make_list([1.0]).stype}),
        )
        assert trace == []  # dedup changes the mean


class TestReverse:
    def test_basic(self):
        assert run("reverse([1, 2, 3])").to_python() == [3, 2, 1]

    def test_involution(self):
        assert run("reverse(reverse([3, 1, 2]))").to_python() == [3, 1, 2]

    def test_flips_sortedness(self):
        out = run("reverse(xs)", {"xs": make_list([1, 2, 3])})
        assert out.bat.tail_sorted_desc and not out.bat.tail_sorted

    def test_reverse_enables_prefix_topn(self):
        """reverse of an ascending list is descending: topn afterwards
        is a prefix read."""
        env = {"xs": make_list(list(range(10_000)))}
        with CostCounter.activate() as cost:
            out = run("topn(reverse(xs), 3)", env)
        assert out.to_python() == [9999, 9998, 9997]
        # reverse costs a full pass, but topn afterwards reads 3 tuples
        assert cost.tuples_read <= 10_000 + 3

    def test_bag_reverse_undefined(self):
        with pytest.raises(AlgebraError):
            run("reverse(xs)", {"xs": make_bag([1])})


class TestContains:
    def test_hit_and_miss(self):
        assert run("contains([1, 2, 3], 2)").to_python() == 1
        assert run("contains([1, 2, 3], 9)").to_python() == 0

    def test_on_all_structures(self):
        for maker in (make_list, make_bag, make_set):
            assert run("contains(xs, 5)", {"xs": maker([1, 5])}).to_python() == 1

    def test_strings(self):
        assert run("contains(['a', 'b'], 'b')").to_python() == 1

    def test_binary_search_on_sorted(self):
        env = {"xs": make_list(list(range(100_000)))}
        with CostCounter.activate() as cost:
            run("contains(xs, 54321)", env)
        assert cost.tuples_read < 100

    def test_membership_pushdown_rule(self):
        env_types = {"xs": make_list([1, 2]).stype}
        for conversion in ("projecttobag", "projecttoset"):
            out, trace = rewrite_fixpoint(
                parse(f"contains({conversion}(xs), 2)"), DEFAULT_INTER_OBJECT_RULES,
                RuleContext(env_types=env_types),
            )
            assert str(out) == "contains(xs, 2)"
            assert trace[0].rule == "membership-through-conversion"

    def test_pushdown_preserves_semantics(self):
        optimizer = Optimizer()
        env = {"xs": make_list([4, 4, 9])}
        for needle, expected in ((4, 1), (5, 0)):
            expr = parse(f"contains(projecttoset(xs), {needle})")
            value, report = optimizer.execute(expr, env)
            assert value.to_python() == expected

    def test_arity_validation(self):
        with pytest.raises(AlgebraTypeError):
            run("contains([1, 2])")


class TestGetAt:
    def test_basic(self):
        assert run("getat([10, 20, 30], 1)").to_python() == 20

    def test_out_of_range(self):
        with pytest.raises(EvaluationError):
            run("getat([1], 5)")

    def test_only_on_list(self):
        with pytest.raises(AlgebraError):
            run("getat(xs, 0)", {"xs": make_bag([1])})

    def test_composes_with_sort(self):
        # the median element
        assert run("getat(sort([5, 1, 9]), 1)").to_python() == 5
