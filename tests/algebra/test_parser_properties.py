"""Property-based tests for the textual algebra parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import parse
from repro.algebra.expr import Apply, ScalarLiteral, Var
from repro.errors import ParseError

identifiers = st.from_regex(r"[a-z_][a-z_0-9]{0,8}", fullmatch=True)
numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
)


@st.composite
def expr_texts(draw, depth=0):
    """Random well-formed expression text plus its expected structure."""
    if depth >= 3 or draw(st.booleans()):
        name = draw(identifiers)
        return name, ("var", name)
    op = draw(identifiers)
    n_args = draw(st.integers(1, 3))
    parts, shapes = [], []
    for _ in range(n_args):
        if draw(st.booleans()):
            scalar = draw(numbers)
            parts.append(repr(scalar) if not isinstance(scalar, float) else f"{scalar}")
            shapes.append(("scalar", scalar))
        else:
            text, shape = draw(expr_texts(depth=depth + 1))
            parts.append(text)
            shapes.append(shape)
    return f"{op}({', '.join(parts)})", ("apply", op, tuple(shapes))


def check_shape(expr, shape):
    kind = shape[0]
    if kind == "var":
        assert isinstance(expr, Var) and expr.name == shape[1]
    elif kind == "scalar":
        assert isinstance(expr, ScalarLiteral)
        assert expr.value == pytest.approx(shape[1])
    else:
        assert isinstance(expr, Apply) and expr.op == shape[1]
        assert len(expr.args) == len(shape[2])
        for child, child_shape in zip(expr.args, shape[2]):
            check_shape(child, child_shape)


@given(expr_texts())
@settings(max_examples=150, deadline=None)
def test_parse_recovers_structure(case):
    text, shape = case
    check_shape(parse(text), shape)


@given(expr_texts())
@settings(max_examples=100, deadline=None)
def test_str_parse_roundtrip(case):
    """Printing and reparsing is a fixpoint."""
    text, _ = case
    expr = parse(text)
    assert parse(str(expr)) == expr


@given(expr_texts())
@settings(max_examples=60, deadline=None)
def test_whitespace_insensitivity(case):
    text, _ = case
    spaced = text.replace(",", " , ").replace("(", " ( ").replace(")", " ) ")
    assert parse(spaced) == parse(text)


@given(st.text(alphabet="()[]{},. \"'abc123", max_size=25))
@settings(max_examples=200, deadline=None)
def test_garbage_never_crashes_differently(text):
    """Arbitrary input either parses or raises ParseError — never any
    other exception type."""
    try:
        parse(text)
    except ParseError:
        pass
