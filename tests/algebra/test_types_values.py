"""Unit tests for the structure type system and values."""

import pytest

from repro.algebra import (
    AtomicType,
    BagType,
    CollectionValue,
    FLOAT,
    INT,
    ListType,
    STR,
    SetType,
    TupleType,
    make_bag,
    make_list,
    make_set,
)
from repro.algebra.values import AtomValue, ELEM, TupleValue
from repro.errors import AlgebraTypeError


class TestTypes:
    def test_atomic_kinds(self):
        assert INT.kind == "int" and FLOAT.kind == "float" and STR.kind == "str"
        with pytest.raises(AlgebraTypeError):
            AtomicType("bool")

    def test_numeric(self):
        assert INT.numeric and FLOAT.numeric and not STR.numeric

    def test_orderedness(self):
        assert ListType(INT).ordered
        assert not BagType(INT).ordered
        assert not SetType(INT).ordered

    def test_duplicates(self):
        assert ListType(INT).allows_duplicates
        assert BagType(INT).allows_duplicates
        assert not SetType(INT).allows_duplicates

    def test_extension_names(self):
        assert ListType(INT).extension_name == "LIST"
        assert BagType(INT).extension_name == "BAG"
        assert SetType(INT).extension_name == "SET"
        assert INT.extension_name == "ATOMIC"

    def test_element(self):
        assert ListType(FLOAT).element() == FLOAT
        with pytest.raises(AlgebraTypeError):
            INT.element()

    def test_structural_equality(self):
        assert ListType(INT) == ListType(INT)
        assert ListType(INT) != BagType(INT)
        assert ListType(INT) != ListType(FLOAT)

    def test_nested_type_str(self):
        assert str(ListType(BagType(INT))) == "LIST<BAG<int>>"

    def test_tuple_type(self):
        ttype = TupleType.of(doc=INT, score=FLOAT)
        assert ttype.field("doc") == INT
        assert ttype.field("score") == FLOAT
        assert ttype.field_names() == ("doc", "score")
        with pytest.raises(AlgebraTypeError):
            ttype.field("nope")

    def test_tuple_type_order_insensitive(self):
        assert TupleType.of(a=INT, b=STR) == TupleType.of(b=STR, a=INT)


class TestAtomValue:
    def test_inference(self):
        assert AtomValue(3).stype == INT
        assert AtomValue(3.5).stype == FLOAT
        assert AtomValue("x").stype == STR
        assert AtomValue(True).stype == INT

    def test_coercion(self):
        assert AtomValue(3, FLOAT).value == 3.0
        assert isinstance(AtomValue(3, FLOAT).value, float)

    def test_equality(self):
        assert AtomValue(3).equals(AtomValue(3))
        assert not AtomValue(3).equals(AtomValue(3.0))  # different types
        assert not AtomValue(3).equals(AtomValue(4))

    def test_unsupported(self):
        with pytest.raises(AlgebraTypeError):
            AtomValue(object())


class TestCollections:
    def test_make_list_preserves_order(self):
        value = make_list([3, 1, 2])
        assert value.to_python() == [3, 1, 2]
        assert value.stype == ListType(INT)

    def test_make_list_records_sortedness(self):
        assert make_list([1, 2, 3]).bat.tail_sorted
        assert not make_list([3, 1]).bat.tail_sorted

    def test_make_bag(self):
        value = make_bag([1.5, 1.5])
        assert value.stype == BagType(FLOAT)
        assert value.count == 2

    def test_make_set_dedups(self):
        value = make_set([3, 1, 3, 2])
        assert value.to_python() == {1, 2, 3}
        assert value.count == 3

    def test_empty_defaults_to_int(self):
        assert make_list([]).stype == ListType(INT)

    def test_strings(self):
        value = make_list(["b", "a"])
        assert value.to_python() == ["b", "a"]
        assert value.stype == ListType(STR)

    def test_explicit_element_type(self):
        value = make_list([1, 2], element_type=FLOAT)
        assert value.stype == ListType(FLOAT)
        assert value.to_python() == [1.0, 2.0]

    def test_list_equality_order_sensitive(self):
        assert make_list([1, 2]).equals(make_list([1, 2]))
        assert not make_list([1, 2]).equals(make_list([2, 1]))

    def test_bag_equality_multiset(self):
        assert make_bag([1, 2, 2]).equals(make_bag([2, 1, 2]))
        assert not make_bag([1, 2]).equals(make_bag([1, 2, 2]))

    def test_set_equality(self):
        assert make_set([1, 2]).equals(make_set([2, 1, 1]))

    def test_cross_structure_inequality(self):
        assert not make_list([1]).equals(make_bag([1]))

    def test_atomic_column_name_enforced(self):
        from repro.storage import BAT

        with pytest.raises(AlgebraTypeError):
            CollectionValue(ListType(INT), {"wrong": BAT([1])})

    def test_ragged_columns_rejected(self):
        from repro.storage import BAT

        element = TupleType.of(a=INT, b=INT)
        with pytest.raises(AlgebraTypeError):
            CollectionValue(ListType(element), {"a": BAT([1]), "b": BAT([1, 2])})

    def test_nested_collections_rejected(self):
        from repro.storage import BAT

        with pytest.raises(AlgebraTypeError):
            CollectionValue(ListType(ListType(INT)), {ELEM: BAT([1])})

    def test_bat_accessor_tuple_elements_rejected(self):
        element = TupleType.of(doc=INT, score=FLOAT)
        rows = [{"doc": 1, "score": 0.5}]
        value = CollectionValue.from_rows(ListType(element), rows)
        with pytest.raises(AlgebraTypeError):
            value.bat


class TestTupleCollections:
    def make_docs(self):
        element = TupleType.of(doc=INT, score=FLOAT)
        rows = [
            {"doc": 7, "score": 0.9},
            {"doc": 3, "score": 0.5},
        ]
        return CollectionValue.from_rows(ListType(element), rows)

    def test_from_rows(self):
        docs = self.make_docs()
        assert docs.count == 2
        assert list(docs.iter_elements()) == [
            {"doc": 7, "score": 0.9},
            {"doc": 3, "score": 0.5},
        ]

    def test_column_access(self):
        docs = self.make_docs()
        assert list(docs.column("doc").tail) == [7, 3]
        with pytest.raises(AlgebraTypeError):
            docs.column("nope")

    def test_missing_field_rejected(self):
        element = TupleType.of(doc=INT, score=FLOAT)
        with pytest.raises(KeyError):
            CollectionValue.from_rows(ListType(element), [{"doc": 1}])

    def test_bag_of_tuples_equality(self):
        element = TupleType.of(a=INT)
        rows = [{"a": 1}, {"a": 2}]
        forward = CollectionValue.from_rows(BagType(element), rows)
        backward = CollectionValue.from_rows(BagType(element), list(reversed(rows)))
        assert forward.equals(backward)


class TestTupleValue:
    def test_fields(self):
        record = TupleValue({"n": AtomValue(3), "name": AtomValue("x")})
        assert record.field("n").value == 3
        assert record.stype == TupleType.of(n=INT, name=STR)
        with pytest.raises(AlgebraTypeError):
            record.field("missing")

    def test_equality(self):
        a = TupleValue({"n": AtomValue(3)})
        b = TupleValue({"n": AtomValue(3)})
        c = TupleValue({"n": AtomValue(4)})
        assert a.equals(b)
        assert not a.equals(c)

    def test_to_python(self):
        record = TupleValue({"xs": make_list([1, 2]), "n": AtomValue(5)})
        assert record.to_python() == {"xs": [1, 2], "n": 5}
