"""Seeded MOA1103: awaits while holding a non-async lock.

Both hazard shapes: ``with lock:`` around an await, and the
acquire/try/await/finally-release idiom.  The suspension point parks
the coroutine with a thread lock held — every other task touching the
lock then blocks the event loop, and cancellation at the await leaves
the critical section via an unexpected path.  Analyzed syntactically,
never imported.
"""


class ChunkBuffer:
    async def publish(self, writer):
        with self._lock:
            # BUG: suspension (and cancellation) point inside the
            # critical section
            await writer.drain()

    async def flush(self, writer):
        self._lock.acquire()
        try:
            # BUG: same hazard, statement form — the finally does run,
            # but the await still suspends with the lock held
            await writer.drain()
        finally:
            self._lock.release()
