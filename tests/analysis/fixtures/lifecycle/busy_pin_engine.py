"""Seeded MOA1101: the PR-8-review engine-exception busy pin.

The session is issued born-busy; the pump releases it only on the
normal completion path.  An engine exception inside ``step`` escapes
the loop with the busy flag still set, so the session can never be
resumed and never evicted — pinned in the registry forever.  Analyzed
syntactically, never imported.
"""


class LeakyPump:
    async def stream(self, writer):
        session = self.sessions.issue(self.runner, "tenant-a", 1)
        while not self.finished:
            # BUG: an engine failure here propagates with the session
            # still pinned busy — no handler drops or releases it
            chunk = await self.step(session.token)
            await self.send(writer, chunk)
        self.sessions.drop(session.token)
