"""Disciplined resource usage: the lifecycle analyzer must report
nothing here.  Every acquire is scoped by ``with`` or settled in a
``finally``; locks are never held across awaits; lock order is
consistent.  Analyzed syntactically, never imported.
"""

from repro.sync import acquires, make_lock

FIRST_LOCK = make_lock("clean.first")
SECOND_LOCK = make_lock("clean.second")


class TidyServer:
    def respond(self, request, writer):
        deadline_ms = float(request.get("deadline_ms", 0.0))
        admission = self.quotas.admit(request.get("tenant", "default"))
        with admission as tenant_state:
            with self.pool.admit():
                runner = self.build_runner(request, deadline_ms)
                return self.stream(runner, tenant_state, writer)

    def pump(self, session, writer):
        try:
            return self.step(session.token, writer)
        finally:
            session.release()

    async def publish(self, writer):
        with self._lock:
            frame = self.next_frame()
        await writer.drain()
        return frame

    def ordered(self, amount):
        with FIRST_LOCK:
            with SECOND_LOCK:
                self.log(amount)

    def also_ordered(self, amount):
        with FIRST_LOCK:
            with SECOND_LOCK:
                self.log(-amount)

    @acquires("slot")
    def lease(self, tenant):
        admission = self.quotas.admit(tenant)
        # a declared factory may hand its acquisition to the caller
        return admission
