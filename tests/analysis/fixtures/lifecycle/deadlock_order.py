"""Seeded MOA1105: a static lock-order cycle.

``credit`` takes ``fixture.accounts`` then ``fixture.audit_lock``;
``debit`` takes them in the opposite order.  Two threads running one
each can deadlock.  The same shape at runtime is what
``repro.sync.lock_order_edges()`` records and the sanitizer flags —
this module is the static twin.  Analyzed syntactically, never
imported.
"""

from repro.sync import make_lock

ACCOUNTS_LOCK = make_lock("fixture.accounts")
AUDIT_LOCK = make_lock("fixture.audit")


class Ledger:
    def credit(self, amount):
        with ACCOUNTS_LOCK:
            with AUDIT_LOCK:
                self.log(amount)

    def debit(self, amount):
        # BUG: reversed acquisition order against `credit`
        with AUDIT_LOCK:
            with ACCOUNTS_LOCK:
                self.log(-amount)
