"""Seeded MOA1102: double release and release-without-acquire.

``finish`` mirrors the pre-PR-9 ``_stream`` engine-error path:
``drop`` already settles the session, so the following ``release`` is
a second release of the same resource.  ``cancel`` releases a lock no
path ever acquired.  Analyzed syntactically, never imported.
"""


class SessionJanitor:
    def finish(self, session):
        self.registry.drop(session.token)
        # BUG: drop settled the session; every path arriving here has
        # already released it
        session.release()

    def cancel(self, token):
        # BUG: no path acquires the lock before this release
        self._lock.release()
