"""Seeded MOA1104: held resources escaping their declared scope.

``stash`` stores a held admission on an attribute no ``SHARED_STATE``
/ ``SEALED_BY`` declaration covers; ``grab`` returns one from a
function that never declared itself an ``@acquires`` factory.  Either
way the resource's release obligation silently changes owner.
``adopt`` shows the sanctioned shape: the attribute is declared, so
the store is an ownership transfer and must NOT be flagged.  Analyzed
syntactically, never imported.
"""


class Stasher:
    def stash(self, tenant):
        admission = self.quotas.admit(tenant)
        # BUG: undeclared attribute takes ownership of a held slot
        self.saved = admission

    def grab(self, tenant):
        admission = self.quotas.admit(tenant)
        # BUG: returned from a non-factory — the caller has no
        # declared obligation to release it
        return admission


class DeclaredOwner:
    SHARED_STATE = {
        "slot": "_lock",
    }

    def adopt(self, tenant):
        slot = self.quotas.admit(tenant)
        # sanctioned: 'slot' is declared shared state, ownership moves
        # to the object
        self.slot = slot
