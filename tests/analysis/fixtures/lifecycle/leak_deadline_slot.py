"""Seeded MOA1101: the PR-8-review deadline-parse slot leak.

The admission is taken *before* the request's ``deadline_ms`` is
validated; a malformed value makes ``float(...)`` raise outside the
``with admission`` context, so the tenant's concurrency slot is never
returned.  ``max_concurrent`` bad requests = a denied tenant.  This
module is analyzed syntactically by the lifecycle tests and never
imported.
"""


class LeakyServer:
    def respond(self, request, writer):
        tenant = request.get("tenant", "default")
        admission = self.quotas.admit(tenant)
        # BUG: raises on garbage input while the slot is already held
        # and no with/finally guards it yet
        deadline_ms = float(request["deadline_ms"])
        with admission as tenant_state:
            runner = self.build_runner(request, deadline_ms)
            return self.stream(runner, tenant_state, writer)
