"""Tests for the analyzer suite, property inference and diagnostics."""

import json

from repro.algebra import make_list, parse
from repro.analysis import (
    AnalysisContext,
    Diagnostic,
    DiagnosticReport,
    FragmentDeclaration,
    analyze_expr,
    check_rewrite_step,
    classify_cutoffs,
    format_path,
    lint_expr,
    lint_text,
    make_diagnostic,
    properties_of,
    subexpr_at,
)


def codes_of(diagnostics):
    return sorted(d.code for d in diagnostics)


def ctx(env=None, fragments=None):
    env_types = {name: value.stype for name, value in (env or {}).items()}
    return AnalysisContext(env_types=env_types, fragments=fragments or {})


class TestDiagnostics:
    def test_severity_defaults_from_registry(self):
        assert make_diagnostic("MOA001", "x").severity == "error"
        assert make_diagnostic("MOA203", "x").severity == "info"
        assert make_diagnostic("MOA203", "x", severity="error").severity == "error"

    def test_path_rendering(self):
        assert format_path(()) == "$"
        assert format_path((0, 1)) == "$.0.1"

    def test_subexpr_at(self):
        expr = parse("select(sort(xs, 1), 2, 4)")
        assert str(subexpr_at(expr, (0,))) == "sort(xs, 1)"
        assert subexpr_at(expr, ()) is expr

    def test_report_render_and_json(self):
        report = DiagnosticReport(source="demo")
        report.add(make_diagnostic("MOA101", "broken", (0,), "slice(b, 0, 1)"))
        text = report.render_text()
        assert "MOA101" in text and "$.0" in text
        payload = json.loads(report.render_json())
        assert payload["source"] == "demo"
        assert payload["diagnostics"][0]["code"] == "MOA101"
        assert report.has_errors
        assert report.codes() == ["MOA101"]

    def test_invalid_code_or_severity_rejected(self):
        import pytest

        with pytest.raises(KeyError):
            make_diagnostic("MOA999", "x")
        with pytest.raises(ValueError):
            Diagnostic(code="MOA001", severity="fatal", message="x")


class TestPropertyInference:
    def test_sort_establishes_ordering(self):
        props = properties_of(parse("sort(xs, 1)"),
                              {"xs": make_list([3, 1, 2]).stype})
        assert props.ordered_by == (None, True)

    def test_projecttobag_drops_ordering(self):
        props = properties_of(parse("projecttobag(sort(xs, 0))"),
                              {"xs": make_list([3, 1, 2]).stype})
        assert props.ordered_by is None
        assert not props.stype.ordered

    def test_topn_bounds_cardinality(self):
        props = properties_of(parse("topn(xs, 5)"),
                              {"xs": make_list(range(100)).stype})
        assert props.max_rows == 5

    def test_projecttoset_is_distinct(self):
        props = properties_of(parse("projecttoset([1, 1, 2])"), {})
        assert props.distinct


class TestTypeSoundness:
    def test_clean_plan_no_diagnostics(self):
        env = {"xs": make_list([1, 2, 3])}
        assert analyze_expr(parse("topn(sort(xs, 1), 2, 1)"), ctx(env)) == []

    def test_unbound_variable_moa002(self):
        diagnostics = analyze_expr(parse("sort(nope, 1)"), ctx())
        assert codes_of(diagnostics) == ["MOA002"]

    def test_unknown_operator_moa003(self):
        diagnostics = analyze_expr(parse("slice(projecttobag([1, 2]), 1, 1)"), ctx())
        assert "MOA003" in codes_of(diagnostics)

    def test_only_deepest_failure_reports(self):
        diagnostics = analyze_expr(parse("sort(sort(nope, 1), 1)"), ctx())
        assert codes_of(diagnostics) == ["MOA002"]


class TestOrderingAndCutoffs:
    def test_prefix_slice_over_bag_flags_moa101_and_moa201(self):
        diagnostics = analyze_expr(parse("slice(projecttobag([3, 1, 2]), 0, 2)"), ctx())
        codes = codes_of(diagnostics)
        assert "MOA101" in codes and "MOA201" in codes

    def test_slice_of_sort_is_safe(self):
        diagnostics = analyze_expr(parse("slice(sort([3, 1, 2], 1), 0, 2)"), ctx())
        assert diagnostics == []

    def test_classify_cutoffs_reasons(self):
        classes = classify_cutoffs(parse("slice(sort([3, 1, 2], 1), 0, 2)"), ctx())
        assert [c.safe for c in classes] == [True]
        assert "ordered" in classes[0].reason

        classes = classify_cutoffs(parse("slice([3, 1, 2], 0, 2)"), ctx())
        assert [c.safe for c in classes] == [True]  # LIST prefix is positional

        classes = classify_cutoffs(parse("topn(projecttobag([3, 1, 2]), 2)"), ctx())
        assert [c.safe for c in classes] == [True]  # topn orders itself

    def test_mid_stream_slice_is_not_a_cutoff(self):
        assert classify_cutoffs(parse("slice([3, 1, 2], 1, 2)"), ctx()) == []


class TestCardinality:
    def test_noop_cutoff_flags_moa203(self):
        diagnostics = analyze_expr(parse("topn(topn([3, 1, 2], 2, 1), 5, 1)"), ctx())
        assert "MOA203" in codes_of(diagnostics)

    def test_effective_cutoff_is_quiet(self):
        expr = parse("topn(topn([3, 1, 2, 4, 5], 3, 1), 2, 1)")
        assert analyze_expr(expr, ctx()) == []


class TestFragmentCoverage:
    def make_fragments(self):
        stype = make_list([1]).stype
        env_types = {"f0": stype, "f1": stype, "f2": stype}
        fragments = {
            name: FragmentDeclaration(parent="docs", index=i, total=3)
            for i, name in enumerate(["f0", "f1", "f2"])
        }
        return env_types, fragments

    def test_partial_coverage_flags_moa401(self):
        env_types, fragments = self.make_fragments()
        context = AnalysisContext(env_types=env_types, fragments=fragments)
        diagnostics = analyze_expr(parse("sort(concat(f0, f1), 1)"), context)
        assert codes_of(diagnostics) == ["MOA401"]
        assert "2 of 3" in diagnostics[0].message

    def test_full_coverage_is_quiet(self):
        env_types, fragments = self.make_fragments()
        context = AnalysisContext(env_types=env_types, fragments=fragments)
        diagnostics = analyze_expr(parse("concat(concat(f0, f1), f2)"), context)
        assert diagnostics == []


class TestShardSafety:
    def make_shards(self, total=3):
        from repro.analysis import ShardDeclaration

        stype = make_list([1]).stype
        names = [f"s{i}" for i in range(total)]
        env_types = {name: stype for name in names}
        shards = {
            name: ShardDeclaration(parent="docs", index=i, total=total)
            for i, name in enumerate(names)
        }
        return env_types, shards

    def test_shard_local_cutoff_without_merge_flags_moa601(self):
        env_types, shards = self.make_shards()
        context = AnalysisContext(env_types=env_types, shards=shards)
        diagnostics = analyze_expr(parse("topn(concat(s0, s1), 5)"), context)
        assert "MOA601" in codes_of(diagnostics)
        flagged = [d for d in diagnostics if d.code == "MOA601"]
        assert "2 of 3" in flagged[0].message

    def test_coordinator_with_probe_is_quiet(self):
        env_types, shards = self.make_shards()
        context = AnalysisContext(env_types=env_types, shards=shards,
                                  parallel=3, merge_probe=True)
        diagnostics = analyze_expr(parse("topn(concat(s0, s1), 5)"), context)
        assert not any(d.code.startswith("MOA6") for d in diagnostics)

    def test_shallow_cut_without_probe_flags_moa602(self):
        env_types, shards = self.make_shards()
        context = AnalysisContext(env_types=env_types, shards=shards,
                                  parallel=3, merge_probe=False)
        expr = parse("topn(concat(topn(s0, 2), s1), 5)")
        diagnostics = analyze_expr(expr, context)
        flagged = [d for d in diagnostics if d.code == "MOA602"]
        assert len(flagged) == 1
        assert "below the global top-5" in flagged[0].message

    def test_cut_at_global_n_without_probe_is_quiet(self):
        """A shard-local cut at the full global N loses nothing even
        without the round-2 probe."""
        env_types, shards = self.make_shards()
        context = AnalysisContext(env_types=env_types, shards=shards,
                                  parallel=3, merge_probe=False)
        expr = parse("topn(concat(topn(s0, 5), s1), 5)")
        diagnostics = analyze_expr(expr, context)
        assert "MOA602" not in codes_of(diagnostics)

    def test_parallel_layout_mismatch_flags_moa603(self):
        env_types, shards = self.make_shards(total=3)
        context = AnalysisContext(env_types=env_types, shards=shards,
                                  parallel=2)
        diagnostics = analyze_expr(parse("topn(concat(concat(s0, s1), s2), 5)"),
                                   context)
        flagged = [d for d in diagnostics if d.code == "MOA603"]
        assert len(flagged) == 1
        assert "parallel=2" in flagged[0].message
        assert "3 shards" in flagged[0].message

    def test_full_shard_coverage_is_quiet(self):
        env_types, shards = self.make_shards()
        context = AnalysisContext(env_types=env_types, shards=shards)
        expr = parse("topn(concat(concat(s0, s1), s2), 5)")
        diagnostics = analyze_expr(expr, context)
        assert not any(d.code.startswith("MOA6") for d in diagnostics)

    def test_no_declarations_is_quiet(self):
        context = ctx({"xs": make_list(range(10))})
        diagnostics = analyze_expr(parse("topn(xs, 3)"), context)
        assert not any(d.code.startswith("MOA6") for d in diagnostics)


class TestRewriteStepChecks:
    def test_dropped_ordering_flags_moa102(self):
        env = {"xs": make_list([3, 1, 2])}
        diagnostics = check_rewrite_step(parse("sort(xs, 1)"), parse("xs"), ctx(env))
        assert "MOA102" in codes_of(diagnostics)

    def test_lost_distinctness_flags_moa103(self):
        diagnostics = check_rewrite_step(parse("projecttoset([1, 1])"),
                                         parse("projecttobag([1, 1])"), ctx())
        codes = codes_of(diagnostics)
        assert "MOA103" in codes  # and the type change itself
        assert "MOA001" in codes

    def test_grown_cardinality_flags_moa301(self):
        env = {"xs": make_list(range(10))}
        diagnostics = check_rewrite_step(parse("topn(xs, 2)"), parse("topn(xs, 5)"),
                                         ctx(env))
        assert "MOA301" in codes_of(diagnostics)

    def test_unsafe_rule_label_flags_moa202(self):
        class Fake:
            name = "fake"
            safety = "unsafe"

        env = {"xs": make_list(range(10))}
        diagnostics = check_rewrite_step(parse("topn(xs, 2)"), parse("topn(xs, 2, 1)"),
                                         ctx(env), rule=Fake())
        assert "MOA202" in codes_of(diagnostics)
        assert diagnostics[-1].rule == "fake"

    def test_equivalent_rewrite_is_quiet(self):
        env = {"xs": make_list(range(10))}
        diagnostics = check_rewrite_step(parse("slice(sort(xs, 0), 0, 3)"),
                                         parse("topn(xs, 3, 0)"), ctx(env))
        assert diagnostics == []


class TestLintEntryPoints:
    def test_lint_expr_and_text_agree(self):
        text = "slice(projecttobag([1, 2]), 0, 1)"
        by_text = lint_text(text)
        by_expr = lint_expr(parse(text))
        assert by_text.codes() == by_expr.codes()
        assert by_text.has_errors

    def test_lint_file(self, tmp_path):
        plan = tmp_path / "plans.moa"
        plan.write_text("# comment\n\ntopn([3, 1, 2], 2)\nslice(projecttobag([1]), 0, 1)\n")
        reports = __import__("repro.analysis", fromlist=["lint_file"]).lint_file(plan)
        assert len(reports) == 2
        assert not reports[0].has_errors
        assert reports[1].has_errors
        assert reports[1].source.endswith(":4")
