"""Tests for the bound-flow abstract interpreter (MOA9xx).

Covers the interval domain itself, the per-operator transfer
functions, the fixpoint (including resumed-from-cache feedback edges),
each MOA901..MOA905 trigger, the certification verdict, and the
hypothesis containment property: the derived interval always contains
every value the plan can actually produce.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Apply, Var, evaluate, make_bag, make_list, make_set, parse
from repro.analysis import (
    SEEDED_UNSOUND_RULES,
    WIDENING_DEMO_EXPRESSION,
    AnalysisContext,
    BoundSeedDeclaration,
    PruningDeclaration,
    ResumeSourceDeclaration,
    SoundnessHarness,
    analyze_bound_flow,
    certify,
    check_bounds_rewrite,
    demo_widening_rewrite,
    derive_bounds,
)
from repro.intervals import TOP, ScoreInterval, ThresholdBound, join_all, sum_of
from repro.topn.aggregates import SUM, UserAggregate

from .test_lint_cli import EXAMPLE_PLANS


def flow_of(text, **context_kwargs):
    expr = parse(text)
    return expr, derive_bounds(expr, AnalysisContext(**context_kwargs))


# -- the interval domain -----------------------------------------------------


class TestScoreInterval:
    def test_rejects_inverted_and_nan(self):
        with pytest.raises(ValueError):
            ScoreInterval(2.0, 1.0)
        with pytest.raises(ValueError):
            ScoreInterval(math.nan, 1.0)

    def test_join_meet(self):
        a, b = ScoreInterval(0, 2), ScoreInterval(1, 5)
        assert a.join(b) == ScoreInterval(0, 5)
        assert a.meet(b) == ScoreInterval(1, 2)
        assert a.meet(ScoreInterval(3, 4)) is None

    def test_widen_jumps_moving_endpoints_to_infinity(self):
        old = ScoreInterval(0, 1)
        assert old.widen(ScoreInterval(0, 2)) == ScoreInterval(0, math.inf)
        assert old.widen(ScoreInterval(-1, 1)) == ScoreInterval(-math.inf, 1)
        # a non-moving interval widens to itself
        assert old.widen(ScoreInterval(0.5, 1)) == old

    def test_scale_handles_negative_and_zero_weights(self):
        interval = ScoreInterval(1, 3)
        assert interval.scale(-2) == ScoreInterval(-6, -2)
        assert interval.scale(0) == ScoreInterval.point(0.0)

    def test_dominates_is_upper_bound_check(self):
        assert ScoreInterval(0, 4).dominates(4.0)
        assert not ScoreInterval(0, 4.5).dominates(4.0)

    def test_join_all_and_sum_of(self):
        assert join_all([]) == TOP
        assert join_all([ScoreInterval(0, 1), ScoreInterval(2, 3)]) == ScoreInterval(0, 3)
        assert sum_of([ScoreInterval(1, 2), ScoreInterval(3, 4)]) == ScoreInterval(4, 6)
        assert sum_of([]) == ScoreInterval.point(0.0)


# -- transfer functions ------------------------------------------------------


class TestTransfers:
    def test_literal_collection_hull(self):
        _, flow = flow_of("projecttobag([1, 2, 3, 4, 4, 5])")
        assert flow.root() == ScoreInterval(1, 5)

    def test_select_clamps(self):
        _, flow = flow_of("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
        assert flow.root() == ScoreInterval(2, 4)

    def test_disjoint_select_is_vacuous(self):
        _, flow = flow_of("select(projecttobag([1, 2]), 10, 20)")
        assert flow.root().is_point  # no element can pass: vacuous edge

    def test_cutoffs_and_reorderings_preserve(self):
        for text in ("topn(projecttobag([1, 5, 3]), 2)",
                     "sort(projecttobag([1, 5, 3]))",
                     "projecttoset(projecttobag([1, 5, 3]))"):
            _, flow = flow_of(text)
            assert flow.root() == ScoreInterval(1, 5), text

    def test_count_uses_static_cardinality(self):
        _, flow = flow_of("count(projecttobag([1, 2, 3]))")
        assert flow.root() == ScoreInterval(0, 3)

    def test_sum_scales_by_cardinality(self):
        _, flow = flow_of("sum(projecttobag([1, 2, 3]))")
        assert flow.root().contains(6.0)  # the true sum
        assert flow.root().lo <= 0.0  # empty-input convention joined in

    def test_concat_joins(self):
        _, flow = flow_of("concat([1, 2], [8, 9])")
        assert flow.root() == ScoreInterval(1, 9)

    def test_var_uses_declared_score_bounds(self):
        expr = parse("topn(xs, 5)")
        unbounded = derive_bounds(expr, AnalysisContext())
        assert unbounded.root() == TOP
        bounded = derive_bounds(expr, AnalysisContext(
            score_bounds={"xs": ScoreInterval(0, 1)}))
        assert bounded.root() == ScoreInterval(0, 1)

    def test_every_edge_gets_a_fact(self):
        expr, flow = flow_of("topn(select(projecttobag([1, 2, 3]), 2, 3), 2)")
        paths = {(), (0,), (0, 0), (0, 0, 0)}
        assert paths <= set(flow.facts)
        assert "topn" in flow.render_text(expr)


# -- fixpoint / feedback edges ----------------------------------------------


class TestFixpoint:
    def test_acyclic_plans_converge_in_one_pass(self):
        _, flow = flow_of("topn(projecttobag([1, 2, 3]), 2)")
        assert flow.iterations == 1
        assert not flow.widened

    def test_resume_source_reaches_a_fixpoint(self):
        """A resumed-from-cache frontier: the feedback edge joins the
        root interval back into the source until stable."""
        expr = parse("topn(frontier, 3)")
        context = AnalysisContext(resume_sources=(
            ResumeSourceDeclaration("ta-resume", "frontier", lo=0.0, hi=1.0),))
        flow = derive_bounds(expr, context)
        assert flow.iterations >= 2  # the feedback edge forced iteration
        assert flow.root().contains_interval(ScoreInterval(0, 1))
        assert flow.root().bounded  # joins only: no widening needed

    def test_resume_source_joined_with_literal_growth_terminates(self):
        expr = parse("concat(frontier, projecttobag([5, 9]))")
        context = AnalysisContext(resume_sources=(
            ResumeSourceDeclaration("resume", "frontier", lo=0.0, hi=1.0),))
        flow = derive_bounds(expr, context)
        assert flow.root().contains(9.0) and flow.root().contains(0.0)


# -- the containment property ------------------------------------------------

atoms = st.integers(min_value=-50, max_value=50)


@st.composite
def environments(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    values = draw(st.lists(atoms, min_size=n, max_size=n))
    kind = draw(st.sampled_from(["list", "bag", "set"]))
    maker = {"list": make_list, "bag": make_bag, "set": make_set}[kind]
    return {"xs": maker(values)}, values


@st.composite
def collection_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return Var("xs")
    child = draw(collection_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["select", "sort", "topn", "projecttobag",
                               "projecttoset"]))
    if op == "select":
        lo, hi = draw(atoms), draw(atoms)
        return Apply("select", child, min(lo, hi), max(lo, hi))
    if op == "sort":
        return Apply("sort", child, draw(st.sampled_from([0, 1])))
    if op == "topn":
        return Apply("topn", child, draw(st.integers(min_value=0, max_value=10)),
                     draw(st.sampled_from([0, 1])))
    return Apply(op, child)


@settings(max_examples=60, deadline=None)
@given(expr=collection_exprs(), env_values=environments())
def test_derived_interval_contains_every_true_value(expr, env_values):
    """The soundness property: every element the plan actually produces
    lies inside the derived root interval."""
    env, values = env_values
    context = AnalysisContext(
        env_types={k: v.stype for k, v in env.items()},
        score_bounds={"xs": ScoreInterval.of_values(values)},
    )
    try:
        expr.infer_type(context.env_types, context.registry)
    except Exception:
        return  # ill-typed draws are the type analyzers' problem
    result = evaluate(expr, env)
    root = derive_bounds(expr, context).root()
    for element in result.iter_elements():
        assert root.contains(float(element)), (str(expr), element, root.describe())


# -- the MOA9xx family -------------------------------------------------------


class TestMOA901:
    def test_non_monotone_aggregate_under_threshold_engine(self):
        spread = UserAggregate("spread", lambda gs: max(gs) - min(gs))
        expr = parse("topn(xs, 5)")
        findings = list(analyze_bound_flow(expr, AnalysisContext(
            threshold_engine="TA", aggregate=spread)))
        assert [d.code for d in findings] == ["MOA901"]

    def test_unregistered_aggregate_name_flagged(self):
        expr = parse("topn(xs, 5)")
        findings = list(analyze_bound_flow(expr, AnalysisContext(
            threshold_engine="CA", aggregate="mystery")))
        assert [d.code for d in findings] == ["MOA901"]

    def test_monotone_builtin_is_clean(self):
        expr = parse("topn(xs, 5)")
        for aggregate in (SUM, "sum", "prob"):
            findings = list(analyze_bound_flow(expr, AnalysisContext(
                threshold_engine="TA", aggregate=aggregate)))
            assert findings == [], aggregate


class TestMOA902:
    EXPR = "projecttobag([1, 5, 3])"

    def test_dominated_bound_certifies(self):
        expr = parse(self.EXPR)
        context = AnalysisContext(pruning=(
            PruningDeclaration("ta-threshold", (), asserted_upper=5.0),))
        assert list(analyze_bound_flow(expr, context)) == []
        assert certify(expr, context).certified

    def test_undominated_bound_fires_with_computable_error(self):
        expr = parse(self.EXPR)
        context = AnalysisContext(pruning=(
            PruningDeclaration("ta-threshold", (), asserted_upper=4.0),))
        findings = list(analyze_bound_flow(expr, context))
        assert [d.code for d in findings] == ["MOA902"]
        certificate = certify(expr, context)
        assert not certificate.certified
        assert certificate.worst_case is not None
        assert certificate.worst_case.score_error == pytest.approx(1.0)
        assert certificate.worst_case.computable


class TestMOA903:
    def test_unbounded_unsafe_cutoff_has_no_certifiable_error(self):
        expr = Apply("slice", Var("xs"), 0, 2)
        context = AnalysisContext(env_types={"xs": make_bag([1, 2, 3]).stype})
        codes = [d.code for d in analyze_bound_flow(expr, context)]
        assert codes == ["MOA903"]

    def test_bounded_unsafe_cutoff_gets_worst_case_instead(self):
        expr = Apply("slice", Var("xs"), 0, 2)
        context = AnalysisContext(
            env_types={"xs": make_bag([1, 2, 3]).stype},
            score_bounds={"xs": ScoreInterval(0, 10)})
        assert list(analyze_bound_flow(expr, context)) == []  # no MOA903
        certificate = certify(expr, context)
        assert not certificate.certified  # unsafe cut-off still denies
        assert certificate.worst_case is not None
        assert certificate.worst_case.computable
        assert certificate.worst_case.score_error == pytest.approx(10.0)


class TestMOA904:
    def test_widening_rewrite_flagged(self):
        before = parse(WIDENING_DEMO_EXPRESSION)
        after = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 0, 10)")
        findings = check_bounds_rewrite(before, after, AnalysisContext())
        assert [d.code for d in findings] == ["MOA904"]

    def test_tightening_rewrite_clean(self):
        before = parse("projecttobag([1, 2, 3, 4, 4, 5])")
        after = parse(WIDENING_DEMO_EXPRESSION)
        assert check_bounds_rewrite(before, after, AnalysisContext()) == []

    def test_demo_widening_rewrite_is_rejected_both_ways(self):
        demo = demo_widening_rewrite()
        assert "MOA904" in demo.report.codes()
        assert not demo.verdict.passed  # the lying "safe" label fails


class TestMOA905:
    def test_stale_seeded_bound(self):
        expr = parse("topn(xs, 5)")
        seed = BoundSeedDeclaration(
            "coordinator", ThresholdBound(n=10, key=(-0.5, 3), epoch=1),
            current_epoch=2)
        findings = list(analyze_bound_flow(expr, AnalysisContext(bound_seeds=(seed,))))
        assert [d.code for d in findings] == ["MOA905"]

    def test_epoch_consistent_seed_is_clean(self):
        expr = parse("topn(xs, 5)")
        seed = BoundSeedDeclaration(
            "coordinator", ThresholdBound(n=10, key=(-0.5, 3), epoch=2),
            current_epoch=2)
        assert list(analyze_bound_flow(expr, AnalysisContext(bound_seeds=(seed,)))) == []

    def test_stale_resume_frontier(self):
        expr = parse("topn(frontier, 3)")
        decl = ResumeSourceDeclaration("ta-resume", "frontier", lo=0.0, hi=1.0,
                                       cached_epoch=3, current_epoch=4)
        findings = list(analyze_bound_flow(expr, AnalysisContext(
            resume_sources=(decl,))))
        assert [d.code for d in findings] == ["MOA905"]


# -- certification over the shipped corpus -----------------------------------


class TestCertification:
    def test_every_example_plan_certifies_clean(self):
        assert EXAMPLE_PLANS, "examples/plans/*.moa missing"
        for path in EXAMPLE_PLANS:
            with open(path, encoding="utf-8") as handle:
                for lineno, raw in enumerate(handle, start=1):
                    line = raw.split("#", 1)[0].strip()
                    if not line:
                        continue
                    certificate = certify(parse(line), AnalysisContext())
                    assert certificate.certified, (
                        f"{path}:{lineno}: {certificate.describe()}")

    def test_both_seeded_unsound_rewrites_rejected_by_harness(self):
        assert len(SEEDED_UNSOUND_RULES) >= 2
        for rule_cls in SEEDED_UNSOUND_RULES:
            verdict = SoundnessHarness().verify_rule(rule_cls())
            assert not verdict.passed, rule_cls.name

    def test_certificate_serialises(self):
        import json

        certificate = certify(parse("topn(projecttobag([1, 2, 3]), 2)"),
                              AnalysisContext())
        payload = certificate.to_dict()
        json.dumps(payload)
        assert payload["certified"] is True
        assert payload["root_interval"] == {"lo": 1.0, "hi": 3.0}
