"""The ``repro bounds`` subcommand: the shared diagnostics contract."""

import json

from .test_lint_cli import EXAMPLE_PLANS, run_cli


class TestBoundsCli:
    def test_example_plans_certify_clean(self):
        assert EXAMPLE_PLANS, "examples/plans/*.moa missing"
        code, output = run_cli("bounds", *EXAMPLE_PLANS)
        assert code == 0
        assert "bound-certified" in output
        assert "not bound-certified" not in output

    def test_flow_tree_rendered_per_operator(self):
        code, output = run_cli(
            "bounds", "--expr", "topn(select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4), 2)")
        assert code == 0
        assert "$ topn — [2, 4]" in output
        assert "$.0 select — [2, 4]" in output
        assert "[1, 5]" in output  # the literal hull below the select

    def test_no_flow_suppresses_the_tree(self):
        code, output = run_cli("bounds", "--no-flow", "--expr", "topn([3, 1, 2], 2)")
        assert code == 0
        assert "$ topn" not in output

    def test_uncertified_plan_exits_nonzero(self):
        code, output = run_cli("bounds", "--expr", "slice(projecttobag([1, 2]), 0, 1)")
        assert code == 1
        assert "not bound-certified" in output

    def test_json_payload_follows_the_shared_contract(self):
        code, output = run_cli("bounds", "--json", "--expr", "topn([3, 1, 2], 2)")
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "bounds"
        assert payload["exit_code"] == 0
        assert payload["annotations"] == []
        certificate = payload["certificates"][0]
        assert certificate["certified"] is True
        assert certificate["root_interval"] == {"lo": 1.0, "hi": 3.0}

    def test_json_annotations_carry_ci_levels(self):
        code, output = run_cli("bounds", "--json", "--expr", "slice(xs, 0, 1)")
        assert code == 1
        payload = json.loads(output)
        assert payload["certificates"][0]["certified"] is False
        annotations = payload["annotations"]
        assert annotations, "an MOA903 finding must produce CI annotations"
        assert all(a["level"] in ("error", "warning", "notice") for a in annotations)
        assert any(a["title"] == "MOA903" for a in annotations)

    def test_computable_tradeoff_is_uncertified_but_annotation_free(self):
        """A bounded unsafe cut-off denies certification (exit 1) but
        carries a worst-case error instead of MOA9xx diagnostics."""
        code, output = run_cli("bounds", "--json", "--expr",
                               "slice(projecttobag([1, 2]), 0, 1)")
        assert code == 1
        payload = json.loads(output)
        certificate = payload["certificates"][0]
        assert certificate["certified"] is False
        assert certificate["worst_case"]["computable"] is True
        assert payload["annotations"] == []

    def test_nothing_to_analyze_is_usage_error(self):
        code, output = run_cli("bounds")
        assert code == 2
        assert "nothing to analyze" in output

    def test_missing_file_is_usage_error(self):
        code, output = run_cli("bounds", "no/such/plan.moa")
        assert code == 2

    def test_syntax_error_reported_without_traceback(self):
        code, output = run_cli("bounds", "--expr", "topn((")
        assert code == 1
        assert "syntax error" in output
        assert "Traceback" not in output


class TestDemoWideningCli:
    def test_demo_widening_flags_stable_codes(self):
        code, output = run_cli("lint", "--demo-widening")
        assert code == 1
        for expected in ("MOA904", "unsafe-select-widening", "FAIL"):
            assert expected in output

    def test_demo_widening_json(self):
        code, output = run_cli("lint", "--demo-widening", "--json")
        assert code == 1
        payload = json.loads(output)
        demo = payload["demo_widening"]
        assert demo["rule"] == "unsafe-select-widening"
        assert not demo["verdict"]["passed"]
        codes = [d["code"] for d in demo["report"]["diagnostics"]]
        assert "MOA904" in codes
