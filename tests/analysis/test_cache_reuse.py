"""The MOA8xx cache-reuse safety family: seeded unsafe reuses must be
flagged with the exact codes, sound reuses must grant the optimizer's
``cache_hit`` / ``resume_from`` fast-path plan properties, and any
violation must withhold both."""

from repro.algebra import make_list, parse
from repro.analysis import (
    AnalysisContext,
    CacheReuseAnalyzer,
    CacheReuseDeclaration,
    analyze_expr,
)
from repro.optimizer import Optimizer


def sound(**overrides):
    """A fully sound reuse: same epoch/aggregate/fragments/layout,
    prefix-serving top-10 from a cached top-100."""
    fields = dict(
        name="entry",
        cached_epoch=3, current_epoch=3,
        cached_aggregate="sum", query_aggregate="sum",
        cached_fragments=(0, 100), current_fragments=(0, 100),
        cached_shard_layout=(0, 50), current_shard_layout=(0, 50),
        cached_n=100, requested_n=10,
        prefix_safe=True, complete=False, has_resume=False,
    )
    fields.update(overrides)
    return CacheReuseDeclaration(**fields)


def codes(declaration):
    return sorted(code for code, _ in declaration.violations())


class TestViolations:
    def test_sound_reuse_is_clean(self):
        assert codes(sound()) == []

    def test_stale_epoch_moa801(self):
        assert codes(sound(cached_epoch=2)) == ["MOA801"]

    def test_aggregate_mismatch_moa802(self):
        assert codes(sound(query_aggregate="avg")) == ["MOA802"]

    def test_fragment_drift_moa803(self):
        assert codes(sound(current_fragments=(0, 90))) == ["MOA803"]

    def test_shard_layout_moa804(self):
        assert codes(sound(current_shard_layout=(0, 25, 50))) == ["MOA804"]

    def test_deep_serve_without_resume_moa805(self):
        assert codes(sound(requested_n=500)) == ["MOA805"]
        # resume state makes the deepening sound
        assert codes(sound(requested_n=500, has_resume=True)) == []
        # a complete entry serves any depth
        assert codes(sound(requested_n=500, complete=True)) == []

    def test_non_prefix_safe_exact_n_only(self):
        assert codes(sound(prefix_safe=False)) == ["MOA805"]
        assert codes(sound(prefix_safe=False, requested_n=100)) == []

    def test_unknown_fields_skip_checks(self):
        bare = CacheReuseDeclaration(name="bare")
        assert codes(bare) == []

    def test_violations_accumulate(self):
        bad = sound(cached_epoch=0, query_aggregate="max",
                    current_fragments=(1,), current_shard_layout=(9,),
                    requested_n=500)
        assert codes(bad) == ["MOA801", "MOA802", "MOA803", "MOA804", "MOA805"]


class TestAnalyzer:
    def test_diagnostics_carry_exact_codes(self):
        context = AnalysisContext(cache_reuse=(sound(cached_epoch=1),
                                               sound(query_aggregate="avg")))
        diagnostics = analyze_expr(parse("topn(xs, 10)"), context,
                                   analyzers=[CacheReuseAnalyzer()])
        assert sorted(d.code for d in diagnostics) == ["MOA801", "MOA802"]
        assert all(d.severity == "error" for d in diagnostics)

    def test_default_suite_includes_cache_reuse(self):
        context = AnalysisContext(
            env_types={"xs": make_list([3, 1, 2]).stype},
            cache_reuse=(sound(cached_epoch=1),))
        diagnostics = analyze_expr(parse("topn(xs, 10)"), context)
        assert "MOA801" in {d.code for d in diagnostics}

    def test_empty_context_yields_nothing(self):
        assert analyze_expr(parse("xs"), AnalysisContext(),
                            analyzers=[CacheReuseAnalyzer()]) == []


class TestOptimizerFastPath:
    ENV = {"xs": make_list([5, 2, 9, 1])}
    EXPR = parse("topn(xs, 3)")

    def test_sound_serve_grants_cache_hit(self):
        report = Optimizer(cache_reuse=[sound()]).optimize(self.EXPR, self.ENV)
        assert report.cache_hit
        assert report.resume_from is None
        assert "cache_hit" in report.describe()

    def test_resume_grants_resume_from(self):
        declaration = sound(requested_n=500, has_resume=True)
        report = Optimizer(cache_reuse=[declaration]).optimize(self.EXPR, self.ENV)
        assert not report.cache_hit
        assert report.resume_from == 100
        assert "resume_from=100" in report.describe()

    def test_violation_withholds_both(self):
        stale = sound(cached_epoch=1)
        report = Optimizer(cache_reuse=[stale]).optimize(self.EXPR, self.ENV)
        assert not report.cache_hit
        assert report.resume_from is None

    def test_one_bad_declaration_poisons_all(self):
        report = Optimizer(
            cache_reuse=[sound(), sound(cached_epoch=0)],
        ).optimize(self.EXPR, self.ENV)
        assert not report.cache_hit
        assert report.resume_from is None

    def test_verify_mode_reports_moa8xx(self):
        report = Optimizer(
            cache_reuse=[sound(cached_epoch=1)], verify=True,
        ).optimize(self.EXPR, self.ENV)
        assert report.diagnostics is not None
        assert "MOA801" in report.diagnostics.codes()

    def test_no_declarations_no_properties(self):
        report = Optimizer().optimize(self.EXPR, self.ENV)
        assert not report.cache_hit
        assert report.resume_from is None
