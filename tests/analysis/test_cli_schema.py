"""The three diagnostics subcommands share one ``--json`` contract.

``repro lint``, ``repro bounds`` and ``repro check`` must all emit
through the same helper (``_emit_diagnostics_json`` →
``cli_payload``), so a CI step can consume any of them without
knowing which command produced the payload: same top-level keys, same
report shape, same annotation records.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = str(Path(__file__).resolve().parent / "fixtures" / "lifecycle")

SHARED_KEYS = ["command", "reports", "annotations", "max_severity",
               "exit_code"]


def run_json(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, json.loads(out.getvalue())


@pytest.fixture(scope="module")
def payloads():
    return {
        "lint": run_json("lint", "--json", "--expr", "topn([3, 1, 2], 2)"),
        "bounds": run_json("bounds", "--json", "--expr", "topn([3, 1, 2], 2)"),
        "check": run_json("check", "--json"),
        "explain": run_json("explain", "example1", "--json"),
    }


class TestSharedSchema:
    def test_shared_toplevel_keys_lead_every_payload(self, payloads):
        """All three commands open with the same five keys in the same
        order; command-specific extras (``bounds`` adds
        ``certificates``) may only follow them."""
        key_lists = {name: list(payload)
                     for name, (_code, payload) in payloads.items()}
        for name, keys in key_lists.items():
            assert keys[:len(SHARED_KEYS)] == SHARED_KEYS, name
        assert key_lists["lint"] == SHARED_KEYS
        assert key_lists["check"] == SHARED_KEYS
        assert key_lists["bounds"] == SHARED_KEYS + ["certificates"]
        assert key_lists["explain"] == SHARED_KEYS + ["explain"]

    def test_command_field_names_the_subcommand(self, payloads):
        for name, (_code, payload) in payloads.items():
            assert payload["command"] == name

    def test_exit_code_field_matches_process_exit(self, payloads):
        for _name, (code, payload) in payloads.items():
            assert payload["exit_code"] == code

    def test_report_records_share_shape(self, payloads):
        shapes = set()
        for _name, (_code, payload) in payloads.items():
            for report in payload["reports"]:
                shapes.add(tuple(sorted(report)))
        assert len(shapes) == 1

    def test_annotation_records_are_ci_ready(self):
        code, payload = run_json("check", "--json", FIXTURES)
        assert code == 1
        assert payload["max_severity"] == "error"
        titles = {a["title"] for a in payload["annotations"]}
        assert "MOA1101" in titles and "MOA1103" in titles
        for annotation in payload["annotations"]:
            assert {"level", "title", "message", "location"} <= set(annotation)
            if "file" in annotation:
                assert isinstance(annotation["line"], int)


class TestCheckCommand:
    def test_clean_tree_passes_in_text_mode(self):
        out = io.StringIO()
        code = main(["check"], out=out)
        assert code == 0
        assert "clean" in out.getvalue()

    def test_seeded_fixtures_fail_with_lifecycle_codes(self):
        out = io.StringIO()
        code = main(["check", FIXTURES], out=out)
        text = out.getvalue()
        assert code == 1
        for expected in ("MOA1101", "MOA1102", "MOA1103", "MOA1104",
                         "MOA1105"):
            assert expected in text
