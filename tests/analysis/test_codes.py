"""The diagnostic-code table: unique, well-formed, documented."""

import re
from pathlib import Path

import pytest

from repro.analysis import CODES, SEVERITIES, all_codes, code_info

API_DOC = Path(__file__).resolve().parents[2] / "docs" / "API.md"


def test_codes_nonempty_and_keyed_consistently():
    assert CODES
    for code, info in CODES.items():
        assert info.code == code


def test_codes_are_unique():
    codes = [info.code for info in CODES.values()]
    assert len(codes) == len(set(codes))
    assert list(all_codes()) == sorted(codes)


def test_code_format_is_stable():
    # three digits for the original families, four for MOA10xx+
    for code in CODES:
        assert re.fullmatch(r"MOA\d{3,4}", code), code


def test_default_severities_are_valid():
    for info in CODES.values():
        assert info.default_severity in SEVERITIES


def test_titles_and_descriptions_present():
    for info in CODES.values():
        assert info.title.strip()
        assert info.description.strip()


def test_expected_codes_registered():
    for code in ("MOA001", "MOA002", "MOA003", "MOA101", "MOA102", "MOA103",
                 "MOA201", "MOA202", "MOA203", "MOA301", "MOA401", "MOA501",
                 "MOA901", "MOA902", "MOA903", "MOA904", "MOA905",
                 "MOA1001", "MOA1002", "MOA1003", "MOA1004"):
        assert code in CODES


def test_code_info_unknown_raises():
    with pytest.raises(KeyError):
        code_info("MOA999")


def test_every_code_is_documented_in_api_md():
    text = API_DOC.read_text(encoding="utf-8")
    for code in CODES:
        assert code in text, f"{code} missing from docs/API.md"
