"""End-to-end tests for the MOA11xx resource-lifecycle analyzer.

The seeded fixture modules under ``fixtures/lifecycle/`` each
reproduce one bug family — including both PR-8-review findings (the
deadline-parse slot leak and the engine-exception busy pin) — and the
analyzer must flag exactly those; the shipped tree and the ``clean``
fixture must produce nothing.
"""

from pathlib import Path

import pytest

from repro.analysis import check_lifecycle, check_lifecycle_paths
from repro.analysis.codes import CODES

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lifecycle"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def codes_by_file(report):
    out = {}
    for diag in report.diagnostics:
        name = diag.site.split(":", 1)[0]
        out.setdefault(name, []).append(diag.code)
    return out


@pytest.fixture(scope="module")
def fixture_report():
    return check_lifecycle_paths([str(FIXTURES)])


class TestSeededFixtures:
    def test_deadline_parse_slot_leak_reseeded(self, fixture_report):
        """PR-8 review bug (a): admission taken before deadline
        validation leaks the tenant slot on malformed input."""
        codes = codes_by_file(fixture_report)
        assert codes["leak_deadline_slot.py"] == ["MOA1101"]

    def test_engine_exception_busy_pin_reseeded(self, fixture_report):
        """PR-8 review bug (b): an engine exception escapes the pump
        with the session still pinned busy."""
        codes = codes_by_file(fixture_report)
        assert codes["busy_pin_engine.py"] == ["MOA1101"]

    def test_await_under_lock_flagged(self, fixture_report):
        codes = codes_by_file(fixture_report)
        assert codes["await_in_lock.py"] == ["MOA1103", "MOA1103"]

    def test_double_release_flagged(self, fixture_report):
        codes = codes_by_file(fixture_report)
        assert codes["double_release.py"] == ["MOA1102", "MOA1102"]

    def test_escaping_handles_flagged(self, fixture_report):
        codes = codes_by_file(fixture_report)
        assert codes["escape_handle.py"] == ["MOA1104", "MOA1104"]

    def test_lock_order_cycle_flagged(self, fixture_report):
        codes = codes_by_file(fixture_report)
        assert codes["deadlock_order.py"] == ["MOA1105"]

    def test_clean_fixture_produces_nothing(self, fixture_report):
        codes = codes_by_file(fixture_report)
        assert "clean.py" not in codes

    def test_no_other_findings(self, fixture_report):
        assert len(fixture_report.diagnostics) == 9

    def test_findings_use_registered_error_codes(self, fixture_report):
        for diag in fixture_report.diagnostics:
            assert diag.code in CODES
            assert diag.severity == "error"
            name, _, line = diag.site.partition(":")
            assert name.endswith(".py") and int(line) > 0

    def test_findings_render_as_annotations(self, fixture_report):
        for diag in fixture_report.diagnostics:
            annotation = diag.to_annotation()
            assert annotation["level"] == "error"
            assert annotation["line"] >= 1


class TestShippedTreeIsClean:
    def test_whole_package_clean(self):
        report = check_lifecycle()
        assert [d.code for d in report.diagnostics] == []

    @pytest.mark.parametrize(
        "subsystem", ["serve", "parallel", "storage", "cache"])
    def test_each_annotated_subsystem_clean_standalone(self, subsystem):
        """Each annotated subsystem also analyzes clean in isolation
        (summaries restricted to its own files)."""
        report = check_lifecycle_paths([str(REPO_SRC / subsystem)])
        assert [d.code for d in report.diagnostics] == []

    def test_report_source_names_the_pass(self):
        report = check_lifecycle_paths([str(FIXTURES)])
        assert report.source.startswith("lifecycle")
