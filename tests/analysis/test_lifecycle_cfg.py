"""Unit tests for the lifecycle CFG builder and dataflow analysis.

Each test analyzes a small source snippet through the same pipeline
``repro check`` uses (vocabulary scan → ``module_cfgs`` →
``module_summaries`` → ``analyze_function``) and asserts on the
finding codes, exercising one CFG construct at a time: branches,
try/finally unwinding, ``with`` scoping, loops, aliasing, parameter
handles and one-level call summaries.
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis.lifecycle import (
    Vocabulary,
    analyze_function,
    build_lock_graph,
    lock_order_cycles,
    module_cfgs,
    module_summaries,
)


def analyze(source):
    """All finding codes of every function in ``source``, by name."""
    tree = ast.parse(textwrap.dedent(source))
    vocab = Vocabulary()
    vocab.extend_from_tree(tree)
    pairs = module_cfgs(tree, vocab)
    summaries = module_summaries(pairs)
    out = {}
    for cfg, ctx in pairs:
        analysis = analyze_function(cfg, ctx, summaries=summaries)
        out[cfg.qualname] = [f.code for f in analysis.findings]
    return out


class TestBranchesAndScopes:
    def test_with_scoped_acquire_is_balanced(self):
        findings = analyze("""
            def f(self, tenant):
                with self.quotas.admit(tenant) as state:
                    return self.run(state)
        """)
        assert findings["f"] == []

    def test_release_on_one_branch_only_leaks(self):
        findings = analyze("""
            def f(self, cond):
                h = self.pool.admit()
                if cond:
                    h.release()
        """)
        assert findings["f"] == ["MOA1101"]

    def test_release_on_both_branches_is_balanced(self):
        findings = analyze("""
            def f(self, cond):
                h = self.pool.admit()
                if cond:
                    h.release()
                else:
                    h.release()
        """)
        assert findings["f"] == []

    def test_try_finally_covers_raising_call(self):
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                try:
                    return self.work(h)
                finally:
                    h.release()
        """)
        assert findings["f"] == []

    def test_raising_call_before_guard_leaks(self):
        findings = analyze("""
            def f(self, request):
                h = self.pool.admit()
                deadline = float(request["deadline_ms"])
                with h:
                    return self.work(deadline)
        """)
        assert findings["f"] == ["MOA1101"]

    def test_acquire_raise_itself_does_not_leak(self):
        """If the acquire call raises, nothing was acquired — the
        statement-form idiom must not flag its own raise edge."""
        findings = analyze("""
            def f(self, writer):
                self._lock.acquire()
                try:
                    self.flush(writer)
                finally:
                    self._lock.release()
        """)
        assert findings["f"] == []

    def test_bare_except_swallows_then_release(self):
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                try:
                    self.work(h)
                except:
                    pass
                h.release()
        """)
        assert findings["f"] == []

    def test_infinite_loop_has_no_phantom_exit(self):
        """A ``while True`` loop only exits through ``break``/
        ``return``; a synthetic test-to-exit edge would fabricate a
        normal path that skips the in-loop release."""
        findings = analyze("""
            def f(self, items):
                h = self.pool.admit()
                while True:
                    h.release()
                    return items
        """)
        assert findings["f"] == []

    def test_guarded_pump_loop_is_balanced(self):
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                try:
                    while True:
                        done = self.step(h)
                        if done:
                            break
                finally:
                    h.release()
        """)
        assert findings["f"] == []

    def test_unguarded_pump_loop_leaks_on_engine_error(self):
        """The busy-pin shape: a raising call inside the loop escapes
        with the resource held."""
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                while True:
                    done = self.step(h)
                    if done:
                        break
                h.release()
        """)
        assert findings["f"] == ["MOA1101"]


class TestReleaseDiscipline:
    def test_double_release_on_all_paths(self):
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                h.release()
                h.release()
        """)
        assert findings["f"] == ["MOA1102"]

    def test_release_after_partial_release_not_flagged(self):
        """MOA1102 is a must-analysis: one arriving path still holds
        the resource, so the site is legitimate."""
        findings = analyze("""
            def f(self, cond):
                h = self.pool.admit()
                if cond:
                    h.release()
                else:
                    self.note()
                if not cond:
                    h.release()
        """)
        assert "MOA1102" not in findings["f"]

    def test_alias_release_settles_the_handle(self):
        findings = analyze("""
            def f(self):
                h = self.pool.admit()
                g = h
                g.release()
        """)
        assert findings["f"] == []

    def test_release_by_token_argument(self):
        findings = analyze("""
            def f(self, registry, runner):
                session = registry.issue(runner, "tenant", 1)
                registry.drop(session.token)
        """)
        assert findings["f"] == []


class TestAwaitHazard:
    def test_await_inside_with_lock(self):
        findings = analyze("""
            async def f(self, writer):
                with self._lock:
                    await writer.drain()
        """)
        assert findings["f"] == ["MOA1103"]

    def test_await_after_lock_released_is_fine(self):
        findings = analyze("""
            async def f(self, writer):
                with self._lock:
                    frame = self.next_frame()
                await writer.drain()
                return frame
        """)
        assert findings["f"] == []

    def test_await_holding_slot_is_deliberate_and_allowed(self):
        findings = analyze("""
            async def f(self, writer, tenant):
                with self.quotas.admit(tenant):
                    await writer.drain()
        """)
        assert findings["f"] == []


class TestEscapes:
    def test_return_held_handle_from_non_factory(self):
        findings = analyze("""
            def f(self, tenant):
                h = self.quotas.admit(tenant)
                return h
        """)
        assert findings["f"] == ["MOA1104"]

    def test_declared_factory_may_return_held_handle(self):
        findings = analyze("""
            from repro.sync import acquires

            class C:
                @acquires("slot")
                def lease(self, tenant):
                    h = self.quotas.admit(tenant)
                    return h
        """)
        assert findings["C.lease"] == []

    def test_store_on_undeclared_attribute(self):
        findings = analyze("""
            class C:
                def f(self, tenant):
                    h = self.quotas.admit(tenant)
                    self.saved = h
        """)
        assert findings["C.f"] == ["MOA1104"]

    def test_store_on_declared_shared_state_is_transfer(self):
        findings = analyze("""
            class C:
                SHARED_STATE = {"slot": "_lock"}

                def f(self, tenant):
                    slot = self.quotas.admit(tenant)
                    self.slot = slot
        """)
        assert findings["C.f"] == []

    def test_rebinding_held_handle_loses_it(self):
        findings = analyze("""
            def f(self, tenant):
                h = self.quotas.admit(tenant)
                h = self.quotas.admit(tenant)
                h.release()
        """)
        # one finding for the rebind itself, one for the exceptional
        # path where the second acquire raises with the first held
        assert findings["f"] == ["MOA1101", "MOA1101"]


class TestParamHandlesAndSummaries:
    def test_releasing_a_parameter_is_not_a_leak(self):
        findings = analyze("""
            def f(self, session):
                try:
                    return self.step(session.token)
                finally:
                    session.release()
        """)
        assert findings["f"] == []

    def test_callee_summary_releases_for_caller(self):
        findings = analyze("""
            class C:
                def settle(self, h):
                    h.release()

                def f(self):
                    h = self.pool.admit()
                    self.settle(h)
        """)
        assert findings["C.f"] == []

    def test_callee_releasing_on_some_paths_still_leaks(self):
        findings = analyze("""
            class C:
                def settle(self, h, cond):
                    if cond:
                        h.release()

                def f(self, cond):
                    h = self.pool.admit()
                    self.settle(h, cond)
        """)
        # the kept-holding fork leaks on both the normal and the
        # exceptional exit
        assert findings["C.f"] == ["MOA1101", "MOA1101"]

    def test_class_scoped_summary_beats_name_collision(self):
        """Two classes define ``settle``; the self-call must resolve
        to the summary of its own class."""
        findings = analyze("""
            class A:
                def settle(self, h):
                    h.release()

                def f(self):
                    h = self.pool.admit()
                    self.settle(h)

            class B:
                def settle(self, h):
                    self.log(h)
        """)
        assert findings["A.f"] == []


class TestLockGraph:
    def _graph(self, source):
        tree = ast.parse(textwrap.dedent(source))
        return build_lock_graph([(Path("snippet.py"), tree)])

    def test_opposite_orders_form_a_cycle(self):
        graph = self._graph("""
            from repro.sync import make_lock

            A_LOCK = make_lock("t.a")
            B_LOCK = make_lock("t.b")

            def ab():
                with A_LOCK:
                    with B_LOCK:
                        pass

            def ba():
                with B_LOCK:
                    with A_LOCK:
                        pass
        """)
        assert ("t.a", "t.b") in graph.edges
        assert ("t.b", "t.a") in graph.edges
        cycles = lock_order_cycles(graph.edges)
        assert any({"t.a", "t.b"} <= set(c) for c in cycles)

    def test_consistent_order_has_no_cycle(self):
        graph = self._graph("""
            from repro.sync import make_lock

            A_LOCK = make_lock("t.a")
            B_LOCK = make_lock("t.b")

            def one():
                with A_LOCK:
                    with B_LOCK:
                        pass

            def two():
                with A_LOCK:
                    with B_LOCK:
                        pass
        """)
        assert lock_order_cycles(graph.edges) == []

    def test_transitive_edge_through_called_function(self):
        graph = self._graph("""
            from repro.sync import make_lock

            A_LOCK = make_lock("t.a")
            B_LOCK = make_lock("t.b")

            def inner_step():
                with B_LOCK:
                    pass

            def outer():
                with A_LOCK:
                    inner_step()
        """)
        assert ("t.a", "t.b") in graph.edges
