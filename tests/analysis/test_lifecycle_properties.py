"""Differential property test for the lifecycle dataflow.

Hypothesis generates random programs over a tiny grammar — acquire,
release, a maybe-raising call, ``if``/``else`` and ``try`` with a bare
``except`` (the one handler form whose catch-everything semantics the
analyzer's handler-coverage assumption models exactly).  A concrete
interpreter enumerates the reachable abstract states path-by-path and
decides ground truth: does any execution end (normally or by an
escaping exception) with the resource still held, or lose a held
resource by rebinding?

The analyzer must agree in both directions on this grammar:

* **no false negatives** — every concretely-leaking program gets an
  ``MOA1101``;
* **no false positives** — a program with no leaking execution gets
  none (the collecting semantics is path-sensitive, so on this
  grammar it is exact).
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lifecycle import (
    Vocabulary,
    analyze_function,
    module_cfgs,
    module_summaries,
)

# -- program grammar --------------------------------------------------------

leaf = st.sampled_from([("acq",), ("rel",), ("work",)])
stmt = st.recursive(
    leaf,
    lambda inner: st.one_of(
        st.tuples(st.just("if"),
                  st.lists(inner, max_size=3),
                  st.lists(inner, max_size=3)),
        st.tuples(st.just("try"),
                  st.lists(inner, max_size=3),
                  st.lists(inner, max_size=2)),
    ),
    max_leaves=10,
)
programs = st.lists(stmt, min_size=1, max_size=5)


def render(program):
    lines = ["def f(pool, cond):"]

    def emit(block, depth):
        pad = "    " * depth
        if not block:
            lines.append(pad + "pass")
            return
        for node in block:
            kind = node[0]
            if kind == "acq":
                lines.append(pad + "h = pool.admit()")
            elif kind == "rel":
                lines.append(pad + "h.release()")
            elif kind == "work":
                lines.append(pad + "work()")
            elif kind == "if":
                lines.append(pad + "if cond:")
                emit(node[1], depth + 1)
                lines.append(pad + "else:")
                emit(node[2], depth + 1)
            elif kind == "try":
                lines.append(pad + "try:")
                emit(node[1], depth + 1)
                lines.append(pad + "except:")
                emit(node[2], depth + 1)
    emit(program, 1)
    return "\n".join(lines) + "\n"


# -- concrete semantics -----------------------------------------------------
#
# A state is ``(held, lost)``: whether the resource is currently held,
# and whether some held resource was irrecoverably lost by rebinding.
# Every maybe-raising statement contributes an escaping outcome; a bare
# except catches whatever its body raised.


def run_block(block, states):
    current = set(states)
    raised = set()
    for node in block:
        if not current:
            break
        kind = node[0]
        nxt = set()
        for held, lost in current:
            if kind == "acq":
                # the acquire call itself may raise: nothing acquired
                raised.add((held, lost))
                nxt.add((True, lost or held))
            elif kind == "rel":
                # release applies, then the call may still raise
                raised.add((False, lost))
                nxt.add((False, lost))
            elif kind == "work":
                raised.add((held, lost))
                nxt.add((held, lost))
            elif kind == "if":
                for branch in (node[1], node[2]):
                    done, escaped = run_block(branch, {(held, lost)})
                    nxt |= done
                    raised |= escaped
            elif kind == "try":
                done, escaped = run_block(node[1], {(held, lost)})
                handled, reraised = run_block(node[2], escaped)
                nxt |= done | handled
                raised |= reraised
        current = nxt
    return current, raised


def concrete_leaks(program):
    finished, escaped = run_block(program, {(False, False)})
    return any(held or lost for held, lost in finished | escaped)


# -- analyzer side ----------------------------------------------------------


def analyzer_codes(source):
    tree = ast.parse(source)
    vocab = Vocabulary()
    vocab.extend_from_tree(tree)
    pairs = module_cfgs(tree, vocab)
    summaries = module_summaries(pairs)
    codes = []
    for cfg, ctx in pairs:
        analysis = analyze_function(cfg, ctx, summaries=summaries)
        codes.extend(f.code for f in analysis.findings)
    return codes


@settings(max_examples=120, deadline=None)
@given(programs)
def test_analyzer_agrees_with_concrete_paths(program):
    source = render(program)
    compile(source, "<generated>", "exec")  # the program must be real Python
    leaks = concrete_leaks(program)
    flagged = "MOA1101" in analyzer_codes(source)
    assert flagged == leaks, (
        f"{'false negative' if leaks else 'false positive'} on:\n"
        + textwrap.indent(source, "    "))


@settings(max_examples=40, deadline=None)
@given(programs)
def test_leaked_paths_are_never_missed(program):
    """The soundness half on its own: a concretely-leaking program is
    always flagged."""
    if concrete_leaks(program):
        assert "MOA1101" in analyzer_codes(render(program))
