"""The ``repro lint`` subcommand and the pipeline's verify mode."""

import io
import json
from pathlib import Path

from repro.algebra import make_list, parse
from repro.algebra.expr import Apply
from repro.analysis import clear_verified_cache
from repro.cli import main
from repro.optimizer import BUDGET_EXHAUSTED_RULE, Optimizer, RewriteRule

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLE_PLANS = sorted(str(p) for p in (REPO_ROOT / "examples" / "plans").glob("*.moa"))


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLintCli:
    def test_example_plans_lint_clean(self):
        assert EXAMPLE_PLANS, "examples/plans/*.moa missing"
        code, output = run_cli("lint", *EXAMPLE_PLANS)
        assert code == 0
        assert "clean" in output

    def test_expr_with_errors_exits_nonzero(self):
        code, output = run_cli("lint", "--expr", "slice(projecttobag([1, 2]), 0, 1)")
        assert code == 1
        assert "MOA201" in output

    def test_json_output(self):
        code, output = run_cli("lint", "--json", "--expr", "topn([3, 1, 2], 2)")
        assert code == 0
        payload = json.loads(output)
        assert payload["reports"][0]["summary"] == "clean"

    def test_demo_unsafe_flags_stable_codes(self):
        code, output = run_cli("lint", "--demo-unsafe")
        assert code == 1  # the seeded rewrite *must* produce findings
        for expected in ("MOA201", "MOA202", "unsafe-stopafter-pushdown", "FAIL"):
            assert expected in output

    def test_demo_unsafe_json(self):
        code, output = run_cli("lint", "--demo-unsafe", "--json")
        assert code == 1
        payload = json.loads(output)
        demo = payload["demo_unsafe"]
        assert demo["rule"] == "unsafe-stopafter-pushdown"
        assert not demo["verdict"]["passed"]
        codes = [d["code"] for d in demo["report"]["diagnostics"]]
        assert "MOA201" in codes

    def test_verify_rules_all_pass(self):
        code, output = run_cli("lint", "--verify-rules")
        assert code == 0
        assert "FAIL" not in output
        assert output.count("PASS") == 12

    def test_nothing_to_lint_is_usage_error(self):
        code, output = run_cli("lint")
        assert code == 2
        assert "nothing to lint" in output

    def test_malformed_expr_reports_syntax_error(self):
        code, output = run_cli("lint", "--expr", "topn((")
        assert code == 1
        assert "syntax error" in output
        assert "Traceback" not in output

    def test_empty_expr_reports_syntax_error(self):
        code, output = run_cli("lint", "--expr", "")
        assert code == 1
        assert "syntax error" in output
        assert "<empty>" in output

    def test_missing_file_is_usage_error(self):
        code, output = run_cli("lint", "/nonexistent/plans.moa")
        assert code == 2
        assert "cannot read" in output
        assert "Traceback" not in output

    def test_malformed_expr_does_not_suppress_good_ones(self):
        code, output = run_cli("lint", "--expr", "topn((",
                               "--expr", "topn(sort([3, 1, 2], 1), 2, 1)")
        assert code == 1
        assert "syntax error" in output
        assert "clean" in output


class TestPipelineVerifyMode:
    def test_verify_off_by_default(self):
        report = Optimizer().optimize(parse("topn([3, 1, 2], 2)"))
        assert report.diagnostics is None

    def test_verify_mode_clean_run(self):
        env = {"xs": make_list(range(20))}
        report = Optimizer(verify=True).optimize(
            parse("slice(slice(sort(xs, 0), 0, 10), 0, 3)"), env)
        assert report.diagnostics is not None
        assert not report.diagnostics.has_errors
        assert "lint" in report.describe()

    def test_verify_per_call_override(self):
        env = {"xs": make_list(range(5))}
        expr = parse("sort(sort(xs, 1), 1)")
        assert Optimizer().optimize(expr, env, verify=True).diagnostics is not None
        assert Optimizer(verify=True).optimize(expr, env,
                                               verify=False).diagnostics is None

    def test_budget_exhaustion_marks_moa501_and_failing_rule_moa202(self):
        class FlipSort(RewriteRule):
            name = "fixture-cli-flip-sort"
            layer = "logical"

            def apply(self, expr, context):
                if isinstance(expr, Apply) and expr.op == "sort":
                    values, scalars = expr.split_args(context.env_types,
                                                      context.registry)
                    flipped = 1 - scalars[0].value if scalars else 1
                    return Apply("sort", values[0], flipped)
                return None

        clear_verified_cache()
        try:
            optimizer = Optimizer(logical_rules=[FlipSort()], inter_object_rules=[],
                                  intra_object_rules=[], verify=True)
            env = {"xs": make_list([3, 1, 2])}
            report = optimizer.optimize(parse("sort(xs, 1)"), env)
            assert any(entry.is_budget_marker for entry in report.trace)
            assert BUDGET_EXHAUSTED_RULE in [entry.rule for entry in report.trace]
            codes = report.diagnostics.codes()
            assert "MOA501" in codes
            assert "MOA202" in codes  # the cyclic rule also fails the harness
            assert report.diagnostics.has_errors
        finally:
            clear_verified_cache()
