"""The MOA1105 static lock-order graph against the runtime oracle.

``repro.sync.lock_order_edges()`` records the acquisition-order graph
the sanitizer observes at runtime.  A deliberate A→B / B→A nesting is
the oracle: the runtime records both edges (and a ``lock-order``
violation), and the static analyzer must reach the same verdict —
report a cycle — from the source alone.  On disciplined code the
check is consistency: every runtime edge between statically-known
locks must already be in the static graph
(``crosscheck_lock_order`` returns the ones that are not).
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro import sync
from repro.analysis.lifecycle import (
    build_lock_graph,
    crosscheck_lock_order,
    lifecycle_root,
    lock_order_cycles,
    static_lock_order_edges,
)

FIXTURE = (Path(__file__).resolve().parent / "fixtures" / "lifecycle"
           / "deadlock_order.py")


@pytest.fixture()
def sanitizer():
    sync.install_sanitizer()
    sync.reset_violations()
    try:
        yield
    finally:
        sync.uninstall_sanitizer()


def parse_src_trees():
    root = lifecycle_root()
    return [(path, ast.parse(path.read_text(), filename=str(path)))
            for path in sorted(root.rglob("*.py"))]


class TestRuntimeOracle:
    def test_reversed_nesting_records_both_edges(self, sanitizer):
        a = sync.make_lock("oracle.a")
        b = sync.make_lock("oracle.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        edges = sync.lock_order_edges()
        assert ("oracle.a", "oracle.b") in edges
        assert ("oracle.b", "oracle.a") in edges
        kinds = [v.kind for v in sync.violations()]
        assert "lock-order" in kinds

    def test_static_analyzer_agrees_with_runtime_on_the_same_shape(
            self, sanitizer):
        """The deadlock fixture is the source-level twin of the
        runtime A→B/B→A oracle: same locks, same verdict."""
        tree = ast.parse(FIXTURE.read_text(), filename=str(FIXTURE))
        graph = build_lock_graph([(FIXTURE, tree)])
        assert ("fixture.accounts", "fixture.audit") in graph.edges
        assert ("fixture.audit", "fixture.accounts") in graph.edges
        cycles = lock_order_cycles(graph.edges)
        assert any({"fixture.accounts", "fixture.audit"} <= set(c)
                   for c in cycles)

        # replaying the fixture's shape at runtime yields exactly the
        # edge pair the static graph predicted
        accounts = sync.make_lock("fixture.accounts")
        audit = sync.make_lock("fixture.audit")
        with accounts:
            with audit:
                pass
        with audit:
            with accounts:
                pass
        runtime = {e for e in sync.lock_order_edges()
                   if e[0].startswith("fixture.")}
        assert runtime == {("fixture.accounts", "fixture.audit"),
                           ("fixture.audit", "fixture.accounts")}
        assert crosscheck_lock_order(graph, sync.lock_order_edges()) == []


class TestShippedGraphConsistency:
    def test_static_graph_of_shipped_tree_is_acyclic(self):
        graph = build_lock_graph(parse_src_trees())
        assert lock_order_cycles(graph.edges) == []

    def test_runtime_workload_edges_are_a_subset_of_static(self, sanitizer):
        """Exercise the executor under the sanitizer: every nesting
        the runtime observes must be predicted by the static graph."""
        from repro.obs import metrics
        from repro.parallel.executor import ExecutorPool

        metrics.enable()
        try:
            with ExecutorPool(workers=2, kind="thread") as pool:
                with pool.admit():
                    outcomes = pool.run_tasks([(lambda: 1)] * 4)
                    assert all(o.status == "done" for o in outcomes)
        finally:
            metrics.disable()
        assert sync.lock_order_edges(), "workload recorded no nesting"
        graph = build_lock_graph(parse_src_trees())
        assert crosscheck_lock_order(graph, sync.lock_order_edges()) == []

    def test_crosscheck_reports_unpredicted_edges(self):
        """An observed nesting between known locks that the static
        graph does not predict must surface, not vanish."""
        graph = build_lock_graph(parse_src_trees())
        known = sorted(graph.lock_names)
        assert len(known) >= 2
        fabricated = {(known[0], known[1]): "test-thread",
                      (known[1], known[0]): "test-thread"}
        missing = crosscheck_lock_order(graph, fabricated)
        assert set(missing) == {e for e in fabricated
                                if e not in graph.edges}
        assert missing  # at least one direction is not in the graph

    def test_static_edges_helper_matches_graph(self):
        trees = parse_src_trees()
        graph = build_lock_graph(trees)
        assert set(static_lock_order_edges(trees)) == set(graph.edges)
