"""Registry <-> docs sync: every diagnostic code registered in
``repro.analysis.codes`` must have a matching row in docs/API.md, and the
family grouping advertised in the module docstring must match the registry."""

import re
from pathlib import Path

from repro.analysis import codes as codes_module
from repro.analysis.codes import CODES

DOCS = Path(__file__).parent.parent.parent / "docs" / "API.md"

DOC_ROW = re.compile(
    r"^\|\s*`(MOA\d{3,4})`\s*\|\s*(\w+)\s*\|\s*(.+?)\s*\|\s*$", re.MULTILINE)


def doc_rows():
    return {code: (severity, title.strip())
            for code, severity, title in DOC_ROW.findall(DOCS.read_text())}


class TestDocsCoverage:
    def test_every_registered_code_has_a_docs_row(self):
        rows = doc_rows()
        missing = sorted(set(CODES) - set(rows))
        assert missing == [], f"codes missing from docs/API.md: {missing}"

    def test_no_docs_row_without_a_registered_code(self):
        rows = doc_rows()
        stale = sorted(set(rows) - set(CODES))
        assert stale == [], f"docs/API.md rows for unregistered codes: {stale}"

    def test_docs_severity_matches_registry(self):
        rows = doc_rows()
        for code, info in CODES.items():
            severity, _title = rows[code]
            assert severity == info.default_severity, (
                f"{code}: docs say {severity!r}, "
                f"registry says {info.default_severity!r}")

    def test_docs_title_matches_registry(self):
        rows = doc_rows()
        for code, info in CODES.items():
            _severity, title = rows[code]
            assert title == info.title, (
                f"{code}: docs say {title!r}, registry says {info.title!r}")


class TestFamilyGrouping:
    # a code is MOA<family><2-digit member>: MOA101 is family 1,
    # MOA1001 is family 10

    def families_in_docstring(self):
        doc = codes_module.__doc__ or ""
        return {int(d) for d in re.findall(r"MOA(\d+)xx", doc)}

    def families_in_registry(self):
        return {int(code[3:-2]) for code in CODES}

    def test_docstring_families_match_registry_families(self):
        in_doc = self.families_in_docstring()
        in_registry = self.families_in_registry()
        assert in_doc == in_registry, (
            f"docstring groups {sorted(in_doc)}, "
            f"registry holds {sorted(in_registry)}")

    def test_families_have_no_numbering_gaps(self):
        for family in self.families_in_registry():
            members = sorted(int(code[-2:]) for code in CODES
                             if int(code[3:-2]) == family)
            expected = list(range(1, len(members) + 1))
            assert members == expected, (
                f"MOA{family}xx is not consecutively numbered "
                f"from MOA{family}01: {members}")
