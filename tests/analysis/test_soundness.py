"""The rewrite-rule soundness harness: positive and negative tests."""

import pytest

from repro.algebra import make_list, parse
from repro.algebra.expr import Apply
from repro.analysis import (
    SoundnessHarness,
    UnsafeStopAfterPushdown,
    apply_rule_somewhere,
    clear_verified_cache,
    default_corpus,
    ensure_verified,
    verified_verdict,
)
from repro.optimizer import (
    DEFAULT_INTER_OBJECT_RULES,
    DEFAULT_LOGICAL_RULES,
    RewriteRule,
    RuleContext,
    intra_rules_for,
)

ALL_DEFAULT_RULES = (list(DEFAULT_LOGICAL_RULES) + list(DEFAULT_INTER_OBJECT_RULES)
                     + list(intra_rules_for()))


@pytest.fixture(scope="module")
def harness():
    return SoundnessHarness()


class TestDefaultRulesAreSound:
    @pytest.mark.parametrize("rule", ALL_DEFAULT_RULES, ids=lambda r: r.name)
    def test_rule_passes(self, harness, rule):
        verdict = harness.verify_rule(rule)
        assert verdict.passed, verdict.describe()
        assert verdict.declared_safety == "safe"
        assert verdict.exercised > 0, f"{rule.name} never exercised by the corpus"
        assert verdict.mean_overlap == pytest.approx(1.0)

    def test_every_layer_is_represented(self):
        layers = {rule.layer for rule in ALL_DEFAULT_RULES}
        assert layers == {"logical", "inter-object", "intra-object"}

    def test_no_error_level_findings_for_defaults(self, harness):
        verdicts = harness.verify_rules(ALL_DEFAULT_RULES)
        assert all(verdict.passed for verdict in verdicts.values())


class DropSort(RewriteRule):
    """Deliberately unsound: claims sort is a no-op (it is not, for a
    LIST result the element order is the value)."""

    name = "fixture-drop-sort"
    layer = "logical"
    # declared safe on purpose: the harness must catch the lie

    def apply(self, expr, context):
        if isinstance(expr, Apply) and expr.op == "sort":
            values, _ = expr.split_args(context.env_types, context.registry)
            from repro.algebra.types import ListType

            if isinstance(context.type_of(values[0]), ListType):
                return values[0]
        return None


class ShrinkTopN(RewriteRule):
    """Deliberately unsound *unsafe* rule: changes the cardinality."""

    name = "fixture-shrink-topn"
    layer = "intra-object"
    safety = "unsafe"

    def apply(self, expr, context):
        if isinstance(expr, Apply) and expr.op == "topn":
            values, scalars = expr.split_args(context.env_types, context.registry)
            if scalars and isinstance(scalars[0].value, int) and scalars[0].value > 1:
                return Apply("topn", values[0], scalars[0].value - 1, *scalars[1:])
        return None


class NeverFires(RewriteRule):
    name = "fixture-never-fires"
    layer = "logical"

    def apply(self, expr, context):
        return None


class TestUnsoundRulesAreFlagged:
    def test_drop_sort_fails_differentially(self, harness):
        verdict = harness.verify_rule(DropSort())
        assert not verdict.passed
        assert verdict.exercised > 0
        assert any("results differ" in failure for failure in verdict.failures)

    def test_unsafe_stopafter_pushdown_fails(self, harness):
        verdict = harness.verify_rule(UnsafeStopAfterPushdown())
        assert not verdict.passed
        assert verdict.declared_safety == "unsafe"
        assert any("ill-typed" in failure for failure in verdict.failures)

    def test_cardinality_breaking_unsafe_rule_fails(self, harness):
        verdict = harness.verify_rule(ShrinkTopN())
        assert not verdict.passed
        assert any("cardinality" in failure for failure in verdict.failures)

    def test_unexercised_rule_fails(self, harness):
        verdict = harness.verify_rule(NeverFires())
        assert not verdict.passed
        assert verdict.exercised == 0
        assert "never exercised" in verdict.describe()


class TestHarnessMechanics:
    def test_corpus_is_deterministic(self):
        a = default_corpus(seed=11)
        b = default_corpus(seed=11)
        assert [(str(e), sorted(env)) for e, env in a] == \
               [(str(e), sorted(env)) for e, env in b]

    def test_apply_rule_somewhere_none_when_no_match(self):
        rule = DEFAULT_LOGICAL_RULES[0]
        context = RuleContext(env_types={"xs": make_list([1]).stype})
        assert apply_rule_somewhere(parse("sort(xs, 1)"), rule, context) is None

    def test_cyclic_rule_is_a_failure_not_a_hang(self, harness):
        class FlipSort(RewriteRule):
            name = "fixture-flip-sort"
            layer = "logical"

            def apply(self, expr, context):
                if isinstance(expr, Apply) and expr.op == "sort":
                    values, scalars = expr.split_args(context.env_types,
                                                      context.registry)
                    flipped = 1 - scalars[0].value if scalars else 1
                    return Apply("sort", values[0], flipped)
                return None

        verdict = harness.verify_rule(FlipSort())
        assert not verdict.passed
        assert any("fixpoint" in failure for failure in verdict.failures)

    def test_verified_cache_reuses_verdicts(self):
        clear_verified_cache()
        rule = DEFAULT_LOGICAL_RULES[0]
        first = verified_verdict(rule)
        second = verified_verdict(rule)
        assert first is second
        verdicts = ensure_verified([rule])
        assert verdicts[rule.name] is first
        clear_verified_cache()
