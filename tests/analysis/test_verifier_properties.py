"""Property-based tests for the plan verifier.

Two invariants, checked over Hypothesis-generated expressions:

* every *well-typed* expression the generator produces lints without
  error-severity diagnostics — the analyzers have no false positives
  on the algebra's own legal plans;
* every optimizer run under ``verify=True`` over those expressions
  yields a diagnostics report free of error-severity findings — the
  default rules never trip the verifier.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Apply, Var, make_bag, make_list, make_set
from repro.analysis import AnalysisContext, analyze_expr, check_rewrite_step
from repro.optimizer import Optimizer

atoms = st.integers(min_value=-50, max_value=50)


@st.composite
def environments(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    values = draw(st.lists(atoms, min_size=n, max_size=n))
    kind = draw(st.sampled_from(["list", "bag", "set"]))
    maker = {"list": make_list, "bag": make_bag, "set": make_set}[kind]
    return {"xs": maker(values)}


@st.composite
def collection_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return Var("xs")
    child = draw(collection_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["select", "sort", "topn", "projecttobag",
                               "projecttoset"]))
    if op == "select":
        lo, hi = draw(atoms), draw(atoms)
        return Apply("select", child, min(lo, hi), max(lo, hi))
    if op == "sort":
        return Apply("sort", child, draw(st.sampled_from([0, 1])))
    if op == "topn":
        return Apply("topn", child, draw(st.integers(min_value=0, max_value=10)),
                     draw(st.sampled_from([0, 1])))
    return Apply(op, child)


def _context(env):
    return AnalysisContext(env_types={k: v.stype for k, v in env.items()})


@settings(max_examples=60, deadline=None)
@given(expr=collection_exprs(), env=environments())
def test_legal_plans_have_no_error_diagnostics(expr, env):
    context = _context(env)
    try:
        expr.infer_type(context.env_types, context.registry)
    except Exception:
        return  # ill-typed draws are the analyzers' *input*, not targets
    errors = [d for d in analyze_expr(expr, context) if d.severity == "error"]
    assert errors == [], [d.render() for d in errors]


@settings(max_examples=30, deadline=None)
@given(expr=collection_exprs(), env=environments())
def test_verified_optimizer_runs_clean(expr, env):
    context = _context(env)
    try:
        expr.infer_type(context.env_types, context.registry)
    except Exception:
        return
    report = Optimizer(verify=True).optimize(expr, env)
    assert report.diagnostics is not None
    errors = report.diagnostics.errors
    assert errors == [], [d.render() for d in errors]


@settings(max_examples=40, deadline=None)
@given(env=environments(), n=st.integers(min_value=0, max_value=5))
def test_rewrite_step_check_accepts_true_equivalences(env, n):
    """slice(sort(x), 0, n) => topn(x, n) is the paper's flagship safe
    rewrite: the step checker must never complain about it."""
    if not isinstance(env["xs"], type(make_list([1]))):
        return
    before = Apply("slice", Apply("sort", Var("xs"), 0), 0, n)
    after = Apply("topn", Var("xs"), n, 0)
    assert check_rewrite_step(before, after, _context(env)) == []
