"""Epoch-stamped coordinator bounds: the shared ``ThresholdBound``
record and the runtime twin of the static MOA905 check."""

import numpy as np

from repro.cache import CoordinatorBounds, ShardBoundInfo, ThresholdBound
from repro.mm import ArraySource
from repro.parallel import SourceRangeEvaluator, coordinated_topn


def evaluators_for(scores, boundaries):
    sources = [ArraySource(np.asarray(scores, dtype=np.float64))]
    return [
        SourceRangeEvaluator(i, sources, lo, hi)
        for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:]))
    ]


class TestEpochStamping:
    def test_records_are_shared_threshold_bounds(self):
        bounds = CoordinatorBounds(epoch=3)
        bounds.record(10, (-0.8, 3), [], epoch=3)
        bounds.record(50, (-0.5, 9), [], epoch=3)
        records = bounds.threshold_records()
        assert all(isinstance(r, ThresholdBound) for r in records)
        assert [(r.n, r.epoch) for r in records] == [(10, 3), (50, 3)]
        assert records[0].score == 0.8  # keys are (-score, obj_id)

    def test_seedable_only_at_the_recorded_epoch(self):
        bounds = CoordinatorBounds(epoch=1)
        assert bounds.seedable_at(1) and bounds.seedable_at(2)  # empty: trivially
        bounds.record(10, (-0.8, 3), [], epoch=1)
        assert bounds.seedable_at(1)
        assert not bounds.seedable_at(2)

    def test_threshold_bound_refuses_epoch_mismatch(self):
        bounds = CoordinatorBounds(epoch=1)
        bounds.record(10, (-0.8, 3), [], epoch=1)
        assert bounds.threshold_bound(10, epoch=1) == (-0.8, 3)
        assert bounds.threshold_bound(10, epoch=2) is None
        assert bounds.threshold_bound(10) == (-0.8, 3)  # unstamped lookup

    def test_recording_at_a_new_epoch_purges_stale_facts(self):
        bounds = CoordinatorBounds(epoch=1)
        infos = [ShardBoundInfo(0, top_key=(-0.9, 1), candidates=5, exhausted=False)]
        bounds.record(10, (-0.8, 3), infos, epoch=1)
        bounds.record(5, (-0.6, 2), [], epoch=2)
        assert bounds.epoch == 2
        assert [r.n for r in bounds.threshold_records()] == [5]
        assert bounds.shards == {}  # stale shard facts went with the epoch

    def test_prunable_shards_empty_on_epoch_mismatch(self):
        bounds = CoordinatorBounds(epoch=1)
        infos = [
            ShardBoundInfo(0, top_key=(-0.9, 1), candidates=5, exhausted=False),
            ShardBoundInfo(1, top_key=(-0.3, 2), candidates=5, exhausted=False),
        ]
        bounds.record(10, (-0.5, 7), infos, epoch=1)
        assert bounds.prunable_shards(10, epoch=1) == {1}
        assert bounds.prunable_shards(10, epoch=2) == set()

    def test_snapshot_carries_epochs(self):
        import json

        bounds = CoordinatorBounds(epoch=4)
        bounds.record(5, (-0.7, 4), [], epoch=4)
        snapshot = bounds.snapshot()
        json.dumps(snapshot)
        assert snapshot["epoch"] == 4
        assert snapshot["tau_by_n"][5]["epoch"] == 4


class TestCoordinatorEpochGate:
    SCORES = [10, 9, 8, 7, 6, 5, 4, 3, 2, 1]

    def test_stale_bounds_seed_nothing_and_are_replaced(self):
        bounds = CoordinatorBounds(epoch=0)
        result = coordinated_topn(evaluators_for(self.SCORES, [0, 5, 10]),
                                  n=2, bounds=bounds, epoch=0)
        assert result.certified
        assert bounds.threshold_records()
        # the corpus mutated: the same bounds object must not seed
        result = coordinated_topn(evaluators_for(self.SCORES, [0, 5, 10]),
                                  n=2, bounds=bounds, epoch=1)
        assert result.certified
        assert result.stats["bound_pruned"] == 0
        assert result.stats["bound_served"] == 0
        # ... and the certified outcome re-stamped the cache at epoch 1
        assert bounds.epoch == 1
        assert all(r.epoch == 1 for r in bounds.threshold_records())

    def test_same_epoch_bounds_still_prune(self):
        bounds = CoordinatorBounds(epoch=7)
        first = coordinated_topn(evaluators_for(self.SCORES, [0, 5, 10]),
                                 n=2, bounds=bounds, epoch=7)
        assert first.certified
        repeat = coordinated_topn(evaluators_for(self.SCORES, [0, 5, 10]),
                                  n=2, bounds=bounds, epoch=7)
        assert repeat.certified
        assert repeat.doc_ids == first.doc_ids
        assert repeat.stats["bound_pruned"] >= 1  # shard 1 precluded

    def test_single_shard_degenerate_merge_with_bounds(self):
        """One shard holding everything: the merge is degenerate but the
        bound cache round-trips (records then serves the full ranking)."""
        bounds = CoordinatorBounds(epoch=0)
        first = coordinated_topn(evaluators_for([3, 2, 1], [0, 3]),
                                 n=3, bounds=bounds, epoch=0)
        assert first.certified
        assert first.doc_ids == [0, 1, 2]
        repeat = coordinated_topn(evaluators_for([3, 2, 1], [0, 3]),
                                  n=3, bounds=bounds, epoch=0)
        assert repeat.doc_ids == [0, 1, 2]
        assert repeat.stats["bound_served"] == 1  # served from the cache
