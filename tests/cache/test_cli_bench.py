"""`repro bench-cache` CLI smoke: table and JSON output, exit codes."""

import io
import json

from repro.cli import main

ARGS = ["--scale", "0.01", "--seed", "5"]


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestBenchCacheCli:
    def test_table_output(self):
        code, text = run_cli(ARGS + ["bench-cache", "--queries", "2"])
        assert code == 0
        assert "text-warm-repeat" in text
        assert "qc-resume" in text
        assert "ok:" in text

    def test_json_output(self):
        code, text = run_cli(ARGS + ["bench-cache", "--queries", "2", "--json"])
        assert code == 0
        payload = json.loads(text)  # must be *valid* JSON (no Infinity)
        assert payload["ok"] is True
        labels = {row["label"] for row in payload["rows"]}
        assert {"text-warm-repeat", "ta-resume", "nra-resume",
                "ca-resume", "qc-resume"} <= labels
        for row in payload["rows"]:
            assert row["mismatches"] == 0
            if row["charged_warm"] == 0:
                assert row["reduction"] is None

    def test_resume_n_defaults_above_n(self):
        code, text = run_cli(ARGS + ["bench-cache", "--queries", "2",
                                     "--n", "5", "--resume-n", "3", "--json"])
        assert code == 0
        payload = json.loads(text)
        assert payload["resume_n"] > payload["n"]
