"""Warm-equals-cold conformance through the full database facade.

The cache's contract is *invisibility*: with `cache_enabled=True`,
every answer — warm repeat, prefix serve, resumed deepening, parallel
warm serve — must be element-for-element identical (ids, scores, tie
order) to the answer a cold database gives, for every engine and shard
count.  These suites check the contract end to end, plus the epoch
invalidation that keeps it true across corpus mutations.
"""

import numpy as np
import pytest

from repro.core import DatabaseConfig, MMDatabase
from repro.mm import FeatureSpace
from repro.workloads import SyntheticCollection, generate_queries, trec

SCALE = 0.02
SHARD_COUNTS = [1, 2, 4, 7]
ENGINES = ["fa", "ta", "nra", "ca"]
DIMS = 6


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection.generate(trec.ft_like(scale=SCALE, seed=21))


@pytest.fixture(scope="module")
def features(collection):
    rng = np.random.default_rng(22)
    return [FeatureSpace("conf_a", rng.random((collection.n_docs, DIMS))),
            FeatureSpace("conf_b", rng.random((collection.n_docs, DIMS)))]


@pytest.fixture(scope="module")
def tid_lists(collection):
    batch = generate_queries(collection, n_queries=6, terms_range=(2, 5),
                             rare_bias=2.0, seed=23)
    return [list(q.term_ids) for q in batch]


@pytest.fixture(scope="module")
def feature_queries():
    rng = np.random.default_rng(24)
    return [{"conf_a": rng.random(DIMS), "conf_b": rng.random(DIMS)}
            for _ in range(3)]


def build(collection, features, cache=True, fragment=False):
    db = MMDatabase.from_collection(
        collection, DatabaseConfig(cache_enabled=cache))
    for space in features:
        db.add_feature_space(space)
    if fragment:
        db.fragment()
    return db


def same_answer(a, b):
    return a.doc_ids == b.doc_ids and a.scores == b.scores


class TestTextWarmEqualsCold:
    @pytest.mark.parametrize("strategy", [None, "unfragmented", "unsafe-small",
                                          "indexed", "safe-switch"])
    def test_warm_repeat(self, collection, features, tid_lists, strategy):
        db = build(collection, features, fragment=True)
        for tids in tid_lists:
            cold = db.search(tids, n=10, strategy=strategy).result
            warm = db.search(tids, n=10, strategy=strategy).result
            assert same_answer(cold, warm), (strategy, tids)

    def test_prefix_serve_matches_shallow_cold(self, collection, features, tid_lists):
        """A cached top-100 must answer top-10 exactly as a cold
        top-10 would (prefix-safety of the exact strategies)."""
        reference = build(collection, features, cache=False)
        db = build(collection, features)
        for tids in tid_lists:
            db.search(tids, n=100)
            served = db.search(tids, n=10).result
            cold = reference.search(tids, n=10).result
            assert same_answer(served, cold), tids
            assert served.stats.get("cache") in ("hit", "hit-prefix", "hit-complete")

    def test_epoch_bump_invalidates(self, collection, features, tid_lists):
        db = build(collection, features)
        db.search(tid_lists[0], n=10)
        assert len(db.cache) > 0
        before = db.epoch
        db.fragment()
        assert db.epoch > before
        assert len(db.cache) == 0
        # post-mutation answers still match a cold database's
        reference = build(collection, features, cache=False, fragment=True)
        warm = db.search(tid_lists[0], n=10, strategy="indexed").result
        cold = reference.search(tid_lists[0], n=10, strategy="indexed").result
        assert same_answer(warm, cold)


class TestFeatureWarmEqualsCold:
    @pytest.mark.parametrize("algorithm", ENGINES)
    def test_warm_repeat(self, collection, features, feature_queries, algorithm):
        db = build(collection, features)
        for fq in feature_queries:
            cold = db.feature_search(fq, n=10, algorithm=algorithm).result
            warm = db.feature_search(fq, n=10, algorithm=algorithm).result
            assert same_answer(cold, warm), algorithm
            assert "cache" in warm.stats

    @pytest.mark.parametrize("algorithm", ENGINES)
    def test_resumed_deepening_equals_cold(self, collection, features,
                                           feature_queries, algorithm):
        """top-10 then top-100 on a cached database must equal a
        single cold top-100 (frontier resume / access replay)."""
        reference = build(collection, features, cache=False)
        db = build(collection, features)
        for fq in feature_queries:
            db.feature_search(fq, n=10, algorithm=algorithm)
            deep = db.feature_search(fq, n=100, algorithm=algorithm).result
            cold = reference.feature_search(fq, n=100, algorithm=algorithm).result
            assert same_answer(deep, cold), algorithm

    def test_combined_search_warm_repeat(self, collection, features,
                                         tid_lists, feature_queries):
        db = build(collection, features)
        cold = db.combined_search(tid_lists[0], feature_queries[0], n=10).result
        warm = db.combined_search(tid_lists[0], feature_queries[0], n=10).result
        assert same_answer(cold, warm)
        assert "cache" in warm.stats


class TestParallelWarmEqualsCold:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_warm_repeat_matches_serial(self, collection, features,
                                        tid_lists, shards):
        reference = build(collection, features, cache=False)
        db = build(collection, features)
        db.shard(shards)
        for tids in tid_lists:
            cold = db.search(tids, n=10, strategy="parallel").result
            warm = db.search(tids, n=10, strategy="parallel").result
            serial = reference.search(tids, n=10).result
            assert same_answer(cold, serial), shards
            assert same_answer(warm, serial), shards

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_deepening_stays_certified_and_exact(self, collection, features,
                                                 tid_lists, shards):
        reference = build(collection, features, cache=False)
        db = build(collection, features)
        db.shard(shards)
        for tids in tid_lists[:3]:
            db.search(tids, n=10, strategy="parallel")
            deep = db.search(tids, n=100, strategy="parallel").result
            serial = reference.search(tids, n=100).result
            assert same_answer(deep, serial), shards
            assert deep.certified
