"""The cache key discipline: fingerprints must separate everything
that can change an answer, and nothing else."""

import dataclasses

import numpy as np

from repro.cache import QueryFingerprint, sources_fingerprint, text_fingerprint
from repro.cache.fingerprint import source_token
from repro.mm import ArraySource


def base():
    return QueryFingerprint(kind="text", terms=(1, 2, 3), aggregate="bm25",
                            fragments=(0, 100), shard_layout=(), epoch=4,
                            extra=("strategy", "naive"))


class TestDigest:
    def test_deterministic(self):
        assert base().digest() == base().digest()

    def test_every_field_separates(self):
        reference = base().digest()
        variants = [
            dataclasses.replace(base(), kind="feature"),
            dataclasses.replace(base(), terms=(1, 2)),
            dataclasses.replace(base(), aggregate="sum"),
            dataclasses.replace(base(), fragments=(0, 50)),
            dataclasses.replace(base(), shard_layout=(0, 10)),
            dataclasses.replace(base(), epoch=5),
            dataclasses.replace(base(), extra=("strategy", "indexed")),
        ]
        digests = {fp.digest() for fp in variants}
        assert reference not in digests
        assert len(digests) == len(variants)

    def test_describe_roundtrip(self):
        d = base().describe()
        assert d["digest"] == base().digest()
        assert d["terms"] == [1, 2, 3]
        assert d["epoch"] == 4


class TestTextFingerprint:
    def test_term_order_irrelevant(self):
        a = text_fingerprint([5, 1, 9], "bm25", 0)
        b = text_fingerprint([9, 5, 1], "bm25", 0)
        assert a.digest() == b.digest()

    def test_duplicates_kept(self):
        """A repeated term contributes twice to the score — not the
        same query as the deduplicated one."""
        a = text_fingerprint([1, 1, 2], "bm25", 0)
        b = text_fingerprint([1, 2], "bm25", 0)
        assert a.digest() != b.digest()

    def test_epoch_and_strategy_separate(self):
        a = text_fingerprint([1], "bm25", 0)
        assert a.digest() != text_fingerprint([1], "bm25", 1).digest()
        assert a.digest() != text_fingerprint([1], "bm25", 0, strategy="indexed").digest()


class TestSourceTokens:
    def test_array_sources_content_addressed(self):
        grades = np.linspace(0, 1, 10)
        a = ArraySource(grades.copy(), name="f")
        b = ArraySource(grades.copy(), name="f")
        c = ArraySource(grades + 0.001, name="f")
        assert source_token(a) == source_token(b)
        assert source_token(a) != source_token(c)

    def test_posting_sources_keyed_by_term_and_model(self):
        class FakePostings:
            tid = 7

            class model:
                name = "bm25"

        assert source_token(FakePostings()) == ("term", 7, "bm25")

    def test_source_order_preserved(self):
        """Weighted aggregates are not symmetric: source order is
        part of the key."""
        x = ArraySource(np.array([0.1, 0.2]), name="x")
        y = ArraySource(np.array([0.3, 0.4]), name="y")
        a = sources_fingerprint([x, y], "sum", 0, "ta")
        b = sources_fingerprint([y, x], "sum", 0, "ta")
        assert a.digest() != b.digest()

    def test_algorithm_and_kind_separate(self):
        x = ArraySource(np.array([0.1, 0.2]), name="x")
        a = sources_fingerprint([x], "sum", 0, "ta")
        assert a.digest() != sources_fingerprint([x], "sum", 0, "nra").digest()
        assert a.digest() != sources_fingerprint([x], "sum", 0, "ta", kind="combined").digest()
