"""Serving discipline of :class:`repro.cache.manager.QueryCache`:
exact hits, complete and prefix serves, demotion, LRU eviction,
epoch garbage collection and counter lifecycle."""

from repro.cache import QueryCache, QueryFingerprint
from repro.obs import metrics
from repro.topn.result import RankedItem, TopNResult


def fp(terms=(1,), epoch=0, **kw):
    return QueryFingerprint(kind="text", terms=tuple(terms), aggregate="bm25",
                            epoch=epoch, **kw)


def result(n, total=None, strategy="naive"):
    total = n if total is None else total
    items = [RankedItem(i, 1.0 - i / 100) for i in range(total)]
    return TopNResult(items=items, n_requested=n, strategy=strategy, safe=True)


class TestServeModes:
    def test_exact_hit(self):
        cache = QueryCache()
        cache.store(fp(), 10, result(10))
        served, entry = cache.lookup(fp(), 10)
        assert served is not None and entry is not None
        assert served.doc_ids == result(10).doc_ids
        assert served.stats["cache"] == "hit"
        assert cache.counters()["hits"] == 1

    def test_miss_counted_and_entry_exposed(self):
        cache = QueryCache()
        cache.store(fp(), 10, result(10))
        served, entry = cache.lookup(fp(), 50)  # deeper than cached
        assert served is None
        assert entry is not None  # the resume opportunity
        assert cache.counters()["misses"] == 1

    def test_prefix_serve_from_deeper_entry(self):
        cache = QueryCache()
        cache.store(fp(), 100, result(100))
        served, _ = cache.lookup(fp(), 10)
        assert served is not None
        assert served.doc_ids == [item.obj_id for item in result(100).items[:10]]
        assert served.stats["cache"] == "hit-prefix"
        assert served.stats["cache_source_n"] == 100
        assert served.n_requested == 10

    def test_smallest_covering_prefix_preferred(self):
        cache = QueryCache()
        cache.store(fp(), 100, result(100))
        cache.store(fp(), 20, result(20))
        served, _ = cache.lookup(fp(), 15)
        assert served.stats["cache_source_n"] == 20

    def test_non_prefix_safe_serves_exact_only(self):
        cache = QueryCache()
        cache.store(fp(), 100, result(100, strategy="nra"), prefix_safe=False)
        assert cache.lookup(fp(), 100)[0] is not None
        assert cache.lookup(fp(), 10)[0] is None

    def test_demotion_poisons_prefix_serving(self):
        cache = QueryCache()
        cache.store(fp(), 100, result(100))
        cache.store(fp(), 50, result(50), prefix_safe=False)
        # the whole entry is demoted: exact depths only now
        assert cache.lookup(fp(), 100)[0] is not None
        assert cache.lookup(fp(), 50)[0] is not None
        assert cache.lookup(fp(), 10)[0] is None

    def test_complete_entry_serves_any_depth(self):
        # 7 items for a top-10 request: the corpus is exhausted
        cache = QueryCache()
        cache.store(fp(), 10, result(10, total=7), complete=True)
        deep, _ = cache.lookup(fp(), 500)
        assert deep is not None
        assert len(deep.items) == 7
        assert deep.stats["cache"] == "hit-complete"

    def test_distinct_fingerprints_do_not_collide(self):
        cache = QueryCache()
        cache.store(fp(terms=(1,)), 10, result(10))
        assert cache.lookup(fp(terms=(2,)), 10)[0] is None
        assert cache.lookup(fp(terms=(1,), epoch=1), 10)[0] is None


class TestEvictionAndInvalidation:
    def test_lru_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.store(fp(terms=(1,)), 5, result(5))
        cache.store(fp(terms=(2,)), 5, result(5))
        cache.lookup(fp(terms=(1,)), 5)  # refresh 1: makes 2 the LRU victim
        cache.store(fp(terms=(3,)), 5, result(5))
        assert len(cache) == 2
        assert cache.lookup(fp(terms=(1,)), 5)[0] is not None
        assert cache.lookup(fp(terms=(2,)), 5)[0] is None
        assert cache.counters()["evictions"] == 1

    def test_invalidate_below_epoch(self):
        cache = QueryCache()
        cache.store(fp(epoch=0), 5, result(5))
        cache.store(fp(terms=(9,), epoch=1), 5, result(5))
        dropped = cache.invalidate_below_epoch(1)
        assert dropped == 1
        assert len(cache) == 1
        assert cache.counters()["invalidations"] == 1
        assert cache.lookup(fp(terms=(9,), epoch=1), 5)[0] is not None

    def test_clear(self):
        cache = QueryCache()
        cache.store(fp(), 5, result(5))
        cache.clear()
        assert len(cache) == 0


class TestCounters:
    def test_reset_counters_keeps_data(self):
        cache = QueryCache()
        cache.store(fp(), 5, result(5))
        cache.lookup(fp(), 5)
        cache.note_resume()
        cache.reset_counters()
        counters = cache.counters()
        assert counters["hits"] == counters["stores"] == counters["resumes"] == 0
        assert counters["entries"] == 1
        assert cache.lookup(fp(), 5)[0] is not None

    def test_metrics_reset_zeroes_cache_counters(self):
        """`metrics.reset()` (and therefore `repro profile`) must zero
        live caches through the registered reset hook."""
        cache = QueryCache()
        cache.store(fp(), 5, result(5))
        cache.lookup(fp(), 5)
        assert cache.counters()["hits"] == 1
        metrics.reset()
        assert cache.counters()["hits"] == 0
        assert cache.counters()["stores"] == 0

    def test_entry_carries_payloads(self):
        cache = QueryCache()
        entry = cache.store(fp(), 5, result(5), resume="frontier",
                            replay_logs=["log"], bounds="bounds",
                            hints={"depth": 12})
        assert entry.resume == "frontier"
        assert entry.replay_logs == ["log"]
        assert entry.bounds == "bounds"
        assert entry.hints["depth"] == 12
        assert entry.best_n() == 5
