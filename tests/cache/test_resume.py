"""Resume equivalence: a resumed top-``m`` must equal a cold top-``m``
element for element (ids, scores, tie order), for every mechanism —
TA frontier, NRA/CA access replay, quit/continue accumulator — plus
the replay-log and coordinator-bound primitives they build on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CoordinatorBounds,
    ReplayLog,
    ShardBoundInfo,
    replayed_total,
    wrap_sources,
)
from repro.errors import TopNError
from repro.mm import ArraySource
from repro.storage import CostCounter
from repro.topn import SUM, nra_topn, quit_continue_topn, threshold_topn
from repro.topn.ca import combined_topn
from repro.workloads import SyntheticCollection, generate_queries, trec


def make_sources(matrix):
    matrix = np.asarray(matrix, dtype=np.float64)
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(matrix.shape[1])]


def same_answer(a, b):
    return a.doc_ids == b.doc_ids and a.scores == b.scores


class TestTAFrontier:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1000), n1=st.integers(1, 8), extra=st.integers(0, 20),
           objects=st.integers(1, 60))
    def test_resumed_equals_cold(self, seed, n1, extra, objects):
        matrix = np.random.default_rng(seed).random((objects, 3))
        n2 = n1 + extra
        shallow = threshold_topn(make_sources(matrix), n1, SUM, capture_state=True)
        state = shallow.stats["resume_state"]
        resumed = threshold_topn(make_sources(matrix), n2, SUM, resume_from=state)
        cold = threshold_topn(make_sources(matrix), n2, SUM)
        assert same_answer(resumed, cold)

    def test_resume_charges_less(self):
        matrix = np.random.default_rng(1).random((500, 3))
        shallow = threshold_topn(make_sources(matrix), 5, SUM, capture_state=True)
        state = shallow.stats["resume_state"]
        with CostCounter.activate() as cold_cost:
            threshold_topn(make_sources(matrix), 50, SUM)
        with CostCounter.activate() as warm_cost:
            threshold_topn(make_sources(matrix), 50, SUM, resume_from=state)
        assert (warm_cost.sorted_accesses + warm_cost.random_accesses) < \
            (cold_cost.sorted_accesses + cold_cost.random_accesses)

    def test_mismatched_state_rejected(self):
        matrix = np.random.default_rng(2).random((50, 3))
        state = threshold_topn(make_sources(matrix), 5, SUM,
                               capture_state=True).stats["resume_state"]
        with pytest.raises(TopNError):  # arity mismatch
            threshold_topn(make_sources(matrix[:, :2]), 10, SUM, resume_from=state)
        with pytest.raises(TopNError):  # resume target below the frontier
            threshold_topn(make_sources(matrix), 2, SUM, resume_from=state)


class TestAccessReplay:
    @pytest.mark.parametrize("engine", [nra_topn, combined_topn])
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), n1=st.integers(1, 6), extra=st.integers(0, 15),
           objects=st.integers(1, 50))
    def test_replayed_equals_cold(self, engine, seed, n1, extra, objects):
        """Replay re-executes the cold algorithm verbatim on memoized
        sources: the deep answer must be identical to cold-deep."""
        matrix = np.random.default_rng(seed).random((objects, 2))
        n2 = n1 + extra
        logs = tuple(ReplayLog() for _ in range(2))
        engine(wrap_sources(make_sources(matrix), logs), n1, SUM)
        wrapped = wrap_sources(make_sources(matrix), logs)
        deep = engine(wrapped, n2, SUM)
        cold = engine(make_sources(matrix), n2, SUM)
        assert same_answer(deep, cold)

    def test_replay_saves_accesses(self):
        matrix = np.random.default_rng(3).random((400, 3))
        logs = tuple(ReplayLog() for _ in range(3))
        nra_topn(wrap_sources(make_sources(matrix), logs), 10, SUM)
        with CostCounter.activate() as cold_cost:
            nra_topn(make_sources(matrix), 50, SUM)
        wrapped = wrap_sources(make_sources(matrix), logs)
        with CostCounter.activate() as warm_cost:
            nra_topn(wrapped, 50, SUM)
        assert replayed_total(wrapped) > 0
        assert warm_cost.sorted_accesses < cold_cost.sorted_accesses

    def test_log_mismatch_rejected(self):
        with pytest.raises(TopNError):
            wrap_sources(make_sources(np.zeros((5, 2))), (ReplayLog(),))

    def test_log_primitives(self):
        log = ReplayLog(token=("term", 1, "bm25"))
        assert log.sorted_at(0) is None
        log.record_sorted(0, 42, 0.9)
        log.record_sorted(0, 99, 0.1)  # duplicate rank: first write wins
        assert log.sorted_at(0) == (42, 0.9)
        assert log.depth() == 1
        log.record_random(7, 0.5)
        assert log.random_at(7) == 0.5
        assert not log.known_exhausted(3)
        log.record_exhausted(3)
        assert log.known_exhausted(3) and log.known_exhausted(10)
        assert log.known_live(0) and not log.known_live(5)


class TestQuitContinue:
    @pytest.fixture(scope="class")
    def workload(self):
        collection = SyntheticCollection.generate(trec.ft_like(scale=0.02, seed=11))
        from repro.core import MMDatabase

        db = MMDatabase.from_collection(collection)
        batch = generate_queries(collection, n_queries=4, terms_range=(2, 5), seed=12)
        return db, [list(q.term_ids) for q in batch]

    def test_accumulator_resume_equals_cold(self, workload):
        db, tid_lists = workload
        for tids in tid_lists:
            shallow = quit_continue_topn(db.index, tids, db.model, 5,
                                         strategy="continue", capture_state=True)
            state = shallow.stats["resume_state"]
            resumed = quit_continue_topn(db.index, tids, db.model, 50,
                                         strategy="continue", resume_from=state)
            cold = quit_continue_topn(db.index, tids, db.model, 50,
                                      strategy="continue")
            assert same_answer(resumed, cold)

    def test_resume_is_cheaper(self, workload):
        db, tid_lists = workload
        states = []
        for tids in tid_lists:
            shallow = quit_continue_topn(db.index, tids, db.model, 5,
                                         strategy="continue", capture_state=True)
            states.append(shallow.stats["resume_state"])
        with CostCounter.activate() as cold_cost:
            for tids in tid_lists:
                quit_continue_topn(db.index, tids, db.model, 50, strategy="continue")
        with CostCounter.activate() as warm_cost:
            for tids, state in zip(tid_lists, states):
                quit_continue_topn(db.index, tids, db.model, 50,
                                   strategy="continue", resume_from=state)
        assert warm_cost.tuples_read < cold_cost.tuples_read


class TestCoordinatorBounds:
    def test_threshold_bound_covers_only_deeper_caches(self):
        bounds = CoordinatorBounds()
        bounds.record(10, (-0.8, 3), [])
        bounds.record(50, (-0.5, 9), [])
        # n=10 can use both (n_c >= 10): the tightest is the smaller key
        assert bounds.threshold_bound(10) == (-0.8, 3)
        assert bounds.threshold_bound(50) == (-0.5, 9)
        # deeper than anything cached: no sound bound
        assert bounds.threshold_bound(51) is None

    def test_prunable_shards(self):
        bounds = CoordinatorBounds()
        infos = [
            ShardBoundInfo(0, top_key=(-0.9, 1), candidates=5, exhausted=False),
            ShardBoundInfo(1, top_key=(-0.3, 2), candidates=5, exhausted=False),
            ShardBoundInfo(2, top_key=None, candidates=0, exhausted=True),
        ]
        bounds.record(10, (-0.5, 7), infos)
        prunable = bounds.prunable_shards(10)
        # shard 1's best key (-0.3) is worse than the bound; shard 2 is empty
        assert prunable == {1, 2}
        # deeper than the cache: only the known-empty shard is safe to skip
        assert bounds.prunable_shards(99) == {2}

    def test_exhausted_observation_never_downgraded(self):
        bounds = CoordinatorBounds()
        ranking = ((1, 0.9), (2, 0.5))
        bounds.record(5, None, [ShardBoundInfo(0, (-0.9, 1), 2, True, ranking)])
        bounds.record(5, None, [ShardBoundInfo(0, (-0.9, 1), 2, False)])
        assert bounds.complete_ranking(0) == ranking

    def test_snapshot_is_jsonable(self):
        import json

        bounds = CoordinatorBounds()
        bounds.record(5, (-0.7, 4),
                      [ShardBoundInfo(0, (-0.9, 1), 3, True, ((1, 0.9),))])
        snapshot = bounds.snapshot()
        json.dumps(snapshot)
        assert snapshot["shards"][0]["has_ranking"]
