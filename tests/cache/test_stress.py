"""Two-thread cache stress: concurrent lookups, stores and resumes on
one shared cache must stay linearizable and race-free.

CI runs this file again with ``REPRO_SANITIZE=1`` so the runtime race
sanitizer checks every shared-state access against the ``repro.sync``
declarations — zero violations is part of the cache acceptance bar.
"""

import threading

import numpy as np

from repro.cache import QueryCache, QueryFingerprint, ReplayLog, wrap_sources
from repro.mm import ArraySource
from repro.topn import SUM, nra_topn
from repro.topn.result import RankedItem, TopNResult

THREADS = 2
ROUNDS = 60


def fp(i, epoch=0):
    return QueryFingerprint(kind="text", terms=(i,), aggregate="bm25", epoch=epoch)


def result(n):
    return TopNResult(items=[RankedItem(i, 1.0 - i / 100) for i in range(n)],
                      n_requested=n, strategy="naive", safe=True)


class TestQueryCacheStress:
    def test_concurrent_lookup_store_evict(self):
        cache = QueryCache(max_entries=8)
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(tid):
            try:
                barrier.wait()
                for round_no in range(ROUNDS):
                    key = (tid * ROUNDS + round_no) % 12
                    cache.store(fp(key), 10, result(10))
                    served, entry = cache.lookup(fp(key), 5)
                    if served is not None and served.doc_ids != [0, 1, 2, 3, 4]:
                        errors.append(("bad prefix", tid, round_no))
                    cache.note_resume()
                    if round_no % 10 == 0:
                        cache.invalidate_below_epoch(0)  # no-op, takes the lock
            except Exception as exc:  # noqa: BLE001 - surface to the test
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        counters = cache.counters()
        assert counters["stores"] == THREADS * ROUNDS
        assert counters["resumes"] == THREADS * ROUNDS
        assert counters["entries"] <= 8

    def test_concurrent_replay_log_sharing(self):
        """Two threads resuming through one shared replay log: both
        must get exactly the cold answer."""
        matrix = np.random.default_rng(31).random((200, 2))

        def sources():
            return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(2)]

        cold = nra_topn(sources(), 25, SUM)
        logs = tuple(ReplayLog() for _ in range(2))
        nra_topn(wrap_sources(sources(), logs), 5, SUM)  # seed the prefix
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(tid):
            try:
                barrier.wait()
                for _ in range(10):
                    deep = nra_topn(wrap_sources(sources(), logs), 25, SUM)
                    if deep.doc_ids != cold.doc_ids or deep.scores != cold.scores:
                        errors.append(("diverged", tid))
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_no_sanitizer_violations_recorded(self):
        """When the runtime sanitizer is armed (CI: REPRO_SANITIZE=1),
        the stress runs above must have recorded zero violations."""
        from repro import sync

        if sync.sanitizer_active():
            assert sync.violations() == ()
