"""Deliberately broken concurrency fixtures (the seeded-race suite).

Each class below violates the :mod:`repro.sync` declaration protocol
in exactly one way.  They live under ``tests/`` (never inside
``src/repro``) so that ``repro check`` over the package stays clean
while the regression tests assert that:

* the static analyzer flags each class with its exact MOA7xx code
  (``test_races.py``), and
* the runtime sanitizer catches the same bug dynamically under the
  thread executor (``test_sanitizer.py``).

``CleanCounter`` is the control: correctly declared and locked, it
must produce *no* findings either way.
"""

from __future__ import annotations

from repro.sync import declares_shared_state, guarded_by, make_lock


@declares_shared_state
class UnguardedCounter:
    """MOA701: writes declared shared state without holding its lock."""

    SHARED_STATE = {"count": "_lock"}

    def __init__(self) -> None:
        self._lock = make_lock("fixture.counter")
        self.count = 0

    def bump(self) -> None:
        self.count += 1  # no lock: the classic lost-update race

    def safe_bump(self) -> None:
        with self._lock:
            self.count += 1

    @guarded_by("_lock")
    def add_locked(self, n: int) -> None:
        self.count += n


@declares_shared_state
class LockOrderInversion:
    """MOA703: two locks acquired in opposite orders on two paths."""

    SHARED_STATE = {"value": "_lock_a"}

    def __init__(self) -> None:
        self._lock_a = make_lock("fixture.order.a")
        self._lock_b = make_lock("fixture.order.b")
        self.value = 0

    def forward(self) -> None:
        with self._lock_a:
            with self._lock_b:
                self.value += 1

    def backward(self) -> None:
        with self._lock_b:
            with self._lock_a:
                self.value += 1


@declares_shared_state
class WriteAfterSealPool:
    """MOA704: mutates sealed state without consulting the seal flag
    (the coordinator-merge-pool bug class)."""

    SHARED_STATE = {"_items": "_lock", "sealed": "_lock"}
    SEALED_BY = {"_items": "sealed"}

    def __init__(self) -> None:
        self._lock = make_lock("fixture.pool")
        self._items: dict[int, object] = {}
        self.sealed = False

    def offer(self, key: int, value) -> bool:
        with self._lock:
            if self.sealed:
                return False
            self._items[key] = value
            return True

    def bad_offer(self, key: int, value) -> None:
        with self._lock:
            self._items[key] = value  # never checks self.sealed

    def seal(self) -> None:
        with self._lock:
            self.sealed = True


class UndeclaredShared:
    """MOA702: lock-owning class mutating state with no declaration."""

    def __init__(self) -> None:
        self._lock = make_lock("fixture.undeclared")
        self.total = 0

    def add(self, n: int) -> None:
        with self._lock:
            self.total += n


@declares_shared_state
class BadDeclaration:
    """MOA705: the declaration names a lock that does not exist."""

    SHARED_STATE = {"items": "_missing_lock"}

    def __init__(self) -> None:
        self.items: list[object] = []

    def push(self, value) -> None:
        self.items.append(value)


@declares_shared_state
class CleanCounter:
    """Control: correctly declared and locked — zero findings."""

    SHARED_STATE = {"count": "_lock"}

    def __init__(self) -> None:
        self._lock = make_lock("fixture.clean")
        self.count = 0

    def bump(self, n: int = 1) -> None:
        with self._lock:
            self._add(n)

    @guarded_by("_lock")
    def _add(self, n: int) -> None:
        self.count += n
