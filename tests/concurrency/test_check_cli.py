"""``repro check`` and the shared lint/check CLI diagnostics contract."""

import io
import json
from pathlib import Path

from repro.cli import main

FIXTURES = str(Path(__file__).parent / "fixtures.py")

#: the shared --json payload keys of the CLI diagnostics contract
CONTRACT_KEYS = {"command", "reports", "max_severity", "exit_code"}


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheckCommand:
    def test_package_is_clean(self):
        code, output = run_cli("check")
        assert code == 0
        assert "clean" in output
        assert output.startswith("check ")

    def test_fixtures_exit_nonzero_with_codes(self):
        code, output = run_cli("check", FIXTURES)
        assert code == 1
        for expected in ("MOA701", "MOA702", "MOA703", "MOA704", "MOA705"):
            assert expected in output
        assert "fixtures.py:" in output

    def test_json_payload_follows_the_contract(self):
        code, output = run_cli("check", "--json", FIXTURES)
        assert code == 1
        payload = json.loads(output)
        assert CONTRACT_KEYS <= set(payload)
        assert payload["command"] == "check"
        assert payload["exit_code"] == 1
        assert payload["max_severity"] == "error"
        diagnostics = payload["reports"][0]["diagnostics"]
        assert all("site" in d and d["location"] == d["site"] for d in diagnostics)

    def test_json_clean_package_payload(self):
        code, output = run_cli("check", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["exit_code"] == 0
        assert payload["command"] == "check"

    def test_effects_summary_included_on_request(self):
        code, output = run_cli("check", "--json", "--effects", FIXTURES)
        assert code == 1
        payload = json.loads(output)
        summary = payload["effects"]["fixtures"]
        assert "UnguardedCounter" in summary["classes"]
        assert summary["classes"]["UnguardedCounter"]["declared"] is True

    def test_unreadable_path_is_usage_error(self):
        code, output = run_cli("check", "/nonexistent/module.py")
        assert code == 2
        assert "cannot read" in output
        assert "Traceback" not in output

    def test_unparseable_source_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        code, output = run_cli("check", str(bad))
        assert code == 2
        assert "cannot parse" in output


class TestSharedContract:
    def test_lint_json_payload_follows_the_same_contract(self):
        code, output = run_cli("lint", "--json", "--expr", "topn([3, 1, 2], 2)")
        assert code == 0
        payload = json.loads(output)
        assert CONTRACT_KEYS <= set(payload)
        assert payload["command"] == "lint"
        assert payload["exit_code"] == 0
        assert payload["reports"][0]["summary"] == "clean"

    def test_lint_and_check_report_schemas_match(self):
        _, lint_out = run_cli("lint", "--json", "--expr",
                              "slice(projecttobag([1, 2]), 0, 1)")
        _, check_out = run_cli("check", "--json", FIXTURES)
        lint_payload = json.loads(lint_out)
        check_payload = json.loads(check_out)
        lint_report = lint_payload["reports"][0]
        check_report = check_payload["reports"][0]
        assert set(lint_report) == set(check_report)
        lint_diag = lint_report["diagnostics"][0]
        check_diag = check_report["diagnostics"][0]
        # the shared core of every diagnostic dict
        for key in ("code", "severity", "message", "location", "expr"):
            assert key in lint_diag
            assert key in check_diag

    def test_both_commands_report_usage_as_2(self):
        lint_code, _ = run_cli("lint")
        check_code, _ = run_cli("check", "/nonexistent/module.py")
        assert lint_code == check_code == 2
