"""Unit tests for the AST effect-inference engine."""

import textwrap

from repro.analysis.concurrency import (
    infer_module_effects,
    infer_package_effects,
    reachable_modules,
)


def infer(tmp_path, source, name="mod"):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return infer_module_effects(path, name)


class TestSelfWrites:
    def test_assign_augassign_subscript_and_mutators(self, tmp_path):
        module = infer(tmp_path, """
            class C:
                def method(self):
                    self.a = 1
                    self.b += 2
                    self.c[3] = 4
                    self.d.append(5)
        """)
        fn = module.classes["C"].methods["method"]
        kinds = {w.attr: w.kind for w in fn.self_writes}
        assert kinds == {"a": "assign", "b": "augassign",
                        "c": "subscript", "d": "mutate:append"}

    def test_lockset_tracked_through_with_blocks(self, tmp_path):
        module = infer(tmp_path, """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def locked(self):
                    with self._lock:
                        self.x = 1
                    self.y = 2
        """)
        fn = module.classes["C"].methods["locked"]
        locks = {w.attr: set(w.locks) for w in fn.self_writes}
        assert locks["x"] == {"_lock"}
        assert locks["y"] == set()

    def test_guarded_by_decorator_preholds_the_lock(self, tmp_path):
        module = infer(tmp_path, """
            from repro.sync import guarded_by, make_lock

            class C:
                def __init__(self):
                    self._lock = make_lock("c")

                @guarded_by("_lock")
                def helper(self):
                    self.x = 1
        """)
        fn = module.classes["C"].methods["helper"]
        assert fn.guarded_by == "_lock"
        assert set(fn.self_writes[0].locks) == {"_lock"}

    def test_reads_are_collected(self, tmp_path):
        module = infer(tmp_path, """
            class C:
                def method(self):
                    if self.sealed:
                        return None
                    return self.items
        """)
        fn = module.classes["C"].methods["method"]
        assert fn.self_reads == {"sealed", "items"}


class TestClassDeclarations:
    def test_shared_state_and_sealed_by_literals(self, tmp_path):
        module = infer(tmp_path, """
            class C:
                SHARED_STATE = {"x": "_lock", "y": "<config>"}
                SEALED_BY = {"x": "sealed"}
        """)
        cls = module.classes["C"]
        assert cls.shared_state == {"x": "_lock", "y": "<config>"}
        assert cls.sealed_by == {"x": "sealed"}
        assert cls.declared

    def test_lock_attrs_detected_for_all_factories(self, tmp_path):
        module = infer(tmp_path, """
            import threading
            from dataclasses import dataclass, field
            from repro.sync import make_lock

            @dataclass
            class D:
                _lock: object = field(default_factory=lambda: make_lock("d"))

            class C:
                _class_lock = threading.RLock()

                def __init__(self):
                    self._lock = threading.Lock()
                    self._made_lock = make_lock("c")
        """)
        assert module.classes["D"].lock_attrs == {"_lock"}
        assert module.classes["C"].lock_attrs == {
            "_class_lock", "_lock", "_made_lock"}

    def test_init_writes_recorded_as_construction(self, tmp_path):
        module = infer(tmp_path, """
            class C:
                def __init__(self):
                    self.a = 1

                def later(self):
                    self.b = 2
        """)
        cls = module.classes["C"]
        assert cls.init_attrs == {"a"}
        assert set(cls.noninit_writes()) == {"b"}


class TestModuleLevel:
    def test_global_rebinding_and_container_mutation(self, tmp_path):
        module = infer(tmp_path, """
            _cache = {}
            _count = 0

            def rebind():
                global _count
                _count += 1

            def mutate():
                _cache["k"] = 1
                _cache.update({})

            def shadowed():
                _cache = {}
                _cache["k"] = 1
        """)
        writes = {(fn.name, w.attr)
                  for fn in module.functions.values() for w in fn.global_writes}
        assert ("rebind", "_count") in writes
        assert ("mutate", "_cache") in writes
        assert ("shadowed", "_cache") not in writes

    def test_thread_locals_and_singletons(self, tmp_path):
        module = infer(tmp_path, """
            import threading

            class Pool:
                pass

            _local = threading.local()
            _pool = Pool()
        """)
        assert module.thread_locals == {"_local"}
        assert module.singletons["_pool"] == "Pool"

    def test_spawns_detected(self, tmp_path):
        module = infer(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor

            def go(fn):
                with ThreadPoolExecutor(max_workers=2) as pool:
                    return pool.submit(fn)
        """)
        spawns = module.functions["go"].spawns
        assert any("ThreadPoolExecutor" in s for s in spawns)
        assert any("submit" in s for s in spawns)


class TestPackageInference:
    def test_repro_package_scope_covers_worker_paths(self):
        import repro
        from pathlib import Path

        modules = infer_package_effects(Path(repro.__file__).parent)
        scope = reachable_modules(modules)
        assert "repro.parallel.executor" in scope
        assert "repro.parallel.coordinator" in scope
        assert "repro.storage.buffer" in scope
        assert "repro.obs.metrics" in scope
        assert "repro.obs.tracer" in scope

    def test_real_declarations_visible(self):
        import repro
        from pathlib import Path

        modules = infer_package_effects(Path(repro.__file__).parent)
        buffer = modules["repro.storage.buffer"].classes["BufferManager"]
        assert buffer.shared_state["_policy"] == "_lock"
        assert buffer.shared_state["_pins"] == "_lock"
        assert buffer.lock_attrs == {"_lock"}
        # policies adopt the manager's lock (self._lock = lock): the
        # walker must see the adopted attribute as a lock definition
        lru = modules["repro.storage.policies"].classes["LRUPolicy"]
        assert lru.shared_state["_entries"] == "_lock"
        assert lru.lock_attrs == {"_lock"}
        session = modules["repro.obs.tracer"].classes["TraceSession"]
        assert session.shared_state["roots"] == "<thread-confined>"
        merge = modules["repro.parallel.coordinator"].classes["_MergeState"]
        assert merge.sealed_by == {"_items": "sealed"}
