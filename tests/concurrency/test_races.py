"""The static race analyzer: exact MOA7xx codes on the seeded fixtures
and a clean bill of health for the package itself."""

from pathlib import Path

import pytest

from repro.analysis.concurrency import check_package, check_paths

FIXTURES = Path(__file__).parent / "fixtures.py"


@pytest.fixture(scope="module")
def fixture_report():
    return check_paths([FIXTURES])


def findings(report, code):
    return [d for d in report if d.code == code]


class TestSeededFixtures:
    def test_unguarded_counter_flagged_moa701(self, fixture_report):
        hits = findings(fixture_report, "MOA701")
        assert any("UnguardedCounter" in d.message and "count" in d.message
                   for d in hits)

    def test_lock_order_inversion_flagged_moa703(self, fixture_report):
        hits = findings(fixture_report, "MOA703")
        assert len(hits) == 1
        assert "_lock_a" in hits[0].message and "_lock_b" in hits[0].message

    def test_write_after_seal_flagged_moa704(self, fixture_report):
        hits = findings(fixture_report, "MOA704")
        assert any("bad_offer" in d.message for d in hits)
        # the correct offer() reads the seal flag: not flagged
        assert not any(".offer" in d.message or "offer writes" in d.message
                       for d in hits if "bad_offer" not in d.message)

    def test_undeclared_shared_flagged_moa702(self, fixture_report):
        hits = findings(fixture_report, "MOA702")
        assert any("UndeclaredShared" in d.message for d in hits)

    def test_bad_declaration_flagged_moa705(self, fixture_report):
        hits = findings(fixture_report, "MOA705")
        assert any("_missing_lock" in d.message for d in hits)

    def test_clean_counter_produces_no_findings(self, fixture_report):
        assert not any("CleanCounter" in d.message for d in fixture_report)

    def test_sites_point_into_the_fixture_file(self, fixture_report):
        for diagnostic in fixture_report:
            assert diagnostic.site is not None
            path, _, line = diagnostic.site.rpartition(":")
            assert path.endswith("fixtures.py")
            assert int(line) > 0
        assert fixture_report.has_errors


class TestPackageDiscipline:
    def test_package_is_clean_of_error_severity_findings(self):
        report = check_package()
        errors = [d for d in report if d.severity == "error"]
        assert errors == [], "\n".join(d.render() for d in errors)

    def test_report_renders_and_serializes(self):
        report = check_package()
        assert "check" in report.render_text(label="check")
        payload = report.to_dict()
        assert payload["source"].startswith("package")
