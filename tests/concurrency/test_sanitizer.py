"""The runtime race sanitizer: every seeded race is caught dynamically
under the thread executor, and correctly locked code stays silent."""

import threading

import pytest

from repro import sync
from repro.parallel.executor import ExecutorPool
from repro.storage.buffer import BufferManager

from .fixtures import (
    CleanCounter,
    LockOrderInversion,
    UnguardedCounter,
    WriteAfterSealPool,
)


@pytest.fixture()
def sanitizer():
    sync.install_sanitizer()
    sync.reset_violations()
    try:
        yield
    finally:
        sync.uninstall_sanitizer()


def kinds():
    return {v.kind for v in sync.violations()}


def run_threaded(fns, workers=4):
    with ExecutorPool(workers=workers, kind="thread") as pool:
        outcomes = pool.run_tasks(list(fns))
    assert all(o.status == "done" for o in outcomes)
    return outcomes


class TestDynamicCatches:
    def test_unguarded_write_caught_under_thread_executor(self, sanitizer):
        counter = UnguardedCounter()
        run_threaded([counter.bump for _ in range(8)])
        hits = [v for v in sync.violations() if v.kind == "unguarded-write"]
        assert any(v.where == "UnguardedCounter.count" for v in hits)

    def test_lock_order_inversion_caught(self, sanitizer):
        fixture = LockOrderInversion()
        run_threaded([fixture.forward, fixture.backward], workers=2)
        hits = [v for v in sync.violations() if v.kind == "lock-order"]
        assert hits, "reversed acquisition order was not reported"
        assert "fixture.order" in hits[0].where

    def test_write_after_seal_caught(self, sanitizer):
        pool = WriteAfterSealPool()
        assert pool.offer(1, "a") is True
        pool.seal()
        run_threaded([lambda: pool.bad_offer(2, "b")], workers=1)
        hits = [v for v in sync.violations() if v.kind == "write-after-seal"]
        assert any(v.where == "WriteAfterSealPool._items" for v in hits)

    def test_guarded_by_entry_without_lock_caught(self, sanitizer):
        counter = UnguardedCounter()
        counter.add_locked(3)  # caller never took the lock
        hits = [v for v in sync.violations() if v.kind == "unguarded-call"]
        assert any(v.where == "UnguardedCounter.add_locked" for v in hits)

    def test_thread_confinement_caught(self, sanitizer):
        from repro.obs import tracer

        session = tracer.start_session()
        try:
            tracer.event("owner.touch")  # binds the buffers to this thread
            worker = threading.Thread(target=session.event,
                                      args=("foreign.touch", {}))
            worker.start()
            worker.join()
        finally:
            tracer.stop_session()
        assert "confinement" in kinds()


class TestCleanCodeStaysSilent:
    def test_clean_counter_is_silent(self, sanitizer):
        counter = CleanCounter()
        run_threaded([counter.bump for _ in range(16)])
        assert sync.violations() == ()
        assert counter.count == 16

    def test_correct_seal_discipline_is_silent(self, sanitizer):
        pool = WriteAfterSealPool()
        run_threaded([lambda i=i: pool.offer(i, i) for i in range(8)])
        pool.seal()
        assert pool.offer(99, "late") is False
        assert sync.violations() == ()

    def test_buffer_manager_under_threads_is_silent(self, sanitizer):
        buffer = BufferManager(capacity_pages=8)
        run_threaded([lambda i=i: buffer.request(0, i % 16) for i in range(64)])
        buffer.write(1, 600)
        buffer.evict_segment(1)
        buffer.flush()
        assert sync.violations() == ()
        assert buffer.requests == 64

    def test_metrics_instruments_under_threads_are_silent(self, sanitizer):
        from repro.obs import metrics

        metrics.enable()
        try:
            run_threaded([lambda: metrics.inc("sanitizer.test") for _ in range(32)])
            metrics.observe("sanitizer.histo", 1.5)
            metrics.set_gauge("sanitizer.gauge", 2.0)
            assert sync.violations() == ()
            assert metrics.snapshot()["counters"]["sanitizer.test"] == 32
        finally:
            metrics.disable()
            metrics.reset()


class TestSanitizerLifecycle:
    def test_inactive_by_default_and_free(self):
        assert not sync.sanitizer_active()
        counter = UnguardedCounter()
        counter.bump()  # racy, but nobody is watching
        assert sync.violations() == ()

    def test_install_uninstall_restores_hooks(self):
        original_setattr = UnguardedCounter.__setattr__
        sync.install_sanitizer()
        try:
            assert UnguardedCounter.__setattr__ is not original_setattr
        finally:
            sync.uninstall_sanitizer()
        assert UnguardedCounter.__setattr__ is original_setattr
        assert not sync.sanitizer_active()

    def test_tracked_lock_behaves_as_context_manager(self):
        lock = sync.make_lock("lifecycle")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_violation_renders(self, sanitizer):
        counter = UnguardedCounter()
        counter.bump()
        violation = sync.violations()[0]
        text = violation.render()
        assert "unguarded-write" in text
        assert "UnguardedCounter.count" in text
