"""Satellite stress test: the parallel conformance matrix (shards {2,4,7},
thread executor, concurrent queries) executed under the runtime race
sanitizer.  Zero sanitizer reports, and every certified ranking identical
to the serial reference."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import sync
from repro.core import MMDatabase
from repro.storage.buffer import BufferManager, set_buffer_manager
from repro.workloads import SyntheticCollection, generate_queries, trec

SHARD_MATRIX = (2, 4, 7)
N_QUERIES = 6
TOP_N = 10


@pytest.fixture(scope="module")
def db():
    collection = SyntheticCollection.generate(trec.tiny(seed=13))
    database = MMDatabase.from_collection(collection)
    database.fragment()
    yield database
    database.close()


@pytest.fixture(scope="module")
def queries(db):
    generated = generate_queries(db.collection, n_queries=N_QUERIES,
                                 terms_range=(3, 6), seed=7)
    return [" ".join(db.collection.term_strings[t] for t in q.term_ids)
            for q in generated.queries]


@pytest.fixture(scope="module")
def reference(db, queries):
    """Serial naive rankings, computed once before any sanitized run."""
    return {q: db.search(q, n=TOP_N, strategy="naive") for q in queries}


@pytest.fixture()
def sanitized_buffer():
    """Install the sanitizer and a fresh BufferManager created *under* it,
    so the pool containers are access-recording proxies."""
    sync.install_sanitizer()
    fresh = BufferManager(capacity_pages=16)
    previous = set_buffer_manager(fresh)
    sync.reset_violations()
    try:
        yield
    finally:
        set_buffer_manager(previous)
        sync.uninstall_sanitizer()


@pytest.mark.parametrize("shards", SHARD_MATRIX)
def test_concurrent_parallel_search_is_race_free(db, queries, reference,
                                                shards, sanitized_buffer):
    db.shard(shards)
    with ThreadPoolExecutor(max_workers=4) as outer:
        futures = [(q, outer.submit(db.search, q, n=TOP_N,
                                    strategy="parallel"))
                   for q in queries for _ in range(2)]
        results = [(q, f.result()) for q, f in futures]

    violations = sync.violations()
    assert violations == (), "\n".join(v.render() for v in violations)

    for q, outcome in results:
        expected = reference[q]
        assert outcome.result.doc_ids == expected.result.doc_ids, q
        assert outcome.result.scores == expected.result.scores, q
        assert outcome.result.certified is True, q
        assert outcome.result.stats["shards"] == shards


def test_sanitized_matrix_covers_every_shard_count():
    assert SHARD_MATRIX == (2, 4, 7)
