"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main

SCALE = ["--scale", "0.006", "--seed", "3"]


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_stats(self):
        code, text = run_cli(SCALE + ["stats"])
        assert code == 0
        assert "n_docs" in text
        assert "small_volume_share" in text

    def test_zipf(self):
        code, text = run_cli(SCALE + ["zipf"])
        assert code == 0
        assert "zipf exponent" in text
        assert "95% of volume" in text

    def test_search_known_terms(self):
        # find a real term first via the workload generator
        from repro.workloads import SyntheticCollection, generate_queries, trec

        collection = SyntheticCollection.generate(trec.ft_like(scale=0.006, seed=3))
        query = generate_queries(collection, n_queries=1, seed=4).queries[0]
        terms = [collection.term_strings[t] for t in query.term_ids]
        code, text = run_cli(SCALE + ["search", *terms, "--n", "5",
                                      "--strategy", "indexed"])
        assert code == 0
        assert "strategy=indexed" in text
        assert "doc" in text

    def test_search_unknown_terms(self):
        code, text = run_cli(SCALE + ["search", "zzzznotaterm"])
        assert code == 1
        assert "no results" in text

    def test_experiment_e3(self):
        code, text = run_cli(SCALE + ["experiment", "e3", "--queries", "8"])
        assert code == 0
        assert "data touched reduction" in text
        assert "average-precision drop" in text

    def test_example1(self):
        code, text = run_cli(["example1"])
        assert code == 0
        assert "projecttobag(select(" in text
        assert "[2, 3, 4, 4]" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "example1"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "projecttobag(select(" in proc.stdout
