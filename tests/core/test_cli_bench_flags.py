"""The ``bench-*`` subcommands share one flag vocabulary.

``_add_bench_flags`` is the single definition of ``--queries`` /
``--n`` / ``--json`` for every bench CLI; this snapshot pins each
subcommand's full option set so the shared trio cannot drift apart
flag by flag (and so adding a bench-specific flag is a conscious,
test-visible change)."""

import argparse

from repro.cli import _build_parser

#: every flag each bench subcommand accepts (the shared trio plus the
#: bench's own knobs); ``--scale`` / ``--seed`` are global flags on the
#: root parser, not repeated per subcommand
EXPECTED = {
    "bench-parallel": {"--shards", "--kind", "--workers",
                       "--queries", "--n", "--json"},
    "bench-cache": {"--resume-n", "--queries", "--n", "--json"},
    "bench-blocks": {"--block-sizes", "--queries", "--n", "--json"},
    "bench-serve": {"--duration", "--algorithm", "--clients",
                    "--chunk-depth", "--n", "--json"},
    "bench-adaptive": {"--train-queries", "--tolerance", "--calibration",
                       "--queries", "--n", "--json"},
}

HELP = {"-h", "--help"}


def _bench_actions():
    parser = _build_parser()
    sub = next(action for action in parser._actions
               if isinstance(action, argparse._SubParsersAction))
    return {name: choice._actions for name, choice in sub.choices.items()
            if name.startswith("bench-")}


def _by_flag(actions):
    return {option: action for action in actions
            for option in action.option_strings}


class TestBenchFlagIdentity:
    def test_every_bench_subcommand_is_snapshotted(self):
        assert set(_bench_actions()) == set(EXPECTED)

    def test_option_sets_match_the_snapshot_exactly(self):
        for name, actions in _bench_actions().items():
            flags = {option for action in actions
                     for option in action.option_strings} - HELP
            assert flags == EXPECTED[name], name

    def test_shared_trio_has_identical_spelling_and_types(self):
        for name, actions in _bench_actions().items():
            by_flag = _by_flag(actions)
            n = by_flag["--n"]
            assert n.type is int and n.default == 10, name
            json_flag = by_flag["--json"]
            assert isinstance(json_flag, argparse._StoreTrueAction), name
            if "--queries" in EXPECTED[name]:
                queries = by_flag["--queries"]
                assert queries.type is int and queries.default > 0, name

    def test_scale_and_seed_stay_global(self):
        parser = _build_parser()
        root_flags = {option for action in parser._actions
                      for option in action.option_strings}
        assert {"--scale", "--seed"} <= root_flags
        for name, actions in _bench_actions().items():
            flags = {option for action in actions
                     for option in action.option_strings}
            assert not flags & {"--scale", "--seed"}, name
