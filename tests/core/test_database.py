"""Tests for the MMDatabase facade and query sessions."""

import numpy as np
import pytest

from repro.core import DatabaseConfig, MMDatabase, QuerySession
from repro.errors import ReproError, TopNError, WorkloadError
from repro.fragmentation import Strategy
from repro.mm import color_histograms, query_near_cluster, texture_features
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def db():
    collection = SyntheticCollection.generate(trec.tiny(seed=51))
    database = MMDatabase.from_collection(collection)
    database.fragment()
    return database


@pytest.fixture(scope="module")
def queries(db):
    return generate_queries(db.collection, n_queries=8, seed=6)


class TestConstruction:
    def test_from_collection(self, db):
        stats = db.stats()
        assert stats["n_docs"] == 300
        assert stats["fragmented"]
        assert 0 < stats["small_volume_share"] < 0.2

    def test_from_texts(self):
        database = MMDatabase.from_texts(
            ["the quick brown fox jumps", "lazy dogs sleep all day",
             "foxes and dogs are animals"]
        )
        result = database.search("fox", n=2)
        assert 0 in result.doc_ids

    def test_config_validation(self):
        with pytest.raises(ReproError):
            DatabaseConfig(fragment_volume_cut=2.0).validate()
        with pytest.raises(ReproError):
            DatabaseConfig(switch_sensitivity=-1.0).validate()

    def test_config_model_selection(self):
        collection = SyntheticCollection.generate(n_docs=30, vocabulary_size=500,
                                                  n_topics=3, seed=1)
        database = MMDatabase.from_collection(
            collection, DatabaseConfig(model="lm", model_params={"lam": 0.3})
        )
        assert database.model.name == "lm"
        assert database.model.lam == 0.3


class TestTextSearch:
    def test_basic_search(self, db, queries):
        query = queries.queries[0]
        result = db.search(list(query.term_ids), n=10)
        assert len(result) <= 10
        assert result.result.scores == sorted(result.result.scores, reverse=True)

    def test_string_query(self, db, queries):
        query = queries.queries[0]
        text = query.text(db.collection)
        by_text = db.search(text, n=10)
        by_ids = db.search(list(query.term_ids), n=10)
        assert by_text.doc_ids == by_ids.doc_ids

    def test_unknown_terms_ignored(self, db):
        result = db.search("xqzzy notaword", n=5)
        assert len(result) == 0

    def test_strategies_by_name(self, db, queries):
        tids = list(queries.queries[1].term_ids)
        naive = db.search(tids, n=10, strategy="naive")
        for name in ("unfragmented", "unsafe-small", "safe-switch", "indexed"):
            result = db.search(tids, n=10, strategy=name)
            assert result.result.stats["strategy"] == (
                "unfragmented" if name == "unfragmented" else name
            )
        exact = db.search(tids, n=10, strategy="unfragmented")
        assert naive.doc_ids == exact.doc_ids

    def test_strategy_enum_accepted(self, db, queries):
        tids = list(queries.queries[1].term_ids)
        result = db.search(tids, n=10, strategy=Strategy.SAFE_SWITCH)
        assert result.result.stats["strategy"] == "safe-switch"

    def test_unknown_strategy(self, db):
        with pytest.raises(ReproError):
            db.search("anything", strategy="warp-drive")

    def test_unfragmented_db_requires_naive(self):
        collection = SyntheticCollection.generate(n_docs=30, vocabulary_size=500,
                                                  n_topics=3, seed=2)
        database = MMDatabase.from_collection(collection)
        result = database.search([1, 2, 3], n=5)  # auto falls back to naive
        assert result.result.strategy == "naive"
        with pytest.raises(ReproError):
            database.search([1], n=5, strategy="indexed")

    def test_cost_attached(self, db, queries):
        result = db.search(list(queries.queries[0].term_ids), n=10)
        assert result.cost.tuples_read > 0
        assert result.elapsed_seconds >= 0

    def test_describe(self, db, queries):
        result = db.search(list(queries.queries[0].term_ids), n=3)
        text = result.describe()
        assert "strategy=" in text


class TestAttributeFilter:
    def test_attr_filter(self, db, queries):
        rng = np.random.default_rng(9)
        years = rng.integers(1990, 2000, db.collection.n_docs)
        db.set_attribute("year", years)
        tids = list(queries.queries[0].term_ids)
        result = db.search(tids, n=10, attr_filter=("year", 1995, 1997))
        for doc_id in result.doc_ids:
            assert 1995 <= years[doc_id] <= 1997

    def test_attr_filter_is_exact_topn(self, db, queries):
        rng = np.random.default_rng(9)
        years = rng.integers(1990, 2000, db.collection.n_docs)
        db.set_attribute("year2", years)
        tids = list(queries.queries[2].term_ids)
        filtered = db.search(tids, n=5, attr_filter=("year2", 1990, 1994))
        # reference: naive search over many, filter manually
        broad = db.search(tids, n=db.collection.n_docs, strategy="naive")
        expected = [d for d in broad.doc_ids if 1990 <= years[d] <= 1994][:5]
        assert filtered.doc_ids == expected

    def test_unknown_attribute(self, db):
        with pytest.raises(WorkloadError):
            db.search("anything", attr_filter=("nope", 0, 1))

    def test_attribute_length_mismatch(self, db):
        with pytest.raises(WorkloadError):
            db.set_attribute("bad", np.zeros(3))


class TestFeatureSearch:
    @pytest.fixture(scope="class")
    def feature_db(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=52))
        database = MMDatabase.from_collection(collection)
        database.add_feature_space(color_histograms(len(collection), seed=3))
        database.add_feature_space(texture_features(len(collection), seed=4))
        return database

    def test_single_feature(self, feature_db):
        space = feature_db.feature_spaces["color"]
        query = query_near_cluster(space, cluster=0, seed=5)
        result = feature_db.feature_search({"color": query}, n=5, measure="histogram")
        assert len(result) == 5
        # nearest neighbours should mostly come from the queried cluster
        hits_in_cluster = sum(1 for d in result.doc_ids if space.cluster_of[d] == 0)
        assert hits_in_cluster >= 3

    def test_algorithms_agree(self, feature_db):
        space = feature_db.feature_spaces["texture"]
        query = query_near_cluster(space, cluster=1, seed=6)
        queries = {"texture": query, "color": query_near_cluster(
            feature_db.feature_spaces["color"], cluster=1, seed=7)}
        ta = feature_db.feature_search(queries, n=10, algorithm="ta")
        fa = feature_db.feature_search(queries, n=10, algorithm="fa")
        nra = feature_db.feature_search(queries, n=10, algorithm="nra")
        assert ta.result.same_ranking(fa.result)
        assert set(nra.doc_ids) == set(ta.doc_ids)

    def test_combined_search(self, feature_db):
        collection = feature_db.collection
        queries = generate_queries(collection, n_queries=1, seed=8)
        text = queries.queries[0].text(collection)
        space = feature_db.feature_spaces["color"]
        vector = query_near_cluster(space, cluster=2, seed=9)
        result = feature_db.combined_search(text, {"color": vector}, n=10)
        assert len(result) == 10
        assert result.safe

    def test_unknown_space(self, feature_db):
        with pytest.raises(WorkloadError):
            feature_db.feature_search({"nope": np.zeros(4)})

    def test_unknown_algorithm(self, feature_db):
        with pytest.raises(TopNError):
            feature_db.feature_search({"color": np.zeros(16)}, algorithm="zz")

    def test_empty_combined_query(self, feature_db):
        with pytest.raises(TopNError):
            feature_db.combined_search("", {}, n=5)

    def test_feature_space_size_mismatch(self, feature_db):
        with pytest.raises(WorkloadError):
            feature_db.add_feature_space(color_histograms(10, seed=1), name="tiny")


class TestQuerySession:
    def test_session_report(self, db, queries):
        session = QuerySession(db)
        report = session.run(queries, n=10, strategy="unfragmented")
        assert report.n_queries == len(queries)
        assert report.tuples_read > 0
        assert 0.0 <= report.mean_average_precision <= 1.0
        assert 0.0 <= report.mean_precision_at_n <= 1.0

    def test_overlap_vs_reference(self, db, queries):
        session = QuerySession(db)
        reference = session.reference_rankings(queries, n=10)
        exact = session.run(queries, n=10, strategy="unfragmented",
                            reference_rankings=reference)
        assert exact.mean_overlap_vs_reference == pytest.approx(1.0)
        unsafe = session.run(queries, n=10, strategy="unsafe-small",
                             reference_rankings=reference)
        assert unsafe.mean_overlap_vs_reference <= 1.0

    def test_unsafe_cheaper_in_session(self, db, queries):
        session = QuerySession(db)
        exact = session.run(queries, n=10, strategy="unfragmented")
        unsafe = session.run(queries, n=10, strategy="unsafe-small")
        assert unsafe.tuples_read < exact.tuples_read
