"""Tests for whole-database save/load."""

import numpy as np
import pytest

from repro.core import MMDatabase
from repro.mm import color_histograms
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def original():
    collection = SyntheticCollection.generate(trec.tiny(seed=91))
    db = MMDatabase.from_collection(collection)
    db.fragment()
    db.set_attribute("year", np.random.default_rng(1).integers(1990, 2000,
                                                               len(collection)))
    db.add_feature_space(color_histograms(len(collection), seed=2))
    return db


@pytest.fixture(scope="module")
def queries(original):
    return generate_queries(original.collection, n_queries=6, seed=3)


class TestSaveLoad:
    def test_roundtrip_search_identical(self, tmp_path_factory, original, queries):
        path = tmp_path_factory.mktemp("db")
        original.save(path)
        loaded = MMDatabase.load(path)
        for query in queries:
            tids = list(query.term_ids)
            for strategy in ("unfragmented", "unsafe-small", "indexed"):
                before = original.search(tids, n=10, strategy=strategy)
                after = loaded.search(tids, n=10, strategy=strategy)
                assert before.doc_ids == after.doc_ids, (query.query_id, strategy)
                assert before.result.scores == pytest.approx(after.result.scores)

    def test_string_queries_still_work(self, tmp_path_factory, original, queries):
        path = tmp_path_factory.mktemp("db2")
        original.save(path)
        loaded = MMDatabase.load(path)
        text = queries.queries[0].text(original.collection)
        assert loaded.search(text, n=5).doc_ids == original.search(text, n=5).doc_ids

    def test_attributes_survive(self, tmp_path_factory, original, queries):
        path = tmp_path_factory.mktemp("db3")
        original.save(path)
        loaded = MMDatabase.load(path)
        tids = list(queries.queries[1].term_ids)
        before = original.search(tids, n=5, attr_filter=("year", 1992, 1997))
        after = loaded.search(tids, n=5, attr_filter=("year", 1992, 1997))
        assert before.doc_ids == after.doc_ids

    def test_feature_spaces_survive(self, tmp_path_factory, original):
        path = tmp_path_factory.mktemp("db4")
        original.save(path)
        loaded = MMDatabase.load(path)
        space = loaded.feature_spaces["color"]
        assert np.allclose(space.vectors, original.feature_spaces["color"].vectors)
        query = original.feature_spaces["color"].vectors[7]
        before = original.feature_search({"color": query}, n=5)
        after = loaded.feature_search({"color": query}, n=5)
        assert before.doc_ids == after.doc_ids

    def test_config_survives(self, tmp_path_factory, original):
        path = tmp_path_factory.mktemp("db5")
        original.save(path)
        loaded = MMDatabase.load(path)
        assert loaded.config.model == original.config.model
        assert loaded.stats()["fragmented"]

    def test_stats_match(self, tmp_path_factory, original):
        path = tmp_path_factory.mktemp("db6")
        original.save(path)
        loaded = MMDatabase.load(path)
        before, after = original.stats(), loaded.stats()
        for key in ("n_docs", "n_terms", "total_postings", "small_volume_share"):
            assert before[key] == after[key], key
