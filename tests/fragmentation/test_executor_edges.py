"""Edge-case tests for the fragmented executor and quality check."""

import numpy as np
import pytest

from repro.fragmentation import (
    FragmentedExecutor,
    QualityCheck,
    Strategy,
    fragment_by_volume,
)
from repro.ir import BM25, Collection, Document, InvertedIndex


def build_world(n_docs=60, seed=5):
    """A small hand-rolled collection with one very frequent term (0)
    and several rare ones, so the fragment boundary is predictable."""
    rng = np.random.default_rng(seed)
    docs = []
    for i in range(n_docs):
        tokens = [0] * 5  # term 0 in every document
        tokens += rng.integers(1, 30, size=10).tolist()
        docs.append(Document(i, np.asarray(tokens, dtype=np.int64)))
    collection = Collection(docs, [f"t{j}" for j in range(30)], name="hand")
    index = InvertedIndex.build(collection)
    fragmented = fragment_by_volume(index, volume_cut=0.5)
    return index, fragmented


class TestExecutorEdges:
    def test_frequent_term_is_in_large_fragment(self):
        index, fragmented = build_world()
        assert not fragmented.in_small[0]

    def test_unsafe_returns_empty_for_large_only_query(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        result = executor.query([0], 5, Strategy.UNSAFE_SMALL)
        assert len(result) == 0
        assert result.stats["terms_skipped"] == 1

    def test_switch_recovers_large_only_query(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        exact = executor.query([0], 5, Strategy.UNFRAGMENTED)
        switch = executor.query([0], 5, Strategy.SAFE_SWITCH)
        assert switch.stats["switched"]
        assert switch.same_ranking(exact)

    def test_indexed_builds_lazily_once(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        assert not fragmented.large.has_index
        executor.query([0], 5, Strategy.INDEXED)
        assert fragmented.large.has_index
        first_index = fragmented.large._sparse_index
        executor.query([0], 5, Strategy.INDEXED)
        assert fragmented.large._sparse_index is first_index

    def test_query_with_zero_df_term(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        # term 29 may be unused; an unused term must simply contribute 0
        result = executor.query([29, 5], 5, Strategy.UNFRAGMENTED)
        assert result.safe

    def test_small_only_query_never_switches(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        small_terms = [t for t in range(1, 30) if fragmented.in_small[t]][:3]
        result = executor.query(small_terms, 5, Strategy.SAFE_SWITCH)
        assert not result.stats["switched"]

    def test_all_strategies_handle_empty_query(self):
        index, fragmented = build_world()
        executor = FragmentedExecutor(fragmented, BM25())
        for strategy in Strategy:
            assert len(executor.query([], 5, strategy)) == 0


class TestQualityCheckEdges:
    def test_missing_mass_is_sum_of_bounds(self):
        index, fragmented = build_world()
        model = BM25()
        check = QualityCheck()
        decision = check.decide(index, model, [0], nth_score=100.0, found=50, n=5)
        expected = model.upper_bound(index, index.term_stats(0))
        assert decision.missing_mass == pytest.approx(expected)

    def test_zero_nth_score_guard(self):
        index, fragmented = build_world()
        decision = QualityCheck().decide(index, BM25(), [0], nth_score=0.0,
                                         found=50, n=5)
        assert decision.switch  # any mass dominates a zero threshold

    def test_decision_bool(self):
        index, fragmented = build_world()
        decision = QualityCheck().decide(index, BM25(), [], nth_score=1.0,
                                         found=50, n=5)
        assert not bool(decision)
