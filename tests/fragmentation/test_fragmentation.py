"""Tests for the Zipf fragmentation machinery and execution strategies."""

import numpy as np
import pytest

from repro.errors import TopNError, WorkloadError
from repro.fragmentation import (
    FragmentedExecutor,
    QualityCheck,
    Strategy,
    fragment_by_volume,
)
from repro.ir import BM25, InvertedIndex
from repro.quality import overlap_at
from repro.storage import CostCounter
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def world():
    collection = SyntheticCollection.generate(trec.small(seed=31))
    index = InvertedIndex.build(collection)
    fragmented = fragment_by_volume(index, volume_cut=0.95)
    model = BM25()
    queries = generate_queries(collection, n_queries=15, terms_range=(3, 8), seed=4)
    return collection, index, fragmented, model, queries


class TestFragmenter:
    def test_volume_split(self, world):
        _, index, fragmented, _, _ = world
        assert fragmented.small_postings + fragmented.large_postings == index.total_postings()
        # paper shape: small fragment = small share of postings volume...
        assert fragmented.small_volume_share() < 0.15
        # ...but the large majority of the vocabulary
        assert fragmented.small_vocabulary_share() > 0.80

    def test_small_fragment_has_rare_terms(self, world):
        _, index, fragmented, _, _ = world
        df = index.vocabulary.df_array()
        used = df > 0
        small_df = df[fragmented.in_small & used]
        large_df = df[(~fragmented.in_small) & used]
        assert small_df.mean() < large_df.mean()

    def test_fragment_scores_match_full(self, world):
        """A term's partial scores must be identical whether read from
        the full index or its fragment (shared statistics)."""
        _, index, fragmented, model, queries = world
        for query in queries.queries[:3]:
            small_tids, _ = fragmented.split_query(list(query.term_ids))
            for tid in small_tids[:2]:
                full_docs, full_tfs = index.postings(tid)
                frag_docs, frag_tfs = fragmented.small.postings(tid)
                assert np.array_equal(full_docs, frag_docs)
                full_scores = model.partial_scores(index, tid, full_docs, full_tfs)
                frag_scores = model.partial_scores(fragmented.small, tid, frag_docs, frag_tfs)
                assert np.allclose(full_scores, frag_scores)

    def test_split_query(self, world):
        _, _, fragmented, _, queries = world
        tids = list(queries.queries[0].term_ids)
        small, large = fragmented.split_query(tids)
        assert sorted(small + large) == sorted(tids)
        assert all(fragmented.in_small[t] for t in small)
        assert all(not fragmented.in_small[t] for t in large)

    def test_invalid_cut(self, world):
        _, index, _, _, _ = world
        with pytest.raises(WorkloadError):
            fragment_by_volume(index, volume_cut=0.0)
        with pytest.raises(WorkloadError):
            fragment_by_volume(index, volume_cut=1.0)

    def test_heap_scan_matches_indexed(self, world):
        _, _, fragmented, _, queries = world
        all_large = [t for q in queries.queries for t in q.term_ids
                     if not fragmented.in_small[t]][:5]
        if not all_large:
            pytest.skip("no large-fragment terms in the sampled queries")
        scanned = fragmented.large.scan_postings(all_large)
        fragmented.large.build_sparse_index()
        indexed = fragmented.large.indexed_postings(all_large)
        for tid in all_large:
            assert np.array_equal(np.sort(scanned[tid][0]), np.sort(indexed[tid][0]))

    def test_indexed_access_requires_index(self, world):
        _, index, _, _, _ = world
        fresh = fragment_by_volume(index, volume_cut=0.9)
        with pytest.raises(WorkloadError):
            fresh.large.indexed_postings([0])


class TestStrategies:
    N = 20

    def run_all(self, world, query):
        _, _, fragmented, model, _ = world
        executor = FragmentedExecutor(fragmented, model)
        tids = list(query.term_ids)
        out = {}
        for strategy in Strategy:
            with CostCounter.activate() as cost:
                result = executor.query(tids, self.N, strategy)
            out[strategy] = (result, cost)
        return out

    def test_unsafe_small_touches_fraction(self, world):
        _, _, _, _, queries = world
        # aggregate over queries: unsafe reads far less than unfragmented
        total_unsafe = total_full = 0
        for query in queries.queries:
            results = self.run_all(world, query)
            total_unsafe += results[Strategy.UNSAFE_SMALL][1].tuples_read
            total_full += results[Strategy.UNFRAGMENTED][1].tuples_read
        assert total_unsafe < total_full * 0.7

    def test_unsafe_small_quality_drops(self, world):
        _, _, _, _, queries = world
        overlaps = []
        for query in queries.queries:
            results = self.run_all(world, query)
            exact = results[Strategy.UNFRAGMENTED][0]
            unsafe = results[Strategy.UNSAFE_SMALL][0]
            overlaps.append(overlap_at(unsafe.doc_ids, exact.doc_ids, self.N))
        assert sum(overlaps) / len(overlaps) < 0.999  # measurably lossy

    def test_safe_switch_restores_quality(self, world):
        _, _, _, _, queries = world
        switch_overlap, unsafe_overlap = [], []
        for query in queries.queries:
            results = self.run_all(world, query)
            exact = results[Strategy.UNFRAGMENTED][0]
            switch = results[Strategy.SAFE_SWITCH][0]
            unsafe = results[Strategy.UNSAFE_SMALL][0]
            switch_overlap.append(overlap_at(switch.doc_ids, exact.doc_ids, self.N))
            unsafe_overlap.append(overlap_at(unsafe.doc_ids, exact.doc_ids, self.N))
        assert sum(switch_overlap) >= sum(unsafe_overlap)
        assert sum(switch_overlap) / len(switch_overlap) > 0.9

    def test_indexed_same_answers_as_switch(self, world):
        _, _, _, _, queries = world
        for query in queries.queries[:5]:
            results = self.run_all(world, query)
            assert results[Strategy.INDEXED][0].same_ranking(
                results[Strategy.SAFE_SWITCH][0]
            )

    def test_indexed_cheaper_than_scan_switch(self, world):
        _, _, _, _, queries = world
        indexed_total = scan_total = 0
        switched_any = False
        for query in queries.queries:
            results = self.run_all(world, query)
            if results[Strategy.SAFE_SWITCH][0].stats["switched"]:
                switched_any = True
                scan_total += results[Strategy.SAFE_SWITCH][1].tuples_read
                indexed_total += results[Strategy.INDEXED][1].tuples_read
        if not switched_any:
            pytest.skip("no query triggered the switch in this workload")
        assert indexed_total < scan_total

    def test_switch_fires_only_with_large_terms(self, world):
        _, _, fragmented, model, queries = world
        executor = FragmentedExecutor(fragmented, model)
        for query in queries.queries:
            tids = list(query.term_ids)
            _, large = fragmented.split_query(tids)
            result = executor.query(tids, self.N, Strategy.SAFE_SWITCH)
            if not large:
                assert not result.stats["switched"]

    def test_invalid_n(self, world):
        _, _, fragmented, model, queries = world
        executor = FragmentedExecutor(fragmented, model)
        with pytest.raises(TopNError):
            executor.query([0], 0, Strategy.UNFRAGMENTED)


class TestQualityCheck:
    def test_switches_when_mass_large(self, world):
        _, index, _, model, _ = world
        check = QualityCheck(sensitivity=0.35)
        decision = check.decide(index, model, large_tids=[0, 1], nth_score=0.01,
                                found=100, n=10)
        assert decision.switch

    def test_no_switch_without_large_terms(self, world):
        _, index, _, model, _ = world
        decision = QualityCheck().decide(index, model, [], nth_score=1.0, found=50, n=10)
        assert not decision.switch
        assert decision.missing_mass == 0.0

    def test_switches_when_too_few_candidates(self, world):
        _, index, _, model, _ = world
        decision = QualityCheck().decide(index, model, [5], nth_score=0.0, found=2, n=10)
        assert decision.switch

    def test_sensitivity_effect(self, world):
        _, index, _, model, _ = world
        lax = QualityCheck(sensitivity=1e9)
        decision = lax.decide(index, model, [0], nth_score=10.0, found=50, n=10)
        assert not decision.switch
