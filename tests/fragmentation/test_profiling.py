"""Tests for learned (profiled) fragmentation of feature spaces."""

import numpy as np
import pytest

from repro.errors import TopNError, WorkloadError
from repro.fragmentation import ProfiledFragments, profile_hits, profiled_topn
from repro.mm import query_near_cluster, texture_features
from repro.storage import CostCounter


@pytest.fixture(scope="module")
def space():
    # clustered space: some clusters are dense (their members answer
    # many queries), so profiling finds a skewed hit distribution
    return texture_features(800, dim=6, n_clusters=6, spread=0.08, seed=131)


@pytest.fixture(scope="module")
def hits(space):
    return profile_hits(space, n_queries=150, k=30, seed=1)


@pytest.fixture(scope="module")
def fragments(space, hits):
    return ProfiledFragments(space, hits, hot_fraction=0.25, n_groups=24, seed=2)


class TestProfiling:
    def test_hits_cover_objects(self, space, hits):
        assert len(hits) == space.n_objects
        assert hits.sum() == 150 * 30  # every query contributes exactly k

    def test_hit_distribution_is_skewed(self, fragments):
        """The learned distribution concentrates: the hot 25% of
        objects capture well over 25% of the hits."""
        assert fragments.hit_skew() > 0.4

    def test_deterministic(self, space):
        a = profile_hits(space, n_queries=20, k=10, seed=9)
        b = profile_hits(space, n_queries=20, k=10, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self, space):
        with pytest.raises(WorkloadError):
            profile_hits(space, n_queries=0)
        with pytest.raises(WorkloadError):
            profile_hits(space, k=0)


class TestFragments:
    def test_partition(self, space, fragments):
        union = np.sort(np.concatenate([fragments.hot_ids, fragments.cold_ids]))
        assert np.array_equal(union, np.arange(space.n_objects))

    def test_hot_share(self, fragments):
        assert fragments.hot_share() == pytest.approx(0.25, abs=0.01)

    def test_groups_cover_cold(self, fragments):
        grouped = np.sort(np.concatenate([g.members for g in fragments.groups]))
        assert np.array_equal(grouped, fragments.cold_ids)

    def test_radii_are_valid_bounds(self, space, fragments):
        for group in fragments.groups:
            vectors = space.vectors[group.members]
            distances = np.sqrt(((vectors - group.centroid) ** 2).sum(axis=1))
            assert distances.max() <= group.radius + 1e-9

    def test_validation(self, space, hits):
        with pytest.raises(WorkloadError):
            ProfiledFragments(space, hits, hot_fraction=0.0)
        with pytest.raises(WorkloadError):
            ProfiledFragments(space, hits[:-1])


class TestProfiledTopN:
    def queries(self, space, count=10):
        return [query_near_cluster(space, cluster=i % 6, seed=100 + i)
                for i in range(count)]

    def test_safe_mode_is_exact(self, space, fragments):
        for query in self.queries(space):
            exact = profiled_topn(fragments, query, 10, mode="full")
            safe = profiled_topn(fragments, query, 10, mode="safe")
            assert safe.same_ranking(exact)
            assert safe.safe

    def test_safe_mode_prunes(self, space, fragments):
        total_scored = 0
        total_pruned = 0
        for query in self.queries(space):
            result = profiled_topn(fragments, query, 10, mode="safe")
            total_scored += result.stats["objects_scored"]
            total_pruned += result.stats["groups_pruned"]
        # safe mode must do less work than scoring everything, and the
        # group bounds must actually fire
        assert total_scored < 10 * space.n_objects
        assert total_pruned > 0

    def test_unsafe_mode_cheaper_but_lossy_overall(self, space, fragments):
        exact_sets = []
        unsafe_sets = []
        scored = 0
        for query in self.queries(space, count=20):
            exact = profiled_topn(fragments, query, 10, mode="full")
            unsafe = profiled_topn(fragments, query, 10, mode="unsafe")
            assert not unsafe.safe
            scored += unsafe.stats["objects_scored"]
            exact_sets.append(set(exact.doc_ids))
            unsafe_sets.append(set(unsafe.doc_ids))
        overlaps = [len(a & b) / max(len(a), 1) for a, b in zip(exact_sets, unsafe_sets)]
        assert scored == 20 * len(fragments.hot_ids)
        # quality is data-dependent ("not independent from the data
        # set"): good on hot clusters, lossy overall
        assert 0.1 < np.mean(overlaps) <= 1.0

    def test_cost_ordering(self, space, fragments):
        query = self.queries(space, count=1)[0]
        with CostCounter.activate() as unsafe_cost:
            profiled_topn(fragments, query, 10, mode="unsafe")
        with CostCounter.activate() as safe_cost:
            profiled_topn(fragments, query, 10, mode="safe")
        with CostCounter.activate() as full_cost:
            profiled_topn(fragments, query, 10, mode="full")
        assert unsafe_cost.tuples_read <= safe_cost.tuples_read <= full_cost.tuples_read

    def test_validation(self, space, fragments):
        with pytest.raises(TopNError):
            profiled_topn(fragments, np.zeros(space.dim), 5, mode="warp")
        with pytest.raises(TopNError):
            profiled_topn(fragments, np.zeros(space.dim + 1), 5)
