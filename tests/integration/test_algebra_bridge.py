"""Integration: ranked retrieval results post-processed in the algebra."""

import pytest

from repro.algebra import evaluate, parse
from repro.core import MMDatabase, RANKING_TYPE, ranking_to_value, value_to_ranking
from repro.errors import AlgebraTypeError
from repro.optimizer import Optimizer
from repro.storage import CostCounter
from repro.topn import TopNResult
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def ranked():
    collection = SyntheticCollection.generate(trec.tiny(seed=81))
    db = MMDatabase.from_collection(collection)
    queries = generate_queries(collection, n_queries=1, seed=2)
    result = db.search(list(queries.queries[0].term_ids), n=50, strategy="naive")
    return ranking_to_value(result.result)


class TestBridge:
    def test_lift_type(self, ranked):
        assert ranked.stype == RANKING_TYPE
        assert ranked.count <= 50

    def test_score_column_marked_sorted(self, ranked):
        assert ranked.column("score").tail_sorted_desc

    def test_roundtrip(self, ranked):
        result = value_to_ranking(ranked)
        again = ranking_to_value(result)
        assert again.equals(ranked)

    def test_roundtrip_empty(self):
        empty = TopNResult([], 5, "x", True)
        assert value_to_ranking(ranking_to_value(empty)).doc_ids == []

    def test_wrong_type_rejected(self):
        from repro.algebra import make_list

        with pytest.raises(AlgebraTypeError):
            value_to_ranking(make_list([1, 2]))

    def test_unsorted_value_rejected(self, ranked):
        reordered = evaluate(parse("sort(r, 'score')"), {"r": ranked})  # ascending
        if reordered.count > 1:
            with pytest.raises(AlgebraTypeError):
                value_to_ranking(reordered)


class TestAlgebraPostProcessing:
    def test_score_cutoff_in_algebra(self, ranked):
        scores = [row["score"] for row in ranked.iter_elements()]
        cutoff = scores[len(scores) // 2]
        out = evaluate(parse(f"select(r, 'score', {cutoff}, 1000000.0)"), {"r": ranked})
        assert all(row["score"] >= cutoff for row in out.iter_elements())
        # still a valid ranking
        assert value_to_ranking(out).doc_ids[0] == value_to_ranking(ranked).doc_ids[0]

    def test_recut_topn(self, ranked):
        out = evaluate(parse("topn(r, 'score', 5)"), {"r": ranked})
        assert value_to_ranking(out).doc_ids == value_to_ranking(ranked).doc_ids[:5]

    def test_project_docs(self, ranked):
        out = evaluate(parse("project(r, 'doc')"), {"r": ranked})
        assert out.to_python() == value_to_ranking(ranked).doc_ids

    def test_optimizer_over_ranked_values(self, ranked):
        """A re-cut phrased as sort+slice gets rewritten to the special
        top-N operator and yields the same ranking."""
        optimizer = Optimizer()
        expr = parse("slice(sort(r, 'score', 1), 0, 5)")
        value, report = optimizer.execute(expr, {"r": ranked})
        assert str(report.optimized) == "topn(r, 'score', 5, 1)"
        assert value_to_ranking(value).doc_ids == value_to_ranking(ranked).doc_ids[:5]

    def test_prefix_topn_is_cheap(self, ranked):
        """The ranking's score column is desc-sorted, so an algebra
        top-N over it is a prefix read."""
        with CostCounter.activate() as cost:
            evaluate(parse("topn(r, 'score', 3)"), {"r": ranked})
        assert cost.tuples_read <= 3 * 3  # prefix rows times columns
