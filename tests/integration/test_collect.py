"""benchmarks/collect.py: the merge must survive missing, truncated or
hand-damaged per-experiment files (an interrupted bench run leaves
those behind) instead of aborting the whole BENCH_RESULTS build."""

import importlib.util
import json
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


def load_collect():
    spec = importlib.util.spec_from_file_location(
        "bench_collect", BENCHMARKS / "collect.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def table(slug):
    return {"slug": slug, "title": f"{slug.upper()}: t", "scale": 0.1,
            "headers": ["a"], "rows": [[1]]}


def write_results(tmp_path, **files):
    results = tmp_path / "results"
    results.mkdir()
    for name, content in files.items():
        (results / f"{name}.json").write_text(content)
    return results


class TestCollectTolerance:
    def test_merges_well_formed_tables(self, tmp_path):
        collect = load_collect()
        results = write_results(tmp_path, e1=json.dumps(table("e1")),
                                e2=json.dumps(table("e2")))
        output = tmp_path / "out.json"
        payload = collect.collect(results, output)
        assert [t["slug"] for t in payload["tables"]] == ["e1", "e2"]
        assert payload["skipped"] == 0
        assert json.loads(output.read_text()) == payload

    def test_truncated_json_is_skipped_with_the_rest_kept(self, tmp_path,
                                                          capsys):
        collect = load_collect()
        results = write_results(
            tmp_path,
            e1=json.dumps(table("e1")),
            e2=json.dumps(table("e2"))[:25],  # interrupted mid-write
            e3=json.dumps(table("e3")))
        payload = collect.collect(results, tmp_path / "out.json")
        assert [t["slug"] for t in payload["tables"]] == ["e1", "e3"]
        assert payload["skipped"] == 1
        assert "skipping e2.json" in capsys.readouterr().err

    def test_tables_missing_required_keys_are_skipped(self, tmp_path, capsys):
        collect = load_collect()
        damaged = {"slug": "e2", "rows": []}  # no title/headers
        results = write_results(tmp_path, e1=json.dumps(table("e1")),
                                e2=json.dumps(damaged),
                                e3=json.dumps([1, 2, 3]))
        payload = collect.collect(results, tmp_path / "out.json")
        assert [t["slug"] for t in payload["tables"]] == ["e1"]
        assert payload["skipped"] == 2
        err = capsys.readouterr().err
        assert "e2.json" in err and "e3.json" in err

    def test_empty_results_dir_still_writes_a_payload(self, tmp_path):
        collect = load_collect()
        results = tmp_path / "results"
        results.mkdir()
        payload = collect.collect(results, tmp_path / "out.json")
        assert payload["tables"] == [] and payload["skipped"] == 0

    def test_partial_rerun_keeps_absent_experiments(self, tmp_path):
        """A run that only regenerated some experiments must not erase
        the others' tables from the merged output."""
        collect = load_collect()
        output = tmp_path / "out.json"
        results = write_results(tmp_path, e1=json.dumps(table("e1")),
                                e2=json.dumps(table("e2")))
        collect.collect(results, output)
        (results / "e1.json").unlink()
        fresh = table("e2")
        fresh["rows"] = [[2]]  # e2 reran with new numbers
        (results / "e2.json").write_text(json.dumps(fresh))
        payload = collect.collect(results, output)
        by_slug = {t["slug"]: t for t in payload["tables"]}
        assert set(by_slug) == {"e1", "e2"}  # e1 survived the rerun
        assert by_slug["e2"]["rows"] == [[2]]  # e2 was updated

    def test_unreadable_previous_output_is_ignored(self, tmp_path, capsys):
        collect = load_collect()
        output = tmp_path / "out.json"
        output.write_text("{broken")
        results = write_results(tmp_path, e1=json.dumps(table("e1")))
        payload = collect.collect(results, output)
        assert [t["slug"] for t in payload["tables"]] == ["e1"]
        assert "ignoring unreadable" in capsys.readouterr().err
