"""Integration tests: whole-system flows across subsystem boundaries."""

import pytest

from repro.core import MMDatabase, QuerySession
from repro.fragmentation import Strategy
from repro.ir import BM25, InvertedIndex, LanguageModel, TfIdf
from repro.mm import PostingsSource
from repro.storage import Catalog, CostCounter
from repro.topn import SUM, naive_topn, nra_topn, threshold_topn
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def world():
    collection = SyntheticCollection.generate(trec.tiny(seed=71))
    db = MMDatabase.from_collection(collection)
    db.fragment()
    queries = generate_queries(collection, n_queries=10, rare_bias=3.0, seed=3)
    return db, queries


class TestCrossSubstrateConsistency:
    """The same query answered through different subsystems must agree."""

    def test_ta_over_postings_equals_naive(self, world):
        db, queries = world
        for query in queries.queries[:5]:
            tids = list(query.term_ids)
            naive = naive_topn(db.index, tids, db.model, 10)
            sources = [PostingsSource(db.index, tid, db.model) for tid in tids]
            ta = threshold_topn(sources, 10, SUM)
            # compare positive-score prefixes (zero-score candidates tie
            # arbitrarily between the two representations)
            naive_positive = [d for d, s in zip(naive.doc_ids, naive.scores) if s > 1e-12]
            ta_positive = [d for d, s in zip(ta.doc_ids, ta.scores) if s > 1e-12]
            assert ta_positive == naive_positive

    def test_nra_over_postings_agrees_on_membership(self, world):
        db, queries = world
        query = queries.queries[0]
        tids = list(query.term_ids)
        naive = naive_topn(db.index, tids, db.model, 5)
        sources = [PostingsSource(db.index, tid, db.model) for tid in tids]
        nra = nra_topn(sources, 5, SUM, check_every=4)
        naive_positive = {d for d, s in zip(naive.doc_ids, naive.scores) if s > 1e-12}
        assert naive_positive <= set(nra.doc_ids) | naive_positive

    def test_all_strategies_agree_on_safe_answers(self, world):
        db, queries = world
        for query in queries.queries[:5]:
            tids = list(query.term_ids)
            exact = db.search(tids, n=10, strategy=Strategy.UNFRAGMENTED)
            switch = db.search(tids, n=10, strategy=Strategy.SAFE_SWITCH)
            indexed = db.search(tids, n=10, strategy=Strategy.INDEXED)
            assert switch.doc_ids == indexed.doc_ids
            # when the quality check switched, answers equal the exact ones
            if switch.result.stats["switched"] or not switch.result.stats["terms_large"]:
                assert switch.doc_ids == exact.doc_ids

    @pytest.mark.parametrize("model_cls", [TfIdf, BM25, LanguageModel])
    def test_models_work_through_all_paths(self, world, model_cls):
        db, queries = world
        model = model_cls()
        tids = list(queries.queries[1].term_ids)
        naive = naive_topn(db.index, tids, model, 5)
        sources = [PostingsSource(db.index, tid, model) for tid in tids]
        ta = threshold_topn(sources, 5, SUM)
        naive_positive = [d for d, s in zip(naive.doc_ids, naive.scores) if s > 1e-12]
        ta_positive = [d for d, s in zip(ta.doc_ids, ta.scores) if s > 1e-12]
        assert ta_positive == naive_positive


class TestDeterminism:
    def test_same_seed_same_results(self):
        def build_and_search():
            collection = SyntheticCollection.generate(trec.tiny(seed=99))
            db = MMDatabase.from_collection(collection)
            db.fragment()
            queries = generate_queries(collection, n_queries=3, seed=5)
            return [
                db.search(list(q.term_ids), n=10, strategy="indexed").doc_ids
                for q in queries
            ]

        assert build_and_search() == build_and_search()

    def test_cost_accounting_deterministic(self, world):
        db, queries = world
        tids = list(queries.queries[2].term_ids)
        db.search(tids, n=10, strategy="unfragmented")  # warm any lazies
        with CostCounter.activate() as first:
            db.search(tids, n=10, strategy="unfragmented")
        with CostCounter.activate() as second:
            db.search(tids, n=10, strategy="unfragmented")
        assert first.tuples_read == second.tuples_read
        assert first.comparisons == second.comparisons


class TestPersistenceRoundTrip:
    def test_index_bats_survive_catalog(self, tmp_path, world):
        """The inverted index's BATs round-trip through the catalog and
        produce identical search results."""
        db, queries = world
        index = db.index
        catalog = Catalog()
        catalog.register("postings_terms", index.postings_terms)
        catalog.register("postings_docs", index.postings_docs)
        catalog.register("postings_tf", index.postings_tf)
        catalog.register("doc_lengths", index.doc_lengths)
        catalog.save(tmp_path / "db")

        loaded = Catalog.load(tmp_path / "db")
        rebuilt = InvertedIndex(
            loaded.get("postings_terms"),
            loaded.get("postings_docs"),
            loaded.get("postings_tf"),
            index.offsets,
            loaded.get("doc_lengths"),
            index.vocabulary,
        )
        tids = list(queries.queries[0].term_ids)
        original = naive_topn(index, tids, db.model, 10)
        reloaded = naive_topn(rebuilt, tids, db.model, 10)
        assert original.same_ranking(reloaded)


class TestSessionQualitySanity:
    def test_retrieval_beats_random(self, world):
        """BM25 over the synthetic topical collection must rank topic
        documents far better than chance (validates the whole stack:
        generator -> index -> model -> topn)."""
        db, queries = world
        session = QuerySession(db)
        report = session.run(queries, n=20, strategy="unfragmented")
        # random precision ~ (topic size / collection) ~ 10%
        assert report.mean_precision_at_n > 0.3

    def test_unsafe_quality_between_zero_and_exact(self, world):
        db, queries = world
        session = QuerySession(db)
        reference = session.reference_rankings(queries, n=20)
        unsafe = session.run(queries, n=20, strategy="unsafe-small",
                             reference_rankings=reference)
        assert 0.0 < unsafe.mean_overlap_vs_reference < 1.0
