"""Smoke tests: every shipped example must run and print its story."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "fragmented:" in out
        for strategy in ("unfragmented", "unsafe-small", "safe-switch", "indexed"):
            assert strategy in out

    def test_image_search(self):
        out = run_example("image_search.py")
        assert "FA" in out and "TA" in out and "NRA" in out
        assert "combined text+color query" in out

    def test_optimizer_playground(self):
        out = run_example("optimizer_playground.py")
        assert "projecttobag(select(" in out
        assert "[2, 3, 4, 4]" in out
        assert "measured tuples" in out

    def test_relational_topn(self):
        out = run_example("relational_topn.py")
        assert "sort-stop" in out
        assert "answers exact" in out

    def test_trec_fragmentation_small_scale(self):
        out = run_example("trec_fragmentation.py", "0.02", timeout=300)
        assert "paper claims vs this run" in out
        assert "data processed reduction" in out
