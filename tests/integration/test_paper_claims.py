"""Fast in-suite checks of the paper's headline claims.

The benchmark harness regenerates the full experiment tables; these
tests assert the same *shapes* at unit-test scale so `pytest tests/`
alone already certifies the reproduction.
"""

import pytest

from repro.algebra import evaluate, parse
from repro.core import MMDatabase, QuerySession
from repro.ir import fit_zipf, vocabulary_share_for_volume
from repro.optimizer import Optimizer
from repro.storage import CostCounter
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def world():
    collection = SyntheticCollection.generate(trec.small(seed=201))
    db = MMDatabase.from_collection(collection)
    db.fragment(volume_cut=0.95)
    queries = generate_queries(collection, n_queries=20, terms_range=(3, 8),
                               rare_bias=3.0, seed=8)
    return db, queries


class TestSection3Step1:
    """The fragmentation claims."""

    def test_zipf_premise(self, world):
        db, _ = world
        cf = db.index.vocabulary.cf_array()
        fit = fit_zipf(cf[cf > 0], min_frequency=3)
        assert fit.r_squared > 0.85  # "text data is Zipf distributed"
        share = vocabulary_share_for_volume(cf[cf > 0].astype(float), 0.95)
        assert share < 0.5  # a minority of terms owns 95% of the volume

    def test_small_fragment_shape(self, world):
        db, _ = world
        # "approximately 5% of the unfragmented size"
        assert db.fragmented.small_volume_share() == pytest.approx(0.05, abs=0.01)
        # "containing the ... most interesting terms" (the vocabulary bulk)
        assert db.fragmented.small_vocabulary_share() > 0.75

    def test_unsafe_speedup_and_quality_drop(self, world):
        db, queries = world
        session = QuerySession(db)
        reference = session.reference_rankings(queries, n=20)
        exact = session.run(queries, n=20, strategy="unfragmented",
                            reference_rankings=reference)
        unsafe = session.run(queries, n=20, strategy="unsafe-small",
                             reference_rankings=reference)
        # ">= 60%" speedup in modeled time (shape: at least half)
        assert 1 - unsafe.modeled_seconds / exact.modeled_seconds > 0.5
        # "answer quality dropped more than 30%" (shape: a clear drop)
        drop = 1 - unsafe.mean_average_precision / exact.mean_average_precision
        assert drop > 0.15

    def test_switch_restores_quality_and_costs(self, world):
        db, queries = world
        session = QuerySession(db)
        reference = session.reference_rankings(queries, n=20)
        unsafe = session.run(queries, n=20, strategy="unsafe-small",
                             reference_rankings=reference)
        switch = session.run(queries, n=20, strategy="safe-switch",
                             reference_rankings=reference)
        assert switch.mean_overlap_vs_reference > unsafe.mean_overlap_vs_reference
        assert switch.tuples_read > unsafe.tuples_read  # "lowered the speed"

    def test_nondense_index_decreases_execution_time(self, world):
        db, queries = world
        session = QuerySession(db)
        switch = session.run(queries, n=20, strategy="safe-switch")
        indexed = session.run(queries, n=20, strategy="indexed")
        assert indexed.modeled_seconds < switch.modeled_seconds / 2


class TestSection3Step2:
    """Example 1 and the inter-object layer."""

    def test_example_1_verbatim(self):
        expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
        value, report = Optimizer().execute(expr)
        # the rewritten shape: conversion on the outside, select inside
        assert str(report.optimized).startswith("projecttobag(select(")
        assert "push-select-through-conversion" in report.rules_fired()
        assert sorted(value.to_python()) == [2, 3, 4, 4]

    def test_rewrite_is_more_efficient(self):
        from repro.algebra import make_list

        env = {"xs": make_list(list(range(30_000)))}
        bad = parse("select(projecttobag(xs), 100, 200)")
        good = parse("projecttobag(select(xs, 100, 200))")
        with CostCounter.activate() as bad_cost:
            evaluate(bad, env)
        with CostCounter.activate() as good_cost:
            evaluate(good, env)
        # "can be executed more efficient ... even more efficiently when
        # the system is aware of the ordering"
        assert good_cost.tuples_read < bad_cost.tuples_read / 50


class TestSection3Step3:
    """The centralized cost model."""

    def test_cost_model_orders_the_example(self):
        from repro.algebra import make_list
        from repro.optimizer import CostModel

        env = {"xs": make_list(list(range(10_000)))}
        model = CostModel()
        bad = model.estimate_expr(parse("select(projecttobag(xs), 1, 2)"), env)
        good = model.estimate_expr(parse("projecttobag(select(xs, 1, 2))"), env)
        assert good.cost < bad.cost


class TestSection2:
    """Safe vs unsafe and bound administration."""

    def test_safe_technique_is_exact_with_smaller_speedup(self, world):
        from repro.mm import PostingsSource
        from repro.topn import SUM, naive_topn, threshold_topn

        db, queries = world
        query = max(queries.queries, key=lambda q: len(q.term_ids))
        tids = list(query.term_ids)
        naive = naive_topn(db.index, tids, db.model, 20)
        sources = [PostingsSource(db.index, t, db.model) for t in tids]
        with CostCounter.activate() as cost:
            safe = threshold_topn(sources, 20, SUM)
        naive_positive = [d for d, s in zip(naive.doc_ids, naive.scores) if s > 1e-12]
        safe_positive = [d for d, s in zip(safe.doc_ids, safe.scores) if s > 1e-12]
        assert safe_positive == naive_positive  # safe: quality maintained
        assert cost.sorted_accesses <= sum(db.index.posting_length(t) for t in tids)
