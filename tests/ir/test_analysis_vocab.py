"""Unit tests for text analysis and vocabulary."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ir import Analyzer, STOPWORDS, Vocabulary, stem, tokenize


class TestTokenize:
    def test_basic(self):
        assert list(tokenize("Hello, World!")) == ["hello", "world"]

    def test_digits_kept(self):
        assert list(tokenize("top10 queries")) == ["top10", "queries"]

    def test_empty(self):
        assert list(tokenize("")) == []
        assert list(tokenize("!!! ---")) == []


class TestStem:
    def test_plural(self):
        assert stem("databases") == "databas"
        assert stem("queries") == "query"

    def test_ing_ed(self):
        assert stem("ranking") == "rank"
        assert stem("ranked") == "rank"

    def test_short_words_untouched(self):
        assert stem("is") == "is"
        assert stem("bed") == "bed"  # would leave < 3 chars

    def test_no_suffix(self):
        assert stem("zipf") == "zipf"


class TestAnalyzer:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("The rankings of the databases")
        assert "the" not in terms
        assert "rank" in terms

    def test_stopwords_optional(self):
        analyzer = Analyzer(use_stopwords=False)
        assert "the" in analyzer.analyze("the fox")

    def test_stemming_optional(self):
        analyzer = Analyzer(use_stemming=False)
        assert "ranking" in analyzer.analyze("ranking")

    def test_extra_stopwords(self):
        analyzer = Analyzer(extra_stopwords=["fox"])
        assert analyzer.analyze("the fox runs") == ["run"]

    def test_stopword_list_sane(self):
        assert "the" in STOPWORDS and "zipf" not in STOPWORDS


class TestVocabulary:
    def test_add_document_terms(self):
        vocab = Vocabulary()
        ids = vocab.add_document_terms(["a", "b", "a"])
        assert ids == [0, 1, 0]
        assert vocab.df(0) == 1  # one document
        assert vocab.cf(0) == 2  # two occurrences

    def test_df_counts_documents(self):
        vocab = Vocabulary()
        vocab.add_document_terms(["x", "x"])
        vocab.add_document_terms(["x"])
        assert vocab.df(vocab.term_id("x")) == 2
        assert vocab.cf(vocab.term_id("x")) == 3

    def test_lookup(self):
        vocab = Vocabulary()
        vocab.add_document_terms(["alpha"])
        assert vocab.term(0) == "alpha"
        assert vocab.term_id("alpha") == 0
        assert "alpha" in vocab
        assert "beta" not in vocab

    def test_unknown_term(self):
        with pytest.raises(WorkloadError):
            Vocabulary().term_id("nope")
        with pytest.raises(WorkloadError):
            Vocabulary().term(5)

    def test_from_token_id_docs(self):
        docs = [np.array([0, 1, 1]), np.array([1])]
        vocab = Vocabulary.from_token_id_docs(docs, ["a", "b"])
        assert vocab.df(0) == 1 and vocab.cf(0) == 1
        assert vocab.df(1) == 2 and vocab.cf(1) == 3
        assert vocab.total_cf() == 4

    def test_from_token_id_docs_out_of_range(self):
        with pytest.raises(WorkloadError):
            Vocabulary.from_token_id_docs([np.array([5])], ["a"])

    def test_arrays(self):
        vocab = Vocabulary()
        vocab.add_document_terms(["a", "b", "b"])
        assert list(vocab.df_array()) == [1, 1]
        assert list(vocab.cf_array()) == [1, 2]
        assert vocab.terms() == ["a", "b"]
