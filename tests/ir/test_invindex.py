"""Unit tests for the inverted index and ranking models."""

import numpy as np
import pytest

from repro.errors import TopNError, WorkloadError
from repro.ir import (
    BM25,
    Collection,
    Document,
    InvertedIndex,
    LanguageModel,
    TfIdf,
    make_model,
    score_all,
)
from repro.storage import CostCounter


def small_collection():
    docs = [
        Document(0, np.array([0, 1, 1, 2])),  # a b b c
        Document(1, np.array([1, 3])),  # b d
        Document(2, np.array([0, 0, 0, 3, 3])),  # a a a d d
    ]
    return Collection(docs, ["a", "b", "c", "d"], name="small")


@pytest.fixture
def index():
    return InvertedIndex.build(small_collection())


class TestBuild:
    def test_shape(self, index):
        assert index.n_docs == 3
        assert index.n_terms == 4
        assert index.total_postings() == 7  # distinct (term, doc) pairs

    def test_postings_content(self, index):
        docs, tfs = index.postings(1)  # term "b"
        assert list(docs) == [0, 1]
        assert list(tfs) == [2, 1]

    def test_posting_length(self, index):
        assert index.posting_length(0) == 2  # "a" in docs 0, 2
        assert index.posting_length(2) == 1  # "c" only doc 0

    def test_docs_sorted_within_term(self, index):
        docs, _ = index.postings(3)
        assert list(docs) == sorted(docs)

    def test_invalid_term(self, index):
        with pytest.raises(WorkloadError):
            index.postings(99)
        with pytest.raises(WorkloadError):
            index.posting_length(-1)

    def test_doc_lengths(self, index):
        assert list(index.doc_lengths.tail) == [4, 2, 5]
        assert index.avg_dl == pytest.approx(11 / 3)

    def test_term_stats(self, index):
        stats = index.term_stats(0)
        assert stats.df == 2 and stats.cf == 4
        assert stats.max_tf == 3
        assert stats.max_tf_over_dl == pytest.approx(3 / 5)

    def test_candidate_documents(self, index):
        assert list(index.candidate_documents([1, 2])) == [0, 1]
        assert list(index.candidate_documents([])) == []

    def test_from_texts(self):
        index, collection = InvertedIndex.from_texts(
            ["the quick brown fox", "the lazy dog", "quick quick dog"]
        )
        assert index.n_docs == 3
        tid = collection.term_id("quick")
        docs, tfs = index.postings(tid)
        assert list(docs) == [0, 2]
        assert list(tfs) == [1, 2]

    def test_empty_collection(self):
        index = InvertedIndex.build(Collection([], ["a"], name="empty"))
        assert index.n_docs == 0
        assert index.total_postings() == 0

    def test_postings_charge_only_their_range(self, index):
        with CostCounter.activate() as cost:
            index.postings(2)  # 1-posting term
        assert cost.tuples_read == 2  # docs + tf columns


class TestModels:
    @pytest.mark.parametrize("model", [TfIdf(), BM25(), LanguageModel()])
    def test_partial_scores_nonnegative(self, index, model):
        for tid in range(index.n_terms):
            docs, tfs = index.postings(tid)
            partials = model.partial_scores(index, tid, docs, tfs)
            assert (partials >= 0).all()

    @pytest.mark.parametrize("model", [TfIdf(), BM25(), LanguageModel()])
    def test_upper_bound_holds(self, index, model):
        for tid in range(index.n_terms):
            docs, tfs = index.postings(tid)
            if len(docs) == 0:
                continue
            bound = model.upper_bound(index, index.term_stats(tid))
            partials = model.partial_scores(index, tid, docs, tfs)
            assert partials.max() <= bound + 1e-12

    @pytest.mark.parametrize("model", [TfIdf(), BM25(), LanguageModel()])
    def test_rare_term_outweighs_common(self, index, model):
        """A term appearing once in one short doc should contribute more
        than a term spread over all docs (idf effect)."""
        rare_bound = model.upper_bound(index, index.term_stats(2))  # df=1
        assert rare_bound > 0

    def test_model_parameter_validation(self):
        with pytest.raises(TopNError):
            TfIdf(slope=1.5)
        with pytest.raises(TopNError):
            BM25(k1=-1)
        with pytest.raises(TopNError):
            BM25(b=2)
        with pytest.raises(TopNError):
            LanguageModel(lam=0.0)

    def test_make_model(self):
        assert make_model("bm25", k1=2.0).k1 == 2.0
        with pytest.raises(TopNError):
            make_model("nope")

    def test_bm25_tf_saturation(self, index):
        model = BM25()
        docs, tfs = index.postings(0)
        partials = model.partial_scores(index, 0, docs, tfs)
        # doc 2 has tf=3 in a length-5 doc; doc 0 has tf=1 in length-4
        assert partials[1] > partials[0]


class TestScoreAll:
    def test_scores_candidates_only(self, index):
        scores = score_all(index, [1], TfIdf())  # term "b": docs 0, 1
        assert sorted(scores.head_array().tolist()) == [0, 1]

    def test_multi_term_accumulates(self, index):
        single = score_all(index, [1], TfIdf())
        double = score_all(index, [1, 3], TfIdf())
        single_map = dict(single.to_list())
        double_map = dict(double.to_list())
        assert double_map[1] > single_map[1]  # doc 1 has both terms

    def test_empty_query(self, index):
        assert len(score_all(index, [], BM25())) == 0

    def test_deterministic(self, index):
        a = score_all(index, [0, 1, 3], BM25())
        b = score_all(index, [0, 1, 3], BM25())
        assert a.same_content(b)

    def test_charges_posting_scans(self, index):
        with CostCounter.activate() as cost:
            score_all(index, [0, 1, 2, 3], BM25())
        assert cost.tuples_read >= 2 * index.total_postings()
