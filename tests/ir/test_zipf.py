"""Unit tests for Zipf analysis."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ir import fit_zipf, rank_frequency_table, vocabulary_share_for_volume, volume_share_of_top_terms


def zipf_freqs(n=5000, exponent=1.1, scale=1e6):
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return scale / ranks ** exponent


class TestFitZipf:
    def test_recovers_exponent(self):
        fit = fit_zipf(zipf_freqs(exponent=1.1))
        assert fit.exponent == pytest.approx(1.1, abs=0.02)
        assert fit.r_squared > 0.999

    def test_recovers_other_exponent(self):
        fit = fit_zipf(zipf_freqs(exponent=0.8))
        assert fit.exponent == pytest.approx(0.8, abs=0.02)

    def test_order_invariant(self):
        freqs = zipf_freqs(100)
        shuffled = freqs.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert fit_zipf(freqs).exponent == pytest.approx(fit_zipf(shuffled).exponent)

    def test_min_frequency_drops_tail(self):
        freqs = np.concatenate([zipf_freqs(100, scale=1000), np.ones(50) * 0.5])
        fit = fit_zipf(freqs, min_frequency=1)
        assert fit.n_terms == 100

    def test_too_few_terms(self):
        with pytest.raises(WorkloadError):
            fit_zipf(np.array([5.0, 3.0]))

    def test_predicted_cf(self):
        fit = fit_zipf(zipf_freqs())
        assert fit.predicted_cf(1) == pytest.approx(1e6, rel=0.05)


class TestVolumeShares:
    def test_top_terms_dominate(self):
        freqs = zipf_freqs()
        share = volume_share_of_top_terms(freqs, 0.05)
        assert share > 0.5  # 5% of terms carry most of the volume

    def test_extremes(self):
        freqs = zipf_freqs(100)
        assert volume_share_of_top_terms(freqs, 0.0) == 0.0
        assert volume_share_of_top_terms(freqs, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            volume_share_of_top_terms(zipf_freqs(10), 1.5)
        with pytest.raises(WorkloadError):
            vocabulary_share_for_volume(zipf_freqs(10), -0.1)

    def test_empty_volume(self):
        assert volume_share_of_top_terms(np.zeros(5), 0.5) == 0.0

    def test_vocabulary_share_inverse(self):
        freqs = zipf_freqs()
        vocab_share = vocabulary_share_for_volume(freqs, 0.95)
        # with exponent ~1.1, far less than half the vocabulary carries 95%
        assert vocab_share < 0.5
        achieved = volume_share_of_top_terms(freqs, vocab_share)
        assert achieved >= 0.95 - 1e-9

    def test_uniform_distribution(self):
        freqs = np.ones(100)
        assert vocabulary_share_for_volume(freqs, 0.5) == pytest.approx(0.5)
        assert volume_share_of_top_terms(freqs, 0.3) == pytest.approx(0.3)


class TestRankFrequencyTable:
    def test_monotone(self):
        table = rank_frequency_table(zipf_freqs(), n_points=10)
        ranks = [r for r, _ in table]
        freqs = [f for _, f in table]
        assert ranks == sorted(ranks)
        assert freqs == sorted(freqs, reverse=True)

    def test_empty(self):
        assert rank_frequency_table(np.zeros(3)) == []

    def test_includes_endpoints(self):
        table = rank_frequency_table(zipf_freqs(1000), n_points=5)
        assert table[0][0] == 1
        assert table[-1][0] == 1000
