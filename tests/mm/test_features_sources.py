"""Unit tests for the MM feature substrate."""

import numpy as np
import pytest

from repro.errors import SourceExhaustedError, TopNError, WorkloadError
from repro.ir import BM25, InvertedIndex
from repro.mm import (
    ArraySource,
    PostingsSource,
    color_histograms,
    cosine_similarity,
    distance_to_similarity,
    feature_source,
    histogram_intersection,
    keyword_scores,
    l1_distances,
    l2_distances,
    query_near_cluster,
    similarity_scores,
    texture_features,
)
from repro.storage import CostCounter
from repro.workloads import SyntheticCollection, trec


class TestFeatures:
    def test_color_histograms_are_simplex(self):
        space = color_histograms(100, bins=8, seed=1)
        assert space.vectors.shape == (100, 8)
        assert np.allclose(space.vectors.sum(axis=1), 1.0)
        assert (space.vectors >= 0).all()

    def test_texture_in_unit_cube(self):
        space = texture_features(50, dim=4, seed=2)
        assert space.vectors.min() >= 0.0 and space.vectors.max() <= 1.0

    def test_keyword_scores_sparse(self):
        space = keyword_scores(1000, sparsity=0.9, seed=3)
        assert (space.vectors < 0.05).mean() > 0.7

    def test_clusters_are_coherent(self):
        space = texture_features(200, dim=6, n_clusters=4, spread=0.02, seed=4)
        # objects in the same cluster are closer than across clusters
        same = l2_distances(space.vectors[space.cluster_of == 0],
                            space.vectors[space.cluster_of == 0][0])
        other = l2_distances(space.vectors[space.cluster_of == 1],
                             space.vectors[space.cluster_of == 0][0])
        assert same.mean() < other.mean()

    def test_query_near_cluster(self):
        space = texture_features(200, n_clusters=4, seed=5)
        query = query_near_cluster(space, cluster=2, seed=5)
        assert query.shape == (space.dim,)

    def test_query_needs_clusters(self):
        space = keyword_scores(10)
        with pytest.raises(WorkloadError):
            query_near_cluster(space, 0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            color_histograms(0)
        with pytest.raises(WorkloadError):
            texture_features(10, dim=0)
        with pytest.raises(WorkloadError):
            keyword_scores(10, sparsity=1.0)


class TestDistances:
    def test_l1_l2_zero_for_self(self):
        vectors = np.array([[1.0, 2.0]])
        assert l1_distances(vectors, np.array([1.0, 2.0]))[0] == 0.0
        assert l2_distances(vectors, np.array([1.0, 2.0]))[0] == 0.0

    def test_histogram_intersection_self_is_one(self):
        histogram = np.array([[0.25, 0.75]])
        assert histogram_intersection(histogram, histogram[0])[0] == pytest.approx(1.0)

    def test_cosine_bounds(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        sims = cosine_similarity(vectors, np.array([1.0, 0.0]))
        assert sims[0] == pytest.approx(1.0)
        assert sims[1] == pytest.approx(0.0)
        assert 0 < sims[2] < 1

    def test_distance_to_similarity_monotone(self):
        distances = np.array([0.0, 1.0, 2.0])
        sims = distance_to_similarity(distances)
        assert sims[0] == 1.0
        assert sims[0] > sims[1] > sims[2]
        assert (sims > 0).all()

    def test_negative_distance_rejected(self):
        with pytest.raises(WorkloadError):
            distance_to_similarity(np.array([-1.0]))

    def test_similarity_scores_dispatch(self):
        vectors = np.random.default_rng(0).random((10, 4))
        for measure in ("l1", "l2", "histogram", "cosine"):
            scores = similarity_scores(vectors, vectors[0], measure)
            assert len(scores) == 10
            assert np.argmax(scores) == 0  # self is most similar

    def test_unknown_measure(self):
        with pytest.raises(WorkloadError):
            similarity_scores(np.ones((2, 2)), np.ones(2), "nope")

    def test_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            similarity_scores(np.ones((2, 3)), np.ones(2))


class TestArraySource:
    def test_sorted_access_descending(self):
        source = ArraySource(np.array([0.2, 0.9, 0.5]))
        assert source.sorted_access(0) == (1, 0.9)
        assert source.sorted_access(1) == (2, 0.5)
        assert source.sorted_access(2) == (0, 0.2)

    def test_tie_break_by_id(self):
        source = ArraySource(np.array([0.5, 0.5]))
        assert source.sorted_access(0)[0] == 0

    def test_random_access(self):
        source = ArraySource(np.array([0.2, 0.9]))
        assert source.random_access(1) == 0.9

    def test_access_charges(self):
        source = ArraySource(np.array([0.2, 0.9]))
        with CostCounter.activate() as cost:
            source.sorted_access(0)
            source.random_access(0)
        assert cost.sorted_accesses == 1
        assert cost.random_accesses == 1

    def test_exhaustion(self):
        source = ArraySource(np.array([0.5]))
        assert not source.exhausted(0)
        assert source.exhausted(1)
        with pytest.raises(SourceExhaustedError):
            source.sorted_access(1)

    def test_negative_scores_rejected(self):
        with pytest.raises(TopNError):
            ArraySource(np.array([-0.1]))

    def test_bad_random_access(self):
        with pytest.raises(TopNError):
            ArraySource(np.array([0.1])).random_access(5)

    def test_feature_source(self):
        space = texture_features(30, seed=6)
        source = feature_source(space, space.vectors[3], measure="l2")
        best_obj, best_score = source.sorted_access(0)
        assert best_obj == 3  # self-similarity wins
        assert best_score == pytest.approx(1.0)


class TestPostingsSource:
    @pytest.fixture(scope="class")
    def setup(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=11))
        index = InvertedIndex.build(collection)
        model = BM25()
        # pick a term with a decent posting list
        df = index.vocabulary.df_array()
        tid = int(np.argsort(df)[-50])
        return index, model, tid

    def test_sorted_access_descending(self, setup):
        index, model, tid = setup
        source = PostingsSource(index, tid, model)
        grades = [source.sorted_access(r)[1] for r in range(min(10, source.posting_length))]
        assert grades == sorted(grades, reverse=True)

    def test_random_access_matches_sorted(self, setup):
        index, model, tid = setup
        source = PostingsSource(index, tid, model)
        obj, grade = source.sorted_access(0)
        assert source.random_access(obj) == pytest.approx(grade)

    def test_absent_object_grades_zero(self, setup):
        index, model, tid = setup
        source = PostingsSource(index, tid, model)
        docs, _ = index.postings(tid)
        absent = next(d for d in range(index.n_docs) if d not in set(docs.tolist()))
        assert source.random_access(absent) == 0.0

    def test_exhausted_after_postings(self, setup):
        index, model, tid = setup
        source = PostingsSource(index, tid, model)
        assert source.exhausted(source.posting_length)
        assert not source.exhausted(source.posting_length - 1)

    def test_n_objects_is_collection_size(self, setup):
        index, model, tid = setup
        assert PostingsSource(index, tid, model).n_objects == index.n_docs
