"""Tests for the metrics registry and its zero-cost disabled mode."""

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts disabled with an empty registry."""
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


class TestInstruments:
    def test_counter(self):
        c = metrics.Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = metrics.Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram(self):
        h = metrics.Histogram("x")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.summary() == {"count": 3, "sum": 15.0, "min": 2.0,
                               "max": 8.0, "mean": 5.0}

    def test_empty_histogram_summary(self):
        h = metrics.Histogram("x")
        assert h.summary() == {"count": 0, "sum": 0.0, "min": None,
                               "max": None, "mean": 0.0}


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = metrics.MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGlobalFacade:
    def test_disabled_helpers_record_nothing(self):
        assert not metrics.enabled()
        metrics.inc("buffer.hits", 5)
        metrics.set_gauge("pool", 3)
        metrics.observe("lengths", 9.0)
        assert metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_accessors_hand_out_shared_noops(self):
        """Identity of the no-op singletons: the hot-path guarantee."""
        assert metrics.counter("a") is metrics.counter("b") is metrics.NOOP_COUNTER
        assert metrics.gauge("a") is metrics.NOOP_GAUGE
        assert metrics.histogram("a") is metrics.NOOP_HISTOGRAM
        # using them is inert
        metrics.counter("a").inc(100)
        assert metrics.snapshot()["counters"] == {}

    def test_enabled_records(self):
        metrics.enable()
        metrics.inc("buffer.hits")
        metrics.inc("buffer.hits", 2)
        metrics.set_gauge("pool", 4)
        metrics.observe("lengths", 2.0)
        snap = metrics.snapshot()
        assert snap["counters"]["buffer.hits"] == 3
        assert snap["gauges"]["pool"] == 4.0
        assert snap["histograms"]["lengths"]["count"] == 1

    def test_instruments_survive_disable_cycle(self):
        metrics.enable()
        metrics.inc("kept")
        metrics.disable()
        metrics.inc("kept")  # ignored
        assert metrics.snapshot()["counters"]["kept"] == 1
