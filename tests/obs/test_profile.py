"""Tests for profiled runs and the ``repro profile`` CLI.

The acceptance invariant lives here: the span tree's exclusive
("self") cost deltas must sum to the run's CostCounter totals —
instrumentation never loses or double-counts simulated work.
"""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.mm import ArraySource
from repro.obs import run_profiled
from repro.topn import (
    combined_topn,
    fagin_topn,
    naive_topn_sources,
    nra_topn,
    threshold_topn,
)


def make_sources(seed=0, n_objects=300, m=3):
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_objects, m))
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(m)]


ENGINES = [naive_topn_sources, fagin_topn, threshold_topn, nra_topn, combined_topn]


class TestCostReconciliation:
    @pytest.mark.parametrize("engine", ENGINES,
                             ids=lambda e: e.__name__)
    def test_self_costs_sum_to_totals(self, engine):
        """The acceptance criterion: per-span exclusive cost deltas sum
        to the CostCounter totals for every engine."""
        report = run_profiled(lambda: engine(make_sources(), 10))
        self_totals = report.self_cost_totals()
        for key, value in report.totals.items():
            assert self_totals.get(key, 0) == value, key
        # the untraced remainder is exactly zero for fully-spanned engines
        assert all(v == 0 for v in report.untraced().values())

    def test_untraced_work_is_reported_not_lost(self):
        from repro.storage import stats

        def partly_traced():
            stats.charge_tuples_read(7)  # outside every span
            return threshold_topn(make_sources(), 5)

        report = run_profiled(partly_traced)
        assert report.untraced()["tuples_read"] == 7
        self_totals = report.self_cost_totals()
        assert report.totals["tuples_read"] == self_totals["tuples_read"] + 7


class TestProfileReport:
    def test_result_and_metrics_captured(self):
        report = run_profiled(lambda: threshold_topn(make_sources(), 5))
        assert len(report.result) == 5
        assert report.result.strategy == "fagin-ta"
        assert set(report.metrics) == {"counters", "gauges", "histograms"}

    def test_render_text_has_tree_and_total(self):
        report = run_profiled(lambda: threshold_topn(make_sources(), 5))
        text = report.render_text()
        assert "topn.ta" in text
        assert "TOTAL (CostCounter)" in text
        assert "sort_acc" in text

    def test_render_text_event_limit(self):
        report = run_profiled(lambda: threshold_topn(make_sources(), 5))
        shown = report.render_text(max_events=2)
        assert "* ta.round" in shown
        assert "more events" in shown
        hidden = report.render_text(max_events=0)
        assert "* ta.round" not in hidden

    def test_to_dict_shape(self):
        report = run_profiled(lambda: fagin_topn(make_sources(), 5))
        payload = report.to_dict()
        assert payload["totals"] == report.totals
        names = [s["name"] for s in payload["spans"]]
        assert "topn.fa" in names
        assert "fa.sorted_phase" in names
        json.dumps(payload)  # JSON-able throughout

    def test_export_jsonl(self, tmp_path):
        report = run_profiled(lambda: nra_topn(make_sources(), 5))
        path = tmp_path / "trace.jsonl"
        count = report.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(list(report.spans()))
        assert json.loads(lines[0])["name"] == "topn.nra"

    def test_metrics_state_restored(self):
        from repro.obs import metrics

        assert not metrics.enabled()
        run_profiled(lambda: threshold_topn(make_sources(), 3))
        assert not metrics.enabled()


class TestProfileCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_topn_scenario_text(self):
        code, text = self.run_cli("profile", "topn", "--algo", "ta",
                                  "--n", "5", "--objects", "400")
        assert code == 0
        assert "topn.ta" in text
        assert "TOTAL (CostCounter)" in text

    def test_topn_scenario_json_reconciles(self):
        code, text = self.run_cli("profile", "topn", "--algo", "fa",
                                  "--n", "5", "--objects", "400", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["totals"] == payload["self_cost_totals"]
        assert all(v == 0 for v in payload["untraced"].values())

    def test_example1_scenario(self):
        code, text = self.run_cli("profile", "example1")
        assert code == 0
        assert "optimizer.optimize" in text
        assert "algebra.evaluate" in text

    def test_search_scenario(self):
        code, text = self.run_cli("--scale", "0.01", "profile", "search",
                                  "--terms", "data")
        assert code == 0
        assert "frag.query" in text

    def test_export(self, tmp_path):
        path = tmp_path / "out.jsonl"
        code, _ = self.run_cli("profile", "topn", "--algo", "nra",
                               "--objects", "300", "--export", str(path))
        assert code == 0
        assert path.exists()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "topn.nra"
