"""Trace-derived regression invariants over the Fagin-family engines.

These pin theoretically-grounded relationships as executable checks:
TA never reads deeper down the sorted lists than FA on the same
instance, NRA issues no random accesses at all, and the per-engine
traced costs agree with the CostCounter totals.  A future engine
change that silently breaks one of these properties fails here rather
than only showing up as a benchmark regression.
"""

import numpy as np
import pytest

from repro.mm import ArraySource
from repro.obs import run_profiled, tracer
from repro.storage import CostCounter
from repro.topn import SUM, fagin_topn, naive_topn_sources, nra_topn, threshold_topn


def make_sources(seed, n_objects=400, m=3):
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_objects, m))
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(m)]


def cost_of(fn):
    with CostCounter.activate() as cost:
        fn()
    return cost.snapshot()


class TestAccessInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("n", [1, 5, 20])
    def test_ta_sorted_accesses_at_most_fa(self, seed, n):
        """TA's stopping rule fires no later than FA's on any instance
        (both advance the m lists in lockstep here)."""
        ta_cost = cost_of(lambda: threshold_topn(make_sources(seed), n, SUM))
        fa_cost = cost_of(lambda: fagin_topn(make_sources(seed), n, SUM))
        assert ta_cost["sorted_accesses"] <= fa_cost["sorted_accesses"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nra_issues_no_random_accesses(self, seed):
        cost = cost_of(lambda: nra_topn(make_sources(seed), 10, SUM))
        assert cost["random_accesses"] == 0
        assert cost["sorted_accesses"] > 0

    def test_naive_sources_random_only(self):
        cost = cost_of(lambda: naive_topn_sources(make_sources(7), 10, SUM))
        assert cost["sorted_accesses"] == 0
        assert cost["random_accesses"] == 400 * 3


class TestTracedCostsMatchCounter:
    @pytest.mark.parametrize("engine", [fagin_topn, threshold_topn, nra_topn],
                             ids=lambda e: e.__name__)
    def test_root_span_inclusive_cost_equals_totals(self, engine):
        report = run_profiled(lambda: engine(make_sources(11), 8))
        (root,) = report.roots
        for key, value in report.totals.items():
            assert root.cost.get(key, 0) == value, key

    def test_ta_round_events_track_stop_depth(self):
        report = run_profiled(lambda: threshold_topn(make_sources(13), 5))
        (root,) = report.roots
        rounds = [e for e in root.events if e["name"] == "ta.round"]
        assert len(rounds) == root.attrs["depth"]
        # thresholds are non-increasing down the sorted lists
        taus = [e["attrs"]["threshold"] for e in rounds]
        assert all(a >= b for a, b in zip(taus, taus[1:]))
        # each round costs one sorted access per list
        assert report.totals["sorted_accesses"] == root.attrs["depth"] * 3

    def test_stats_and_span_agree_on_stop_reason(self):
        report = run_profiled(lambda: threshold_topn(make_sources(17), 5))
        (root,) = report.roots
        assert report.result.stats["stop_reason"] == root.attrs["stop_reason"]


class TestDisabledOverheadPath:
    """The no-op path: engines under no session must allocate nothing
    in the tracer and return identical answers."""

    def test_span_calls_share_the_noop_singleton(self):
        assert not tracer.enabled()
        handles = {id(tracer.span(name)) for name in ("a", "b", "c")}
        assert handles == {id(tracer.NOOP_SPAN)}

    @pytest.mark.parametrize("engine", [fagin_topn, threshold_topn, nra_topn],
                             ids=lambda e: e.__name__)
    def test_results_identical_traced_vs_untraced(self, engine):
        plain = engine(make_sources(23), 10)
        traced = run_profiled(lambda: engine(make_sources(23), 10)).result
        assert plain.same_ranking(traced)
        assert plain.scores == traced.scores

    def test_untraced_run_buffers_nothing(self):
        """A run without a session must not grow any trace state."""
        threshold_topn(make_sources(29), 5)
        assert tracer.current_session() is None

    def test_costs_identical_traced_vs_untraced(self):
        """Tracing observes the cost model; it never perturbs it."""
        plain = cost_of(lambda: threshold_topn(make_sources(31), 8))
        traced = run_profiled(lambda: threshold_topn(make_sources(31), 8)).totals
        assert plain == traced
