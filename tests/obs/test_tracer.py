"""Tests for the span tracer: nesting, cost attribution, bounds,
events, export, and the disabled fast path."""

import json

import pytest

from repro.obs import tracer
from repro.storage import stats


class TestSpanNesting:
    def test_parent_child_links(self):
        with tracer.trace_session() as session:
            with tracer.span("outer", a=1):
                with tracer.span("inner"):
                    pass
        (outer,) = session.roots
        assert outer.name == "outer"
        assert outer.attrs == {"a": 1}
        assert outer.parent_id is None
        assert outer.depth == 0
        (inner,) = outer.children
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1

    def test_siblings(self):
        with tracer.trace_session() as session:
            with tracer.span("root"):
                with tracer.span("a"):
                    pass
                with tracer.span("b"):
                    pass
        (root,) = session.roots
        assert [child.name for child in root.children] == ["a", "b"]

    def test_walk_is_depth_first(self):
        with tracer.trace_session() as session:
            with tracer.span("r"):
                with tracer.span("a"):
                    with tracer.span("a1"):
                        pass
                with tracer.span("b"):
                    pass
        names = [record.name for record in session.spans()]
        assert names == ["r", "a", "a1", "b"]

    def test_exception_closes_span_and_marks_error(self):
        with tracer.trace_session() as session:
            with pytest.raises(ValueError):
                with tracer.span("boom"):
                    raise ValueError("x")
            # the span must have been finished despite the exception
            assert not session.stack
        (record,) = session.roots
        assert record.attrs["error"] == "ValueError"

    def test_annotate_and_set(self):
        with tracer.trace_session() as session:
            with tracer.span("s") as handle:
                handle.set(k=1)
                tracer.annotate(depth=7)
        (record,) = session.roots
        assert record.attrs == {"k": 1, "depth": 7}


class TestCostAttribution:
    def test_span_cost_is_charge_delta(self):
        with tracer.trace_session() as session:
            with tracer.span("work"):
                stats.charge_tuples_read(5)
                stats.charge_comparisons(3)
        (record,) = session.roots
        assert record.cost["tuples_read"] == 5
        assert record.cost["comparisons"] == 3

    def test_self_cost_excludes_children(self):
        with tracer.trace_session() as session:
            with tracer.span("parent"):
                stats.charge_tuples_read(2)
                with tracer.span("child"):
                    stats.charge_tuples_read(10)
                stats.charge_tuples_read(1)
        (parent,) = session.roots
        assert parent.cost["tuples_read"] == 13
        assert parent.self_cost["tuples_read"] == 3
        assert parent.children[0].self_cost["tuples_read"] == 10

    def test_self_cost_totals_match_counter(self):
        """Summed self costs reconstruct the session counter exactly."""
        with tracer.trace_session() as session:
            with tracer.span("a"):
                stats.charge_tuples_read(4)
                with tracer.span("b"):
                    stats.charge_comparisons(9)
            with tracer.span("c"):
                stats.charge_page_reads(2)
        totals = session.self_cost_totals()
        assert totals["tuples_read"] == 4
        assert totals["comparisons"] == 9
        assert totals["page_reads"] == 2

    def test_session_counter_is_stacked(self):
        """An enclosing CostCounter still sees work done under tracing."""
        with stats.CostCounter.activate() as outer:
            with tracer.trace_session():
                with tracer.span("w"):
                    stats.charge_tuples_read(6)
        assert outer.tuples_read == 6


class TestEvents:
    def test_event_lands_on_innermost_span(self):
        with tracer.trace_session() as session:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    tracer.event("tick", round=1)
        (outer,) = session.roots
        assert outer.events == []
        (entry,) = outer.children[0].events
        assert entry["name"] == "tick"
        assert entry["attrs"] == {"round": 1}

    def test_orphan_events_kept_separately(self):
        with tracer.trace_session() as session:
            tracer.event("lonely", x=1)
        assert session.roots == type(session.roots)()
        (entry,) = session.orphan_events
        assert entry["name"] == "lonely"

    def test_orphan_events_bounded(self):
        with tracer.trace_session() as session:
            for i in range(2000):
                tracer.event("e", i=i)
        assert len(session.orphan_events) == 1024


class TestBufferBound:
    def test_oldest_roots_dropped(self):
        with tracer.trace_session(max_spans=3) as session:
            for i in range(5):
                with tracer.span(f"r{i}"):
                    pass
        assert [record.name for record in session.roots] == ["r2", "r3", "r4"]
        assert session.dropped == 2

    def test_children_not_counted_against_bound(self):
        with tracer.trace_session(max_spans=2) as session:
            with tracer.span("root"):
                for i in range(10):
                    with tracer.span(f"c{i}"):
                        pass
        assert session.dropped == 0
        assert len(session.roots) == 1
        assert len(session.roots[0].children) == 10


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        with tracer.trace_session() as session:
            with tracer.span("a", n=3):
                stats.charge_tuples_read(2)
                with tracer.span("b"):
                    tracer.event("tick")
        path = tmp_path / "trace.jsonl"
        count = session.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[0]["attrs"] == {"n": 3}
        assert records[0]["cost"]["tuples_read"] == 2
        assert records[1]["parent_id"] == records[0]["span_id"]
        assert records[1]["events"][0]["name"] == "tick"

    def test_empty_trace_exports_empty_file(self, tmp_path):
        with tracer.trace_session() as session:
            pass
        path = tmp_path / "empty.jsonl"
        assert session.export_jsonl(path) == 0
        assert path.read_text() == ""


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        assert not tracer.enabled()
        assert tracer.span("x", n=1) is tracer.NOOP_SPAN
        assert tracer.span("y") is tracer.NOOP_SPAN

    def test_noop_span_is_inert_context_manager(self):
        with tracer.span("x") as handle:
            assert handle is tracer.NOOP_SPAN
            assert handle.set(a=1) is tracer.NOOP_SPAN

    def test_event_and_annotate_are_noops(self):
        tracer.event("nothing", x=1)
        tracer.annotate(y=2)

    def test_session_lifecycle(self):
        session = tracer.start_session()
        assert tracer.enabled()
        assert tracer.current_session() is session
        with pytest.raises(RuntimeError):
            tracer.start_session()
        assert tracer.stop_session() is session
        assert not tracer.enabled()
        assert tracer.stop_session() is None

    def test_stop_closes_open_spans(self):
        tracer.start_session()
        tracer.span("left-open").__enter__()
        session = tracer.stop_session()
        assert not session.stack
        (record,) = session.roots
        assert record.t_end >= record.t_start
