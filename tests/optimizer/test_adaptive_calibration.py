"""Tests for the calibration store: ingest hardening, λ extraction,
weight fitting, k-NN predictors, and the versioned persistence."""

import json

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.obs import run_profiled, tracer
from repro.obs.tracer import TRACE_SCHEMA_VERSION
from repro.optimizer.adaptive import (
    Calibration,
    CalibrationStore,
    QueryFeatures,
    train_calibration,
)
from repro.optimizer.adaptive.calibration import (
    CALIBRATION_VERSION,
    COST_KEYS,
    DEFAULT_WEIGHTS,
    _decay_from_events,
)
from repro.topn import threshold_topn
from repro.mm.sources import ArraySource


def _engine_record(engine="ta", n=10, m=3, objects=500, depth=40.0,
                   cost=None, duration=0.01, version=TRACE_SCHEMA_VERSION):
    record = {
        "schema_version": version,
        "span_id": 1,
        "parent_id": None,
        "name": f"topn.{engine}",
        "depth": 0,
        "attrs": {"n": n, "m": m, "objects": objects, "depth": depth},
        "t_start": 0.0,
        "t_end": duration,
        "duration": duration,
        "cost": cost or {"sorted_accesses": depth * m,
                         "random_accesses": depth * m * (m - 1),
                         "comparisons": depth},
        "self_cost": cost or {"sorted_accesses": depth * m},
        "events": [],
    }
    if version is None:
        del record["schema_version"]
    return record


class TestSchemaVersionExport:
    def test_span_to_dict_carries_schema_version(self):
        with tracer.trace_session() as session:
            with tracer.span("topn.ta", n=5, m=2, objects=10):
                pass
            records = [record.to_dict() for record in session.spans()]
        assert records
        assert all(r["schema_version"] == TRACE_SCHEMA_VERSION for r in records)
        assert next(iter(records[0])) == "schema_version"

    def test_profile_export_jsonl_carries_schema_version(self, tmp_path):
        sources = [ArraySource(np.linspace(0.1, 1.0, 50)) for _ in range(2)]
        report = run_profiled(lambda: threshold_topn(sources, 3))
        path = tmp_path / "trace.jsonl"
        report.export_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            assert json.loads(line)["schema_version"] == TRACE_SCHEMA_VERSION


class TestIngestHardening:
    def test_unknown_version_skipped_with_warning(self):
        store = CalibrationStore()
        stats = store.ingest_records([
            _engine_record(),
            _engine_record(version=99),
            _engine_record(version=None),
        ], source="unit")
        assert stats.engine_spans == 1
        assert stats.skipped == 2
        assert len(store.observations) == 1
        joined = " ".join(stats.warnings)
        assert "99" in joined and "<missing>" in joined

    def test_damaged_jsonl_lines_skipped_with_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_engine_record()) + "\n"
                        + "{not json at all\n"
                        + json.dumps(_engine_record(engine="nra")) + "\n")
        store = CalibrationStore()
        stats = store.ingest_jsonl(path)
        assert stats.engine_spans == 2
        assert stats.skipped == 1
        assert any("damaged" in warning for warning in stats.warnings)

    def test_non_dict_records_skipped(self):
        store = CalibrationStore()
        stats = store.ingest_records([[1, 2, 3], "nope", _engine_record()])
        assert stats.skipped == 2
        assert len(store.observations) == 1

    def test_empty_store_fit_raises(self):
        with pytest.raises(CalibrationError, match="empty"):
            CalibrationStore().fit()


class TestDecayExtraction:
    def test_lambda_from_ta_round_thresholds(self):
        # τ(d) = 3 e^{-0.05 d}: λ must come back as 0.05
        events = [{"name": "ta.round",
                   "attrs": {"depth": d, "threshold": 3.0 * np.exp(-0.05 * d)}}
                  for d in range(1, 41)]
        lam = _decay_from_events(events)
        assert lam == pytest.approx(0.05, rel=1e-6)

    def test_no_thresholds_means_no_decay(self):
        assert _decay_from_events([]) is None
        assert _decay_from_events(
            [{"name": "nra.check", "attrs": {"depth": 5}}]) is None
        assert _decay_from_events(
            [{"name": "ta.round", "attrs": {"depth": 1, "threshold": 2.0}}]) is None

    def test_real_ta_trace_yields_positive_decay(self):
        rng = np.random.default_rng(5)
        sources = [ArraySource(rng.random(400) ** 6) for _ in range(3)]
        store = CalibrationStore()
        with tracer.trace_session() as session:
            threshold_topn(sources, 5)
            for root in session.roots:
                store.observe_span(root.to_dict())
        assert len(store.observations) == 1
        decay = store.observations[0].features.decay
        assert decay is not None and decay > 0


class TestWeightFit:
    def test_recovers_planted_weight_ratios(self):
        # wall = 1·SA + 2·RA (in arbitrary time units): the fitted
        # weights must come back normalized to SA=1, RA=2
        rng = np.random.default_rng(0)
        store = CalibrationStore()
        records = []
        for i in range(40):
            sa = float(rng.integers(10, 1000))
            ra = float(rng.integers(10, 1000))
            wall = (sa + 2.0 * ra) * 1e-6
            records.append({
                "schema_version": TRACE_SCHEMA_VERSION,
                "span_id": i, "parent_id": None, "name": "work",
                "depth": 0, "attrs": {}, "t_start": 0.0, "t_end": wall,
                "duration": wall,
                "cost": {"sorted_accesses": sa, "random_accesses": ra},
                "self_cost": {"sorted_accesses": sa, "random_accesses": ra},
                "events": [],
            })
        store.ingest_records(records)
        calibration = store.fit()  # weight rows alone are enough evidence
        assert calibration.meta["weights_fitted"]
        assert calibration.weights["sorted_accesses"] == pytest.approx(1.0)
        assert calibration.weights["random_accesses"] == pytest.approx(2.0, rel=0.05)
        # counters never observed keep their default weight
        assert calibration.weights["page_reads"] == DEFAULT_WEIGHTS["page_reads"]

    def test_too_few_rows_keeps_defaults(self):
        store = CalibrationStore()
        store.ingest_records([_engine_record()])
        calibration = store.fit()
        assert not calibration.meta["weights_fitted"]
        assert calibration.weights == DEFAULT_WEIGHTS


class TestEngineModels:
    def test_knn_recovers_cluster_means(self):
        store = CalibrationStore()
        # two clusters of TA runs: small-n cheap, large-n expensive
        for n, depth in [(5, 20.0)] * 5 + [(100, 900.0)] * 5:
            store.observe_span(_engine_record(n=n, objects=1000, depth=depth,
                                              cost={"sorted_accesses": depth}))
        calibration = store.fit()
        cheap = calibration.predict_cost(
            "ta", QueryFeatures(n=5, m=3, objects=1000))
        pricey = calibration.predict_cost(
            "ta", QueryFeatures(n=100, m=3, objects=1000))
        assert cheap == pytest.approx(20.0, rel=0.01)
        assert pricey == pytest.approx(900.0, rel=0.01)
        assert calibration.predict_depth(
            "ta", QueryFeatures(n=5, m=3, objects=1000)) == pytest.approx(20.0, rel=0.01)

    def test_unknown_engine_predicts_none(self):
        store = CalibrationStore()
        store.observe_span(_engine_record())
        calibration = store.fit()
        assert calibration.predict_cost(
            "nra", QueryFeatures(n=5, m=3, objects=100)) is None


class TestPersistence:
    def test_round_trip_preserves_predictions(self, tmp_path):
        calibration = train_calibration(seed=11, objects=250,
                                        queries_per_class=2)
        path = tmp_path / "calibration.json"
        calibration.save(path)
        loaded = Calibration.load(path)
        feats = QueryFeatures(n=10, m=3, objects=250, decay=0.05,
                              agreement=0.3)
        for engine in ("fa", "ta", "nra", "ca"):
            assert loaded.predict_cost(engine, feats) == pytest.approx(
                calibration.predict_cost(engine, feats))
        assert loaded.weights == calibration.weights
        assert loaded.constants == calibration.constants

    def test_version_mismatch_raises(self, tmp_path):
        payload = Calibration.uncalibrated().to_json()
        payload["version"] = CALIBRATION_VERSION + 1
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError, match="version"):
            Calibration.load(path)

    def test_damaged_file_raises(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{broken")
        with pytest.raises(CalibrationError, match="damaged"):
            Calibration.load(path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(CalibrationError):
            Calibration.load(path)


class TestCalibratedCostModel:
    def test_constants_flow_into_cost_model(self):
        calibration = Calibration.uncalibrated()
        calibration.constants.update({"tuple_write": 0.8, "comparison": 0.4,
                                      "select_selectivity": 0.2,
                                      "dedup_ratio": 0.9})
        model = calibration.cost_model()
        assert model.tuple_write == 0.8
        assert model.comparison == 0.4
        assert model.select_selectivity == 0.2
        assert model.dedup_ratio == 0.9
        # overrides win
        assert calibration.cost_model(comparison=1.5).comparison == 1.5

    def test_charged_cost_is_linear_in_counters(self):
        calibration = Calibration.uncalibrated()
        counters = {key: 10 for key in COST_KEYS}
        expected = sum(DEFAULT_WEIGHTS[key] * 10 for key in COST_KEYS)
        assert calibration.charged_cost(counters) == pytest.approx(expected)
        assert calibration.charged_cost({}) == 0.0
