"""Tests for the adaptive plan chooser: candidate enumeration, the
Pareto frontier, quality-floor gating, certification, synopsis-derived
query features, and the two ``repro explain`` scenarios."""

import numpy as np
import pytest

from repro.cache import QueryCache, QueryFingerprint
from repro.optimizer.adaptive import (
    Calibration,
    choose,
    choose_engine,
    enumerate_candidates,
    explain_example1,
    explain_topn,
    pareto_frontier,
    query_features,
    train_calibration,
)
from repro.optimizer.adaptive.chooser import SCALAR_ENGINES, PlanCandidate
from repro.optimizer.adaptive.workload import corpus_matrix, make_sources


@pytest.fixture(scope="module")
def uniform_sources():
    rng = np.random.default_rng(3)
    return make_sources(corpus_matrix("uniform", 300, 3, rng), prefix="u")


def _names(candidates):
    return [candidate.name for candidate in candidates]


class TestEnumeration:
    def test_scalar_engines_and_budget_plan_always_present(self, uniform_sources):
        names = _names(enumerate_candidates(uniform_sources, 10))
        for expected in SCALAR_ENGINES:
            assert expected in names
        assert "ta_budget" in names
        assert "naive" not in names and "cached" not in names

    def test_blocked_variants_need_blocked_sources(self, uniform_sources):
        from repro.mm.sources import BlockedSource

        rng = np.random.default_rng(3)
        matrix = corpus_matrix("uniform", 300, 3, rng)
        blocked = [BlockedSource.from_array(matrix[:, j], 32, name=f"b{j}")
                   for j in range(3)]
        names = _names(enumerate_candidates(uniform_sources, 10,
                                            blocked_sources=blocked))
        assert {"blocked_ta", "blocked_nra", "blocked_ca"} <= set(names)
        # blocked estimates pay the block-granularity overshoot
        by_name = {c.name: c for c in enumerate_candidates(
            uniform_sources, 10, blocked_sources=blocked)}
        assert by_name["blocked_ta"].est_cost > by_name["ta"].est_cost

    def test_cached_candidate_appears_on_peek_hit_only(self, uniform_sources):
        from repro.topn import naive_topn_sources

        cache = QueryCache()
        fingerprint = QueryFingerprint(kind="topn", terms=("u",),
                                       aggregate="sum", epoch=0)
        names = _names(enumerate_candidates(uniform_sources, 10, cache=cache,
                                            fingerprint=fingerprint))
        assert "cached" not in names  # nothing stored yet
        cache.store(fingerprint, 10, naive_topn_sources(uniform_sources, 10))
        hits_before = cache.counters()["hits"]
        candidates = enumerate_candidates(uniform_sources, 10, cache=cache,
                                          fingerprint=fingerprint)
        by_name = {c.name: c for c in candidates}
        assert "cached" in by_name
        assert by_name["cached"].est_cost == 0.0
        # enumeration peeks: hit statistics are not distorted
        assert cache.counters()["hits"] == hits_before

    def test_every_candidate_is_certified_and_clean(self, uniform_sources):
        for candidate in enumerate_candidates(uniform_sources, 10,
                                              include_naive=True):
            assert candidate.verifier_clean, candidate.name
            assert candidate.certified is not False, candidate.name

    def test_knn_estimator_used_when_calibrated(self, uniform_sources):
        calibration = train_calibration(seed=13, objects=300,
                                        queries_per_class=2)
        candidates = enumerate_candidates(uniform_sources, 10,
                                          calibration=calibration)
        estimators = {c.name: c.estimator for c in candidates
                      if c.name in SCALAR_ENGINES}
        assert set(estimators.values()) == {"knn"}


class TestParetoFrontier:
    def test_non_dominated_set(self):
        def plan(name, cost, quality):
            return PlanCandidate(name=name, engine=name, safe=quality >= 1,
                                 est_cost=cost, quality=quality)

        cheap_exact = plan("a", 10.0, 1.0)
        pricey_exact = plan("b", 20.0, 1.0)       # dominated by a
        cheaper_lossy = plan("c", 4.0, 0.7)       # frontier: cheaper
        dominated_lossy = plan("d", 12.0, 0.7)    # dominated by a and c
        frontier = pareto_frontier([cheap_exact, pricey_exact, cheaper_lossy,
                                    dominated_lossy])
        assert frontier == [cheap_exact, cheaper_lossy]
        assert cheap_exact.on_frontier and cheaper_lossy.on_frontier
        assert not pricey_exact.on_frontier and not dominated_lossy.on_frontier


class TestChoose:
    def test_default_floor_excludes_unsafe_plans(self, uniform_sources):
        candidates = enumerate_candidates(uniform_sources, 10)
        decision = choose(candidates)
        assert decision.chosen is not None
        assert decision.chosen.safe and decision.chosen.quality == 1.0
        assert decision.chosen.name != "ta_budget"
        assert "ta_budget" in decision.why  # named as below the floor

    def test_low_floor_admits_the_budget_plan(self, uniform_sources):
        candidates = enumerate_candidates(uniform_sources, 10)
        budget = next(c for c in candidates if c.name == "ta_budget")
        assert budget.quality < 1.0
        decision = choose(candidates, quality_floor=budget.quality - 0.01)
        eligible_costs = {c.name: c.est_cost for c in candidates
                          if c.quality >= budget.quality - 0.01 - 1e-9}
        assert decision.chosen.name == min(eligible_costs, key=eligible_costs.get)

    def test_uncertified_candidates_are_never_chosen(self):
        good = PlanCandidate(name="good", engine="ta", safe=True,
                             est_cost=100.0, quality=1.0, certified=True)
        cheat = PlanCandidate(name="cheat", engine="ta", safe=True,
                              est_cost=1.0, quality=1.0, certified=False)
        dirty = PlanCandidate(name="dirty", engine="ta", safe=True,
                              est_cost=2.0, quality=1.0, certified=True,
                              verifier_clean=False)
        decision = choose([good, cheat, dirty])
        assert decision.chosen is good

    def test_no_eligible_candidate_chooses_none(self):
        lossy = PlanCandidate(name="lossy", engine="ta", safe=False,
                              est_cost=1.0, quality=0.5)
        decision = choose([lossy], quality_floor=1.0)
        assert decision.chosen is None
        assert "no candidate" in decision.why

    def test_decision_to_dict_is_json_shaped(self, uniform_sources):
        import json

        decision = choose(enumerate_candidates(uniform_sources, 10))
        payload = decision.to_dict()
        json.dumps(payload)  # serializable (diagnostics stay live objects)
        assert payload["chosen"] == decision.chosen.name
        assert len(payload["candidates"]) == len(decision.candidates)


class TestQueryFeatures:
    def test_skewed_corpus_decays_faster_than_uniform(self):
        rng = np.random.default_rng(9)
        skewed = make_sources(corpus_matrix("skewed", 400, 3, rng), prefix="s")
        uniform = make_sources(corpus_matrix("uniform", 400, 3, rng), prefix="u")
        decay_s = query_features(skewed, 10).decay
        decay_u = query_features(uniform, 10).decay
        assert decay_s is not None and decay_u is not None
        assert decay_s > decay_u

    def test_correlated_sources_agree_near_one(self):
        rng = np.random.default_rng(9)
        correlated = make_sources(corpus_matrix("correlated", 400, 3, rng),
                                  prefix="c")
        uniform = make_sources(corpus_matrix("uniform", 400, 3, rng),
                               prefix="u")
        agreement_c = query_features(correlated, 10).agreement
        agreement_u = query_features(uniform, 10).agreement
        # the 10% noise still reorders the tightly spaced top ranks, so
        # the absolute overlap is modest — but it must clearly beat the
        # independent-sources baseline (~top/objects)
        assert agreement_c > 0.2
        assert agreement_c > 2 * agreement_u

    def test_single_source_agreement_is_one(self):
        rng = np.random.default_rng(9)
        single = make_sources(corpus_matrix("uniform", 100, 1, rng), prefix="o")
        assert query_features(single, 5).agreement == 1.0

    def test_choose_engine_returns_all_estimates(self, uniform_sources):
        engine, estimates = choose_engine(uniform_sources, 10)
        assert set(estimates) == set(SCALAR_ENGINES)
        assert estimates[engine] == min(estimates.values())


class TestExplain:
    def test_topn_report_renders_box_table_with_pick(self):
        report = explain_topn(corpus="uniform", n=5, objects=250, seed=4)
        text = report.render_text()
        assert "┌" in text and "┼" in text and "└" in text
        assert "<==" in text
        assert report.winner in text
        assert report.ok
        # every executed candidate got an observed cost on the same scale
        for row in report.rows:
            if row.name != "cached":
                assert row.observed_cost is not None and row.observed_cost > 0

    def test_topn_report_diagnostics_feed_the_shared_payload(self):
        report = explain_topn(corpus="skewed", n=5, objects=250, seed=4)
        payload = report.diagnostics.to_dict()
        assert payload["source"] == "explain:topn:skewed"
        assert not report.diagnostics.has_errors

    def test_example1_rows_match_optimizer_candidates(self):
        from repro.algebra import parse
        from repro.optimizer import Optimizer

        report = explain_example1()
        pipeline = Optimizer().optimize(
            parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)"))
        assert len(report.rows) == len(pipeline.candidates)
        assert report.ok
        winner = next(row for row in report.rows if row.chosen)
        assert winner.name == str(pipeline.optimized)
        assert "rewrite step(s)" in report.why

    def test_quality_floor_flows_into_report(self):
        report = explain_topn(corpus="uniform", n=5, objects=250, seed=4,
                              quality_floor=0.4)
        assert report.quality_floor == 0.4
        assert f"quality_floor={0.4:g}" in report.render_text()
