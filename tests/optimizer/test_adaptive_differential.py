"""Differential tests: the *calibrated* cost model must order plans the
way execution does.

Two layers of evidence:

* the E10 equivalent-plan pairs (inlined here at test scale — tests
  cannot import from ``benchmarks/``): the uncalibrated model already
  picks the measured winner of each pair, and a model refitted from
  trace evidence must keep doing so — calibration may move constants,
  never flip a conformance ordering;
* TA vs NRA on the adaptive workload classes: whenever the observed
  charged-cost gap between the two engines is decisive, the calibrated
  k-NN predictors must point the same way (tolerance-aware — near-ties
  carry no signal and are not asserted).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.optimizer.adaptive import (
    Calibration,
    query_features,
    train_calibration,
)
from repro.optimizer.adaptive.workload import CORPUS_KINDS, corpus_matrix, make_sources
from repro.storage import CostCounter
from repro.topn import nra_topn, threshold_topn

# -- the E10 pair suite, inlined at test scale ---------------------------------

N = 5_000

EQUIVALENT_PAIRS = [
    ("select(projecttobag(sorted_xs), 100, 200)",
     "projecttobag(select(sorted_xs, 100, 200))"),
    ("slice(sort(bag, 1), 0, 10)", "topn(bag, 10)"),
    ("select(select(random_xs, 1000, 40000), 2000, 3000)",
     "select(random_xs, 2000, 3000)"),
]


@pytest.fixture(scope="module")
def env():
    rng = np.random.default_rng(101)
    return {
        "sorted_xs": make_list(list(range(N))),
        "random_xs": make_list(rng.permutation(N).tolist()),
        "bag": make_bag(rng.random(N).tolist()),
    }


@pytest.fixture(scope="module")
def fitted():
    return train_calibration(seed=17, objects=300, queries_per_class=3)


def measure(expr_text, env):
    with CostCounter.activate() as cost:
        evaluate(parse(expr_text), env)
    return cost.tuples_read + cost.comparisons


def _orders_pairs(model, env):
    """True when the model picks the measured winner of every pair."""
    for left_text, right_text in EQUIVALENT_PAIRS:
        est_left = model.estimate_expr(parse(left_text), env).cost
        est_right = model.estimate_expr(parse(right_text), env).cost
        predicted = left_text if est_left < est_right else right_text
        actual = (left_text if measure(left_text, env) < measure(right_text, env)
                  else right_text)
        if predicted != actual:
            return False
    return True


class TestE10PairConformance:
    def test_uncalibrated_model_orders_every_pair(self, env):
        assert _orders_pairs(Calibration.uncalibrated().cost_model(), env)

    def test_fitted_model_keeps_the_ordering(self, env, fitted):
        assert fitted.calibrated and fitted.meta["observations"] > 0
        assert _orders_pairs(fitted.cost_model(), env)

    def test_extreme_but_positive_constants_keep_the_ordering(self, env):
        # the orderings are driven by cardinalities, so any positive
        # per-unit constants a fit could produce must preserve them
        for comparison in (0.01, 0.25, 5.0):
            model = Calibration.uncalibrated().cost_model(comparison=comparison)
            assert _orders_pairs(model, env), comparison


# -- TA vs NRA: predicted ordering vs observed ordering ------------------------

#: observed gaps below this ratio are near-ties; no ordering is asserted
DECISIVE = 1.5


def _observed_charged(engine_func, sources, n, calibration):
    with CostCounter.activate() as cost:
        engine_func(sources, n)
    return calibration.charged_cost(cost.snapshot())


class TestEngineOrdering:
    @pytest.mark.parametrize("kind", CORPUS_KINDS)
    def test_decisive_observed_gaps_are_predicted(self, kind, fitted):
        rng = np.random.default_rng(23)
        agreements = 0
        for _ in range(3):
            matrix = corpus_matrix(kind, 300, 3, rng)
            sources = make_sources(matrix, prefix=kind)
            observed_ta = _observed_charged(threshold_topn, sources, 10, fitted)
            observed_nra = _observed_charged(nra_topn, sources, 10, fitted)
            hi, lo = max(observed_ta, observed_nra), min(observed_ta, observed_nra)
            if lo == 0 or hi / lo < DECISIVE:
                continue  # near-tie: no signal to check
            feats = query_features(sources, 10)
            predicted_ta = fitted.predict_cost("ta", feats)
            predicted_nra = fitted.predict_cost("nra", feats)
            assert predicted_ta is not None and predicted_nra is not None
            assert ((predicted_ta < predicted_nra)
                    == (observed_ta < observed_nra)), kind
            agreements += 1
        # every workload class produces at least one decisive query at
        # this scale; a class of pure near-ties would test nothing
        assert agreements >= 1, kind

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kind=st.sampled_from(CORPUS_KINDS),
           objects=st.integers(min_value=200, max_value=500),
           n=st.integers(min_value=5, max_value=20),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_property_predictions_track_decisive_gaps(self, kind, objects,
                                                      n, seed, fitted):
        rng = np.random.default_rng(seed)
        matrix = corpus_matrix(kind, objects, 3, rng)
        sources = make_sources(matrix, prefix=kind)
        observed_ta = _observed_charged(threshold_topn, sources, n, fitted)
        observed_nra = _observed_charged(nra_topn, sources, n, fitted)
        hi, lo = max(observed_ta, observed_nra), min(observed_ta, observed_nra)
        if lo == 0 or hi / lo < DECISIVE:
            return  # tolerance: near-ties are not asserted
        feats = query_features(sources, n)
        predicted_ta = fitted.predict_cost("ta", feats)
        predicted_nra = fitted.predict_cost("nra", feats)
        assert ((predicted_ta < predicted_nra)
                == (observed_ta < observed_nra))
