"""Property-based equivalence testing of the optimizer.

The strongest invariant the optimizer must satisfy: for *every*
well-typed expression, the optimized plan computes the same value as
the original.  Hypothesis generates random expression trees over
random environments and checks exactly that, plus cost-model sanity
(estimates are finite and non-negative) and trace/type discipline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Apply, Var, evaluate, make_bag, make_list, make_set
from repro.optimizer import CostModel, Optimizer

# -- expression generator ------------------------------------------------------

atoms = st.integers(min_value=-50, max_value=50)


@st.composite
def environments(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    values = draw(st.lists(atoms, min_size=n, max_size=n))
    maybe_sorted = draw(st.booleans())
    if maybe_sorted:
        values = sorted(values)
    kind = draw(st.sampled_from(["list", "bag", "set"]))
    maker = {"list": make_list, "bag": make_bag, "set": make_set}[kind]
    return {"xs": maker(values)}


@st.composite
def collection_exprs(draw, depth=0):
    """An expression of collection type over the variable ``xs``."""
    if depth >= 3 or draw(st.booleans()):
        return Var("xs")
    child = draw(collection_exprs(depth=depth + 1))
    op = draw(st.sampled_from(
        ["select", "sort", "topn", "projecttobag", "projecttoset", "identityish"]
    ))
    if op == "select":
        lo = draw(atoms)
        hi = draw(atoms)
        return Apply("select", child, min(lo, hi), max(lo, hi))
    if op == "sort":
        return Apply("sort", child, draw(st.sampled_from([0, 1])))
    if op == "topn":
        return Apply("topn", child, draw(st.integers(0, 20)),
                     draw(st.sampled_from([0, 1])))
    if op in ("projecttobag", "projecttoset"):
        return Apply(op, child)
    return child


@st.composite
def any_exprs(draw):
    """Collection- or aggregate-typed expressions."""
    collection = draw(collection_exprs())
    if draw(st.booleans()):
        return collection
    agg = draw(st.sampled_from(["count", "sum", "max", "min"]))
    return Apply(agg, collection)


def types_compatible(expr, env):
    """Whether the expression type-checks (sort/topn on SET of str etc.
    always work here since elements are ints; conversions on BAG lack
    projecttobag — filter those)."""
    try:
        env_types = {name: value.stype for name, value in env.items()}
        expr.infer_type(env_types)
        return True
    except Exception:
        return False


def eval_or_error(expr, env):
    try:
        return ("ok", evaluate(expr, env))
    except Exception as exc:
        return ("error", type(exc).__name__)


@settings(max_examples=120, deadline=None)
@given(any_exprs(), environments())
def test_optimized_plan_is_equivalent(expr, env):
    if not types_compatible(expr, env):
        return
    status, original = eval_or_error(expr, env)
    optimizer = Optimizer()
    report = optimizer.optimize(expr, env)
    status_opt, optimized = eval_or_error(report.optimized, env)
    if status == "error":
        # e.g. max() of an empty collection: the rewrite may only fail
        # the same way, never silently succeed with a different answer
        # unless the rewrite legitimately removed the failing work —
        # in which case we cannot compare, so only check error parity
        # when the optimizer did nothing.
        if report.optimized == expr:
            assert status_opt == "error"
        return
    assert status_opt == "ok", (
        f"optimized plan failed where original succeeded: {expr} => {report.optimized}"
    )
    assert original.equals(optimized), (
        f"{expr} => {report.optimized}: {original.to_python()} != {optimized.to_python()}"
    )


@settings(max_examples=120, deadline=None)
@given(any_exprs(), environments())
def test_cost_estimates_are_sane(expr, env):
    if not types_compatible(expr, env):
        return
    model = CostModel()
    estimate = model.estimate_expr(expr, env)
    assert np.isfinite(estimate.cost)
    assert estimate.cost >= 0
    assert np.isfinite(estimate.rows)
    assert estimate.rows >= 0


@settings(max_examples=80, deadline=None)
@given(any_exprs(), environments())
def test_optimizer_never_increases_estimated_cost(expr, env):
    if not types_compatible(expr, env):
        return
    optimizer = Optimizer()
    report = optimizer.optimize(expr, env)
    assert report.chosen_estimate.cost <= report.original_estimate.cost + 1e-9


@settings(max_examples=80, deadline=None)
@given(any_exprs(), environments())
def test_optimization_is_idempotent(expr, env):
    """Optimizing an already-optimized expression changes nothing."""
    if not types_compatible(expr, env):
        return
    optimizer = Optimizer()
    first = optimizer.optimize(expr, env)
    second = optimizer.optimize(first.optimized, env)
    assert second.optimized == first.optimized
