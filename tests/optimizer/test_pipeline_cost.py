"""Tests for the cost model and the full optimizer pipeline."""

import numpy as np
import pytest

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.optimizer import CostModel, Optimizer
from repro.storage import CostCounter


@pytest.fixture
def optimizer():
    return Optimizer()


class TestCostModel:
    def test_source_uses_actual_cardinality(self):
        model = CostModel()
        env = {"xs": make_list(list(range(500)))}
        estimate = model.estimate_expr(parse("xs"), env)
        assert estimate.rows == 500
        assert estimate.sorted_asc

    def test_unbound_defaults(self):
        model = CostModel(default_rows=250)
        estimate = model.estimate_expr(parse("count(xs)"),
                                       {"xs": make_bag([1] * 10)})
        assert estimate.rows == 1

    def test_select_on_sorted_cheaper(self):
        model = CostModel()
        sorted_env = {"xs": make_list(list(range(10_000)))}
        shuffled = list(range(10_000))
        shuffled[0], shuffled[-1] = shuffled[-1], shuffled[0]
        unsorted_env = {"xs": make_list(shuffled)}
        expr = parse("select(xs, 5, 10)")
        assert (model.estimate_expr(expr, sorted_env).cost
                < model.estimate_expr(expr, unsorted_env).cost / 10)

    def test_topn_cheaper_than_sort(self):
        model = CostModel()
        env = {"xs": make_bag(np.random.default_rng(0).random(10_000).tolist())}
        topn = model.estimate_expr(parse("topn(xs, 10)"), env)
        sort_slice = model.estimate_expr(parse("slice(sort(xs, 1), 0, 10)"), env)
        assert topn.cost < sort_slice.cost

    def test_topn_on_sorted_is_near_free(self):
        model = CostModel()
        env = {"xs": make_list(sorted(range(10_000), reverse=True))}
        estimate = model.estimate_expr(parse("topn(xs, 10)"), env)
        assert estimate.cost < 100

    def test_conversion_drops_order_in_estimate(self):
        model = CostModel()
        env = {"xs": make_list(list(range(1000)))}
        direct = model.estimate_expr(parse("select(xs, 1, 2)"), env)
        through_bag = model.estimate_expr(parse("select(projecttobag(xs), 1, 2)"), env)
        assert direct.cost < through_bag.cost

    def test_rows_and_value_bounds_propagate(self):
        """Zone-map selectivity: nested selects narrow both cardinality
        and the propagated value bounds."""
        model = CostModel()
        values = (np.arange(1000) / 1000).tolist()
        env = {"xs": make_bag(values)}
        estimate = model.estimate_expr(parse("select(select(xs, 0.0, 0.5), 0.0, 0.25)"), env)
        assert estimate.rows == pytest.approx(250, rel=0.05)
        assert estimate.max_value == pytest.approx(0.25)

    def test_estimates_monotone_in_input_size(self):
        model = CostModel()
        rng = np.random.default_rng(0)
        small = model.estimate_expr(parse("sort(xs)"), {"xs": make_bag(rng.random(100).tolist())})
        large = model.estimate_expr(parse("sort(xs)"), {"xs": make_bag(rng.random(10_000).tolist())})
        assert large.cost > small.cost


class TestPipeline:
    def test_example1_end_to_end(self, optimizer):
        env = {"xs": make_list(list(range(50_000)))}
        expr = parse("select(projecttobag(xs), 100, 150)")
        value, report = optimizer.execute(expr, env)
        assert str(report.optimized) == "projecttobag(select(xs, 100, 150))"
        assert value.equals(evaluate(expr, env))
        assert report.estimated_speedup > 10
        assert "push-select-through-conversion" in report.rules_fired()

    def test_cost_based_choice_picks_cheapest(self, optimizer):
        env = {"xs": make_bag(np.random.default_rng(1).random(5000).tolist())}
        report = optimizer.optimize(parse("slice(sort(xs, 1), 0, 10)"), env)
        assert str(report.optimized) == "topn(xs, 10, 1)"
        costs = {str(expr): est.cost for expr, est in report.candidates}
        assert costs[str(report.optimized)] == min(costs.values())

    def test_noop_when_nothing_applies(self, optimizer):
        env = {"xs": make_list([3, 1, 2])}
        report = optimizer.optimize(parse("sort(xs)"), env)
        assert report.optimized == report.original
        assert report.trace == []
        assert report.estimated_speedup == pytest.approx(1.0)

    def test_layers_compose(self, optimizer):
        """A query needing all three layers: select merge (logical),
        pushdown (inter-object), topn-of-sort (intra-object)."""
        env = {"xs": make_list(list(range(10_000)))}
        expr = parse("topn(sort(select(select(projecttobag(xs), 0, 5000), 100, 9000), 1), 5)")
        value, report = optimizer.optimize(expr, env), None
        report = optimizer.optimize(expr, env)
        layers_fired = {t.layer for t in report.trace}
        assert {"logical", "inter-object", "intra-object"} <= layers_fired
        optimized_value, _ = optimizer.execute(expr, env)
        assert optimized_value.equals(evaluate(expr, env))

    def test_execute_matches_unoptimized_semantics(self, optimizer):
        cases = [
            ("select(projecttobag(xs), 2, 8)", {"xs": make_list([1, 5, 9, 3])}),
            ("count(projecttobag(select(xs, 2, 9)))", {"xs": make_list([1, 5, 9])}),
            ("slice(sort(xs, 1), 0, 2)", {"xs": make_bag([0.5, 0.9, 0.1])}),
            ("max(projecttoset(xs))", {"xs": make_bag([2, 2, 7])}),
            ("topn(sort(xs), 3, 0)", {"xs": make_list([4, 2, 9, 1])}),
        ]
        for text, env in cases:
            expr = parse(text)
            value, report = optimizer.execute(expr, env)
            assert value.equals(evaluate(expr, env)), text

    def test_report_describe(self, optimizer):
        env = {"xs": make_list([1, 2, 3])}
        report = optimizer.optimize(parse("select(projecttobag(xs), 1, 2)"), env)
        text = report.describe()
        assert "push-select-through-conversion" in text
        assert "optimized:" in text

    def test_non_cost_based_mode(self):
        optimizer = Optimizer(cost_based=False)
        env = {"xs": make_list([1, 2, 3])}
        report = optimizer.optimize(parse("select(projecttobag(xs), 1, 2)"), env)
        assert str(report.optimized) == "projecttobag(select(xs, 1, 2))"

    def test_estimated_speedup_tracks_measured(self, optimizer):
        """E10's property in miniature: when the optimizer predicts a
        big win, the measured cost ratio agrees in direction."""
        env = {"xs": make_list(list(range(20_000)))}
        expr = parse("select(projecttobag(xs), 10, 50)")
        report = optimizer.optimize(expr, env)
        with CostCounter.activate() as before:
            evaluate(report.original, env)
        with CostCounter.activate() as after:
            evaluate(report.optimized, env)
        measured = before.tuples_read / max(after.tuples_read, 1)
        assert report.estimated_speedup > 1
        assert measured > 1
