"""Tests for the rewrite framework and the three rule layers."""

import pytest

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.errors import RewriteError
from repro.optimizer import (
    DEFAULT_INTER_OBJECT_RULES,
    DEFAULT_LOGICAL_RULES,
    Optimizer,
    RewriteRule,
    RuleContext,
    intra_rules_for,
    rewrite_fixpoint,
)
from repro.storage import CostCounter


def ctx_for(env=None):
    env_types = {name: value.stype for name, value in (env or {}).items()}
    return RuleContext(env_types=env_types)


def rewrite(text, rules, env=None):
    expr, trace = rewrite_fixpoint(parse(text), rules, ctx_for(env))
    return str(expr), trace


ALL_RULES = DEFAULT_LOGICAL_RULES + DEFAULT_INTER_OBJECT_RULES + intra_rules_for()


class TestLogicalRules:
    def test_merge_selects(self):
        out, trace = rewrite("select(select(xs, 1, 10), 5, 20)", DEFAULT_LOGICAL_RULES,
                             {"xs": make_list([1, 2, 3])})
        assert out == "select(xs, 5, 10)"
        assert [t.rule for t in trace] == ["merge-selects"]

    def test_merge_selects_triple(self):
        out, _ = rewrite("select(select(select(xs, 0, 100), 10, 90), 20, 80)",
                         DEFAULT_LOGICAL_RULES, {"xs": make_list([1])})
        assert out == "select(xs, 20, 80)"

    def test_merge_selects_field_mismatch_not_merged(self):
        from repro.algebra import CollectionValue, FLOAT, INT, ListType, TupleType

        docs = CollectionValue.from_rows(
            ListType(TupleType.of(a=INT, b=FLOAT)), [{"a": 1, "b": 0.5}]
        )
        out, trace = rewrite("select(select(docs, 'a', 1, 10), 'b', 0.1, 0.9)",
                             DEFAULT_LOGICAL_RULES, {"docs": docs})
        assert trace == []

    def test_merge_slices(self):
        out, _ = rewrite("slice(slice(xs, 10, 50), 5, 10)", DEFAULT_LOGICAL_RULES,
                         {"xs": make_list(list(range(100)))})
        assert out == "slice(xs, 15, 10)"

    def test_merge_slices_clamps(self):
        out, _ = rewrite("slice(slice(xs, 0, 3), 2, 10)", DEFAULT_LOGICAL_RULES,
                         {"xs": make_list(list(range(100)))})
        assert out == "slice(xs, 2, 1)"

    def test_sort_idempotent(self):
        out, _ = rewrite("sort(sort(xs, 1), 1)", DEFAULT_LOGICAL_RULES,
                         {"xs": make_list([3, 1])})
        assert out == "sort(xs, 1)"

    def test_sort_different_directions_kept(self):
        out, trace = rewrite("sort(sort(xs, 1), 0)", DEFAULT_LOGICAL_RULES,
                             {"xs": make_list([3, 1])})
        assert trace == []


class TestInterObjectRules:
    def test_paper_example_1(self):
        """The flagship rewrite from the paper's Example 1."""
        out, trace = rewrite(
            "select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)",
            DEFAULT_INTER_OBJECT_RULES,
        )
        assert out.startswith("projecttobag(select(")
        assert trace[0].rule == "push-select-through-conversion"

    def test_select_through_projecttoset(self):
        out, _ = rewrite("select(projecttoset(xs), 2, 4)", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_list([1, 2, 2, 5])})
        assert out == "projecttoset(select(xs, 2, 4))"

    def test_topn_through_bag_conversion(self):
        out, _ = rewrite("topn(projecttobag(xs), 3)", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_list([5, 1, 9])})
        assert out == "topn(xs, 3)"

    def test_topn_not_pushed_through_set_conversion(self):
        out, trace = rewrite("topn(projecttoset(xs), 3)", DEFAULT_INTER_OBJECT_RULES,
                             {"xs": make_list([5, 1, 9])})
        assert trace == []  # dedup changes the multiset: unsafe to push

    def test_sort_through_bag_conversion(self):
        out, _ = rewrite("sort(projecttobag(xs))", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_list([3, 1])})
        assert out == "sort(xs)"

    def test_count_through_bag_conversion(self):
        out, _ = rewrite("count(projecttobag(xs))", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_list([1, 1])})
        assert out == "count(xs)"

    def test_count_not_through_set_conversion(self):
        out, trace = rewrite("count(projecttoset(xs))", DEFAULT_INTER_OBJECT_RULES,
                             {"xs": make_list([1, 1])})
        assert trace == []

    def test_max_through_set_conversion(self):
        out, _ = rewrite("max(projecttoset(xs))", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_list([1, 5, 5])})
        assert out == "max(xs)"

    def test_slice_of_sort_is_topn(self):
        out, trace = rewrite("slice(sort(xs, 1), 0, 10)", DEFAULT_INTER_OBJECT_RULES,
                             {"xs": make_list([3, 1, 2])})
        assert out == "topn(xs, 10, 1)"
        assert trace[0].rule == "slice-of-sort-is-topn"

    def test_slice_with_offset_not_topn(self):
        out, trace = rewrite("slice(sort(xs, 1), 5, 10)", DEFAULT_INTER_OBJECT_RULES,
                             {"xs": make_list([3, 1, 2])})
        assert trace == []

    def test_slice_of_bag_sort_is_topn(self):
        """The cross-extension case: BAG sort produces the LIST."""
        out, _ = rewrite("slice(sort(xs, 1), 0, 2)", DEFAULT_INTER_OBJECT_RULES,
                         {"xs": make_bag([3, 1, 2])})
        assert out == "topn(xs, 2, 1)"


class TestIntraObjectRules:
    def test_topn_of_sort(self):
        out, _ = rewrite("topn(sort(xs, 1), 5)", intra_rules_for(),
                         {"xs": make_list([3, 1])})
        assert out == "topn(xs, 5)"

    def test_sort_of_topn_same_direction(self):
        out, _ = rewrite("sort(topn(xs, 5), 1)", intra_rules_for(),
                         {"xs": make_list([3, 1])})
        assert out == "topn(xs, 5)"

    def test_sort_of_topn_other_direction_kept(self):
        out, trace = rewrite("sort(topn(xs, 5), 0)", intra_rules_for(),
                             {"xs": make_list([3, 1])})
        assert trace == []

    def test_topn_of_topn(self):
        out, _ = rewrite("topn(topn(xs, 20), 5)", intra_rules_for(),
                         {"xs": make_list([3, 1])})
        assert out == "topn(xs, 5, 1)"

    def test_topn_of_topn_growing_not_merged(self):
        out, trace = rewrite("topn(topn(xs, 5), 20)", intra_rules_for(),
                             {"xs": make_list([3, 1])})
        assert trace == []


class TestRewriteFramework:
    def test_semantics_preserved_by_full_rule_set(self):
        cases = [
            ("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)", {}),
            ("slice(sort(xs, 1), 0, 3)", {"xs": make_list([5, 2, 9, 1])}),
            ("count(projecttobag(select(xs, 2, 8)))", {"xs": make_list([1, 5, 9])}),
            ("topn(sort(select(xs, 0, 50), 1), 2)", {"xs": make_list([30, 60, 10, 40])}),
            ("max(projecttoset(xs))", {"xs": make_bag([4, 4, 7])}),
        ]
        for text, env in cases:
            expr = parse(text)
            rewritten, _ = rewrite_fixpoint(expr, ALL_RULES, ctx_for(env))
            before = evaluate(expr, env)
            after = evaluate(rewritten, env)
            assert before.equals(after), f"{text}: {before} != {after}"

    def test_type_change_raises(self):
        from repro.algebra import Apply

        class BadRule(RewriteRule):
            name = "bad"
            layer = "logical"

            def apply(self, expr, context):
                if expr.op == "projecttobag":
                    return expr.args[0]  # changes BAG -> LIST
                return None

        with pytest.raises(RewriteError):
            rewrite_fixpoint(parse("projecttobag([1, 2])"), [BadRule()], ctx_for())

    def test_cycle_detection(self):
        from repro.algebra import Apply

        class Spin(RewriteRule):
            name = "spin"
            layer = "logical"

            def apply(self, expr, context):
                if expr.op == "select":
                    # rebuild an equivalent select endlessly
                    return Apply("select", *expr.args)
                return None

        with pytest.raises(RewriteError):
            rewrite_fixpoint(parse("select([1], 0, 2)"), [Spin()], ctx_for(),
                             max_applications=10)

    def test_trace_records_layers(self):
        _, trace = rewrite("select(projecttobag(select(xs, 0, 9)), 2, 4)",
                           ALL_RULES, {"xs": make_list([1, 2, 3])})
        layers = {t.layer for t in trace}
        assert "inter-object" in layers
        assert "logical" in layers  # merged selects after pushdown


class TestEndToEndRewriteWins:
    def test_example1_rewrite_is_cheaper(self):
        """The rewritten Example 1 plan must actually cost less on a
        sorted LIST (binary-search select + smaller conversion)."""
        xs = make_list(list(range(100_000)))
        env = {"xs": xs}
        bad = parse("select(projecttobag(xs), 100, 200)")
        good, _ = rewrite_fixpoint(bad, DEFAULT_INTER_OBJECT_RULES, ctx_for(env))
        with CostCounter.activate() as bad_cost:
            bad_result = evaluate(bad, env)
        with CostCounter.activate() as good_cost:
            good_result = evaluate(good, env)
        assert bad_result.equals(good_result)
        assert good_cost.tuples_read < bad_cost.tuples_read / 100

    def test_slice_sort_to_topn_is_cheaper(self):
        import numpy as np

        xs = make_list(np.random.default_rng(0).random(50_000).tolist())
        env = {"xs": xs}
        bad = parse("slice(sort(xs, 1), 0, 10)")
        good, _ = rewrite_fixpoint(bad, DEFAULT_INTER_OBJECT_RULES, ctx_for(env))
        with CostCounter.activate() as bad_cost:
            bad_result = evaluate(bad, env)
        with CostCounter.activate() as good_cost:
            good_result = evaluate(good, env)
        assert bad_result.equals(good_result)
        assert good_cost.comparisons < bad_cost.comparisons / 3
