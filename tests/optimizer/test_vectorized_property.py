"""The ``vectorized`` plan property.

The optimizer may let a plan run the blocked (block-at-a-time) engines
only when every per-block score bound is certified by the MOA9xx bound
interpreter — the same machinery (and the same MOA905 epoch-staleness
gate) that already certifies coordinator thresholds.  The property is
tri-state on :class:`~repro.optimizer.OptimizationReport`:

* ``True`` — block bounds were declared and the certificate holds;
* ``False`` — block bounds were declared but certification failed
  (e.g. a stale epoch): the plan must fall back to the scalar oracles;
* ``None`` — no block bounds were declared (scalar-only plan).
"""

from repro.algebra import make_list, parse
from repro.analysis import block_bound_declarations
from repro.mm import BlockedSource
from repro.optimizer import Optimizer


ENV = {"xs": make_list([0.3, 0.9, 0.1, 0.7])}


def block_bounds(epoch: int, current_epoch: int):
    source = BlockedSource.from_array([0.9, 0.4, 0.8, 0.2, 0.6], block_size=2)
    return block_bound_declarations(
        "term:0", source.blocks.threshold_bounds(epoch=epoch),
        current_epoch=current_epoch)


class TestVectorizedProperty:
    def test_fresh_bounds_certify(self):
        report = Optimizer(block_bounds=block_bounds(epoch=2, current_epoch=2)) \
            .optimize(parse("topn(xs, 5)"), env=ENV)
        assert report.vectorized is True
        assert report.bound_certified is True

    def test_stale_bounds_fall_back_to_scalar(self):
        report = Optimizer(block_bounds=block_bounds(epoch=1, current_epoch=2)) \
            .optimize(parse("topn(xs, 5)"), env=ENV)
        assert report.vectorized is False
        assert report.bound_certified is False
        codes = [d.code for d in report.bound_certificate.diagnostics]
        assert "MOA905" in codes

    def test_no_block_bounds_means_no_claim(self):
        report = Optimizer().optimize(parse("topn(xs, 5)"), env=ENV)
        assert report.vectorized is None

    def test_one_stale_bound_poisons_the_plan(self):
        """Block-max pruning is only as sound as its weakest bound: a
        single stale block bound among fresh ones flips the property."""
        fresh = block_bounds(epoch=5, current_epoch=5)
        stale = block_bounds(epoch=4, current_epoch=5)[:1]
        report = Optimizer(block_bounds=fresh + stale) \
            .optimize(parse("topn(xs, 5)"), env=ENV)
        assert report.vectorized is False

    def test_describe_mentions_the_property(self):
        report = Optimizer(block_bounds=block_bounds(epoch=2, current_epoch=2)) \
            .optimize(parse("topn(xs, 5)"), env=ENV)
        assert "vectorized: True" in report.describe()

    def test_declarations_are_per_block(self):
        source = BlockedSource.from_array([0.9, 0.4, 0.8, 0.2, 0.6],
                                          block_size=2)
        bounds = source.blocks.threshold_bounds(epoch=1)
        decls = block_bound_declarations("term:7", bounds, current_epoch=1)
        assert len(decls) == source.blocks.n_blocks
        assert [d.name for d in decls] \
            == [f"term:7[b{i}]" for i in range(len(bounds))]
