"""Deadline-aware cancellation: CancelToken deadlines, blocked-engine
cancellation between rounds, and the no-dangling-work guarantee."""

import time

import numpy as np
import pytest

from repro.errors import QueryCancelledError
from repro.mm.sources import BlockedSource
from repro.parallel.executor import CancelToken, ExecutorPool
from repro.topn import (
    blocked_combined_topn,
    blocked_nra_topn,
    blocked_threshold_topn,
)

BLOCKED_ENGINES = (blocked_threshold_topn, blocked_nra_topn,
                   blocked_combined_topn)


def make_sources(seed=3, n_objects=256, n_sources=3, block_size=16):
    rng = np.random.default_rng(seed)
    return [BlockedSource.from_array(rng.random(n_objects), block_size,
                                     name=f"s{i}") for i in range(n_sources)]


class CountdownToken:
    """Reports cancelled after ``fuse`` checks — a deterministic stand-in
    for a deadline expiring mid-run."""

    def __init__(self, fuse: int) -> None:
        self.fuse = fuse
        self.checks = 0

    def cancelled(self) -> bool:
        self.checks += 1
        return self.checks > self.fuse


class TestCancelTokenDeadline:
    def test_fresh_token_is_not_cancelled(self):
        token = CancelToken()
        assert not token.cancelled()
        assert token.remaining() is None

    def test_explicit_cancel_is_permanent(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled() and token.cancelled()

    def test_expired_deadline_cancels(self):
        token = CancelToken.with_timeout(0.0)
        assert token.cancelled()
        assert token.remaining() == 0.0

    def test_future_deadline_does_not_cancel_yet(self):
        token = CancelToken.with_timeout(60.0)
        assert not token.cancelled()
        assert 0.0 < token.remaining() <= 60.0

    def test_deadline_expiry_flips_cancelled(self):
        token = CancelToken(deadline=time.monotonic() + 0.02)
        assert not token.cancelled()
        time.sleep(0.03)
        assert token.cancelled()

    def test_remaining_never_goes_negative(self):
        token = CancelToken(deadline=time.monotonic() - 10.0)
        assert token.remaining() == 0.0


class TestBlockedEngineCancellation:
    @pytest.mark.parametrize("engine", BLOCKED_ENGINES)
    def test_prefired_token_cancels_the_run(self, engine):
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError, match="cancelled at"):
            engine(make_sources(), 10, cancel=token)

    @pytest.mark.parametrize("engine", BLOCKED_ENGINES)
    def test_midrun_cancellation_raises_between_rounds(self, engine):
        token = CountdownToken(fuse=1)
        with pytest.raises(QueryCancelledError, match=engine.__name__):
            engine(make_sources(), 10, cancel=token)
        assert token.checks > 1  # the first check passed; a later round hit

    @pytest.mark.parametrize("engine", BLOCKED_ENGINES)
    def test_no_token_means_no_cancellation(self, engine):
        result = engine(make_sources(), 5)
        assert len(result.items) == 5

    @pytest.mark.parametrize("engine", BLOCKED_ENGINES)
    def test_unfired_token_does_not_change_the_answer(self, engine):
        plain = engine(make_sources(), 10)
        tokened = engine(make_sources(), 10, cancel=CancelToken())
        assert tokened.items == plain.items


class TestNoDanglingWork:
    """After a cancelled run, the pool owes nothing: no queued shard
    tasks, no in-flight admissions."""

    @pytest.mark.parametrize("kind", ("serial", "thread"))
    def test_cancelled_run_tasks_leave_no_pending_work(self, kind):
        with ExecutorPool(workers=2, kind=kind) as pool:
            token = CancelToken()

            def first():
                token.cancel()  # cancels everything not yet started
                return "ran"

            outcomes = pool.run_tasks([first] + [lambda: "late"] * 6,
                                      token=token)
            statuses = [outcome.status for outcome in outcomes]
            assert statuses[0] == "done"
            assert "cancelled" in statuses
            assert pool._pending == 0
            assert pool.in_flight == 0

    def test_deadline_expired_before_start_cancels_everything(self):
        with ExecutorPool(workers=2, kind="thread") as pool:
            outcomes = pool.run_tasks([lambda: "never"] * 4,
                                      token=CancelToken.with_timeout(0.0))
            assert [o.status for o in outcomes] == ["cancelled"] * 4
            assert pool._pending == 0
            assert pool.in_flight == 0

    def test_cancelled_blocked_engine_leaves_admission_clean(self):
        with ExecutorPool(workers=2, max_queries=1) as pool:
            token = CancelToken()
            token.cancel()
            with pytest.raises(QueryCancelledError):
                with pool.admit():
                    blocked_threshold_topn(make_sources(), 10, cancel=token)
            assert pool.in_flight == 0
            assert pool._pending == 0
            with pool.admit():  # the slot is reusable immediately
                pass
