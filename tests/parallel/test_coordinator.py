"""Tests for the distributed top-N coordinator: the two-round
threshold merge, certification, pruning, and the sealed merge state."""

import threading

import numpy as np
import pytest

from repro.errors import ParallelError, QueryCancelledError
from repro.ir import BM25, InvertedIndex
from repro.mm import ArraySource
from repro.parallel import (
    CancelToken,
    ExecutorPool,
    SourceRangeEvaluator,
    coordinated_topn,
    default_round1_fetch,
    parallel_topn,
    parallel_topn_sources,
    shard_index,
)
from repro.parallel.coordinator import _key, _MergeState
from repro.topn import SUM, naive_topn, naive_topn_sources
from repro.topn.result import RankedItem
from repro.workloads import SyntheticCollection, generate_queries, trec


def evaluators_for(scores, boundaries):
    """Range evaluators over a single graded source with the given
    per-object scores."""
    sources = [ArraySource(np.asarray(scores, dtype=np.float64))]
    return [
        SourceRangeEvaluator(i, sources, lo, hi)
        for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:]))
    ], sources


class TestRound1Fetch:
    def test_balanced_share(self):
        assert default_round1_fetch(10, 1) == 10
        assert default_round1_fetch(10, 2) == 5
        assert default_round1_fetch(10, 3) == 4
        assert default_round1_fetch(2, 8) == 1

    def test_never_exceeds_n(self):
        assert default_round1_fetch(3, 1) == 3
        assert default_round1_fetch(1, 100) == 1


class TestThresholdPruning:
    def test_prunes_shards_that_cannot_contribute(self):
        """All winners on shard 0: shard 1's round-1 best already ranks
        at the threshold, so it is never probed."""
        scores = [10, 9, 8, 7, 6, 5, 4, 3, 2, 1]
        evaluators, _ = evaluators_for(scores, [0, 5, 10])
        result = coordinated_topn(evaluators, n=2, round1_fetch=1)
        assert result.doc_ids == [0, 1]
        assert result.certified is True
        assert result.stats["probes"] == 1
        assert result.stats["probes_saved"] == 1
        assert result.stats["probes"] < result.stats["full_gather_probes"]

    def test_live_skip_of_queued_probes(self):
        """Two shards need probing after round 1; the first probe pushes
        the threshold past the second, which is skipped live."""
        scores = [10.0, 9.9, 9.8,    # shard 0: the whole top-3
                  9.5, 0.1, 0.1,     # shard 1: good best, empty tail
                  9.4, 0.1, 0.1,     # shard 2
                  1.0, 0.1, 0.1]     # shard 3
        evaluators, _ = evaluators_for(scores, [0, 3, 6, 9, 12])
        result = coordinated_topn(evaluators, n=3, round1_fetch=1)
        assert result.doc_ids == [0, 1, 2]
        assert result.certified is True
        assert result.stats["live_skipped"] == 1
        assert result.stats["probes"] == 1

    def test_round1_only_when_everything_prunable(self):
        """When round 1 already certifies the answer there is no round 2
        even with probing enabled."""
        scores = [10, 9, 8, 7, 1, 1, 1, 1]
        evaluators, _ = evaluators_for(scores, [0, 4, 8])
        result = coordinated_topn(evaluators, n=2, round1_fetch=2)
        assert result.stats["rounds"] == 1
        assert result.stats["probes"] == 0
        assert result.certified is True
        assert result.doc_ids == [0, 1]


class TestCertification:
    def test_probe_false_reports_uncertified(self):
        """Round 1 alone misses deep items; the result says so."""
        scores = [10, 9, 8, 7, 6, 5, 4, 3, 2, 1]
        evaluators, _ = evaluators_for(scores, [0, 5, 10])
        result = coordinated_topn(evaluators, n=4, round1_fetch=2, probe=False)
        assert result.certified is False
        assert result.safe is False
        # the uncertified answer is genuinely wrong here: docs 2 and 3
        # (scores 8 and 7) were never shipped
        assert result.doc_ids == [0, 1, 5, 6]

    def test_probe_true_fixes_the_same_instance(self):
        scores = [10, 9, 8, 7, 6, 5, 4, 3, 2, 1]
        evaluators, _ = evaluators_for(scores, [0, 5, 10])
        result = coordinated_topn(evaluators, n=4, round1_fetch=2)
        assert result.certified is True
        assert result.doc_ids == [0, 1, 2, 3]

    def test_probe_false_can_still_certify(self):
        """With the full depth fetched in round 1 everything is
        exhausted, so even probe=False is provably exact."""
        scores = [5, 4, 3, 2]
        evaluators, _ = evaluators_for(scores, [0, 2, 4])
        result = coordinated_topn(evaluators, n=4, round1_fetch=4, probe=False)
        assert result.certified is True
        assert result.doc_ids == [0, 1, 2, 3]


class TestMergeState:
    def test_offer_after_seal_is_rejected(self):
        state = _MergeState(2)
        state.offer([RankedItem(1, 5.0), RankedItem(2, 4.0)])
        final = state.seal()
        assert not state.offer([RankedItem(3, 99.0)])
        assert state.rejected_writes == 1
        assert state.seal() == final  # unchanged

    def test_late_writer_thread_never_corrupts_result(self):
        """A straggler task finishing after the result was sealed has
        its write refused — completed results are immutable."""
        state = _MergeState(1)
        state.offer([RankedItem(0, 1.0)])
        final = state.seal()

        refused = []

        def straggler():
            refused.append(state.offer([RankedItem(9, 100.0)]))

        thread = threading.Thread(target=straggler)
        thread.start()
        thread.join()
        assert refused == [False]
        assert state.rejected_writes == 1
        assert state.seal() == final == [RankedItem(0, 1.0)]

    def test_tau_requires_n_candidates(self):
        state = _MergeState(3)
        state.offer([RankedItem(0, 1.0)])
        assert state.tau() is None
        state.offer([RankedItem(1, 2.0), RankedItem(2, 3.0)])
        assert state.tau() == _key(RankedItem(0, 1.0))

    def test_offer_dedupes_by_object(self):
        state = _MergeState(2)
        state.offer([RankedItem(0, 1.0)])
        state.offer([RankedItem(0, 1.0), RankedItem(1, 2.0)])
        assert state.size() == 2


class TestCancellationAndErrors:
    def test_cancelled_before_start_raises(self):
        scores = [3, 2, 1, 0]
        evaluators, _ = evaluators_for(scores, [0, 2, 4])
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            coordinated_topn(evaluators, n=2, token=token)

    def test_token_cancelled_after_completion(self):
        """The coordinator cancels its token on the way out, so any
        straggler shard task of a finished query stops."""
        scores = [3, 2, 1, 0]
        evaluators, _ = evaluators_for(scores, [0, 2, 4])
        token = CancelToken()
        result = coordinated_topn(evaluators, n=2, token=token)
        assert result.certified is True
        assert token.cancelled()

    def test_shard_error_propagates(self):
        class Exploding:
            shard_id = 0

            def top(self, depth):
                raise ValueError("shard exploded")

        with pytest.raises(ValueError, match="shard exploded"):
            coordinated_topn([Exploding()], n=2)

    @pytest.mark.parametrize("n", [0, -1])
    def test_bad_n_rejected(self, n):
        with pytest.raises(ParallelError):
            coordinated_topn([], n=n)

    def test_no_evaluators_rejected(self):
        with pytest.raises(ParallelError):
            coordinated_topn([], n=5)


class TestParallelTopnSources:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_matches_naive_exactly(self, shards):
        rng = np.random.default_rng(17)
        matrix = rng.random((120, 3))
        sources = [ArraySource(matrix[:, j]) for j in range(3)]
        reference = naive_topn_sources(
            [ArraySource(matrix[:, j]) for j in range(3)], 10, SUM)
        result = parallel_topn_sources(sources, 10, shards=shards)
        assert result.doc_ids == reference.doc_ids
        assert result.scores == reference.scores
        assert result.certified is True

    def test_thread_pool_matches_serial(self):
        rng = np.random.default_rng(23)
        matrix = rng.random((80, 2))
        make = lambda: [ArraySource(matrix[:, j]) for j in range(2)]  # noqa: E731
        reference = parallel_topn_sources(make(), 8, shards=4)
        with ExecutorPool(kind="thread", workers=3) as pool:
            threaded = parallel_topn_sources(make(), 8, shards=4, pool=pool)
        assert threaded.doc_ids == reference.doc_ids
        assert threaded.scores == reference.scores

    def test_bad_boundaries_rejected(self):
        sources = [ArraySource(np.ones(10))]
        with pytest.raises(ParallelError):
            parallel_topn_sources(sources, 3, boundaries=[0, 5])
        with pytest.raises(ParallelError):
            parallel_topn_sources(sources, 3, shards=0)


class TestParallelTopnIndex:
    @pytest.fixture(scope="class")
    def setup(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=21))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=5,
                                   terms_range=(2, 6), seed=3)
        return index, BM25(), queries

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_naive_exactly(self, setup, shards):
        index, model, queries = setup
        sharded = shard_index(index, shards=shards)
        for query in queries.queries:
            tids = list(query.term_ids)
            reference = naive_topn(index, tids, model, 10)
            result = parallel_topn(sharded, tids, model, 10)
            assert result.doc_ids == reference.doc_ids
            assert result.scores == reference.scores
            assert result.certified is True
            assert result.stats["shards"] == shards
            assert result.stats["shard_skew"] >= 1.0

    def test_prunes_on_real_corpus(self, setup):
        """The acceptance bar: the recorded probe count is strictly
        below the full gather for at least one real corpus."""
        index, model, queries = setup
        sharded = shard_index(index, shards=4)
        total_probes = 0
        total_full = 0
        for query in queries.queries:
            result = parallel_topn(sharded, list(query.term_ids), model, 10)
            total_probes += result.stats["probes"]
            total_full += result.stats["full_gather_probes"]
        assert total_probes < total_full
