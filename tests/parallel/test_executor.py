"""Tests for the executor pool: admission control, cancellation,
cross-thread cost replay."""

import contextlib

import pytest

from repro.errors import (
    AdmissionRejectedError,
    ShardingError,
    TopNError,
)
from repro.obs import metrics
from repro.parallel import (
    CancelToken,
    ExecutorPool,
    counter_from_snapshot,
    replay_cost,
)
from repro.storage.stats import CostCounter, charge_tuples_read


def _charge_three():
    charge_tuples_read(3)
    return "paid"


def _boom():
    raise ValueError("shard exploded")


class TestConstruction:
    def test_bad_kind_rejected(self):
        with pytest.raises(ShardingError):
            ExecutorPool(kind="fibers")

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"max_queries": 0},
        {"max_pending": 0},
    ])
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ShardingError):
            ExecutorPool(**kwargs)

    def test_context_manager_closes(self):
        with ExecutorPool(workers=1) as pool:
            assert pool.kind == "thread"
        assert pool._executor is None


class TestAdmissionControl:
    def test_max_plus_one_concurrent_query_rejected(self):
        """The (max+1)-th concurrent query is rejected with a typed
        TopNError subclass, not queued."""
        with ExecutorPool(kind="serial", max_queries=2) as pool:
            with contextlib.ExitStack() as stack:
                stack.enter_context(pool.admit())
                stack.enter_context(pool.admit())
                assert pool.in_flight == 2
                with pytest.raises(AdmissionRejectedError) as info:
                    stack.enter_context(pool.admit())
                assert isinstance(info.value, TopNError)
                assert "max_queries=2" in str(info.value)
            # admissions released: the pool accepts queries again
            with pool.admit():
                assert pool.in_flight == 1
        assert pool.in_flight == 0

    def test_bounded_task_queue_rejects(self):
        with ExecutorPool(kind="serial", max_pending=2) as pool:
            with pytest.raises(AdmissionRejectedError):
                pool.run_tasks([_charge_three] * 3)
            # bound applies per batch; smaller batches still run
            outcomes = pool.run_tasks([_charge_three] * 2)
            assert [o.status for o in outcomes] == ["done", "done"]

    def test_rejections_are_counted(self):
        metrics.enable()
        metrics.reset()
        try:
            with ExecutorPool(kind="serial", max_queries=1) as pool:
                with pool.admit():
                    with pytest.raises(AdmissionRejectedError):
                        with pool.admit():
                            pass  # pragma: no cover
            assert metrics.counter("parallel.rejected").value == 1
            assert metrics.gauge("parallel.queue_depth").value == 0.0
        finally:
            metrics.reset()
            metrics.disable()


class TestCancellation:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_cancelled_token_skips_tasks(self, kind):
        token = CancelToken()
        token.cancel()
        with ExecutorPool(kind=kind, workers=2) as pool:
            outcomes = pool.run_tasks([_charge_three, _charge_three], token=token)
        assert [o.status for o in outcomes] == ["cancelled", "cancelled"]
        assert all(o.payload is None for o in outcomes)

    def test_skip_when_prunes_individual_tasks(self):
        with ExecutorPool(kind="serial") as pool:
            outcomes = pool.run_tasks([_charge_three, _charge_three],
                                      skip_when=lambda i: i == 0)
        assert [o.status for o in outcomes] == ["skipped", "done"]
        assert outcomes[1].payload == "paid"


class TestOutcomes:
    @pytest.mark.parametrize("kind", ["serial", "thread"])
    def test_errors_become_outcomes(self, kind):
        with ExecutorPool(kind=kind, workers=2) as pool:
            outcomes = pool.run_tasks([_boom, _charge_three])
        assert outcomes[0].status == "error"
        assert isinstance(outcomes[0].error, ValueError)
        assert outcomes[1].status == "done"

    def test_empty_task_list(self):
        with ExecutorPool(kind="serial") as pool:
            assert pool.run_tasks([]) == []


class TestCostReplay:
    def test_counter_from_snapshot_roundtrip(self):
        snapshot = {"tuples_read": 7, "page_reads": 2, "made_up_metric": 5}
        counter = counter_from_snapshot(snapshot)
        assert counter.tuples_read == 7
        assert counter.page_reads == 2
        assert counter.extra["made_up_metric"] == 5

    def test_replay_none_is_noop(self):
        with CostCounter.activate() as cost:
            replay_cost(None)
            replay_cost({})
        assert cost.tuples_read == 0

    def test_serial_pool_charges_caller_directly(self):
        with ExecutorPool(kind="serial") as pool:
            with CostCounter.activate() as cost:
                outcomes = pool.run_tasks([_charge_three])
        assert outcomes[0].already_charged
        assert cost.tuples_read == 3

    def test_thread_pool_cost_replays_to_caller(self):
        """Worker threads charge a fresh counter; replaying its snapshot
        on the caller gives the same totals as serial execution."""
        with ExecutorPool(kind="thread", workers=2) as pool:
            with CostCounter.activate() as cost:
                outcomes = pool.run_tasks([_charge_three, _charge_three])
                assert cost.tuples_read == 0  # not yet replayed
                for outcome in outcomes:
                    assert not outcome.already_charged
                    replay_cost(outcome.cost)
        assert cost.tuples_read == 6


class TestProcessPool:
    def test_process_pool_smoke(self):
        with ExecutorPool(kind="process", workers=2) as pool:
            outcomes = pool.run_tasks([_charge_three])
        assert outcomes[0].status == "done"
        assert outcomes[0].payload == "paid"
        assert outcomes[0].cost["tuples_read"] == 3

    def test_process_pool_error(self):
        with ExecutorPool(kind="process", workers=2) as pool:
            outcomes = pool.run_tasks([_boom])
        assert outcomes[0].status == "error"
        assert isinstance(outcomes[0].error, ValueError)
