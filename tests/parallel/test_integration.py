"""Integration: the parallel strategy through MMDatabase, the CLI, the
profile metrics snapshot and the environment default."""

import io
import json

import pytest

from repro.cli import main
from repro.core import DatabaseConfig, MMDatabase
from repro.errors import AdmissionRejectedError, ReproError
from repro.parallel import DEFAULT_SHARDS_ENV, default_shard_count
from repro.workloads import SyntheticCollection, generate_queries, trec

SCALE = ["--scale", "0.006", "--seed", "3"]


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def db():
    collection = SyntheticCollection.generate(trec.tiny(seed=13))
    database = MMDatabase.from_collection(collection)
    database.fragment()
    yield database
    database.close()


@pytest.fixture(scope="module")
def query(db):
    generated = generate_queries(db.collection, n_queries=1,
                                 terms_range=(3, 6), seed=2).queries[0]
    return " ".join(db.collection.term_strings[t] for t in generated.term_ids)


class TestDatabaseStrategy:
    def test_parallel_matches_naive(self, db, query):
        db.shard(3)
        naive = db.search(query, n=10, strategy="naive")
        parallel = db.search(query, n=10, strategy="parallel")
        assert parallel.result.doc_ids == naive.result.doc_ids
        assert parallel.result.scores == naive.result.scores
        assert parallel.result.certified is True
        assert parallel.result.stats["shards"] == 3

    def test_auto_shards_on_first_parallel_search(self, query):
        collection = SyntheticCollection.generate(trec.tiny(seed=13))
        fresh = MMDatabase.from_collection(collection,
                                           config=DatabaseConfig(default_shards=2))
        try:
            assert fresh.sharded is None
            result = fresh.search(query, n=5, strategy="parallel")
            assert fresh.sharded.n_shards == 2
            assert result.result.certified is True
        finally:
            fresh.close()

    def test_parallel_as_default_strategy(self, query):
        collection = SyntheticCollection.generate(trec.tiny(seed=13))
        fresh = MMDatabase.from_collection(
            collection, config=DatabaseConfig(default_strategy="parallel",
                                              default_shards=2))
        try:
            result = fresh.search(query, n=5)
            assert result.result.strategy == "parallel"
        finally:
            fresh.close()

    def test_admission_rejection_surfaces(self, db, query):
        db.shard(2)
        pool = db._parallel_pool()
        original = pool.max_queries
        pool.max_queries = 1
        try:
            with pool.admit():
                with pytest.raises(AdmissionRejectedError):
                    db.search(query, n=5, strategy="parallel")
        finally:
            pool.max_queries = original

    def test_stats_report_sharding(self, db):
        db.shard(3)
        stats = db.stats()
        assert stats["shards"] == 3
        assert stats["shard_skew"] >= 1.0


class TestEnvironmentDefault:
    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, "4")
        assert default_shard_count() == 4
        assert default_shard_count(fallback=9) == 4

    @pytest.mark.parametrize("raw", ["", "0", "-3", "two", "2.5"])
    def test_invalid_env_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, raw)
        assert default_shard_count(fallback=3) == 3

    def test_db_shard_honors_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, "4")
        collection = SyntheticCollection.generate(trec.tiny(seed=13))
        database = MMDatabase.from_collection(collection)
        try:
            database.shard()
            assert database.sharded.n_shards == 4
        finally:
            database.close()


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"default_shards": 0},
        {"executor_kind": "fibers"},
        {"max_parallel_queries": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ReproError):
            DatabaseConfig(**kwargs).validate()

    def test_defaults_accepted(self):
        config = DatabaseConfig()
        config.validate()
        assert config.default_shards is None
        assert config.executor_kind == "thread"
        assert config.max_parallel_queries == 8


class TestCli:
    def test_bench_parallel(self):
        code, text = run_cli(SCALE + ["bench-parallel", "--shards", "1", "2",
                                      "--queries", "3", "--n", "5"])
        assert code == 0
        assert "serial" in text
        assert "parallel-2" in text
        assert "every parallel ranking matched serial" in text

    def test_bench_parallel_json(self):
        code, text = run_cli(SCALE + ["bench-parallel", "--shards", "2",
                                      "--queries", "2", "--json"])
        assert code == 0
        payload = json.loads(text)
        rows = {row["label"]: row for row in payload["rows"]}
        assert rows["parallel-2"]["mismatches"] == 0
        assert rows["parallel-2"]["uncertified"] == 0

    def test_search_parallel_strategy(self, db, query):
        code, text = run_cli(SCALE + ["search", *query.split(),
                                      "--strategy", "parallel", "--shards", "2"])
        assert code in (0, 1)  # tiny scale may not know the terms
        assert "strategy=parallel" in text or "no results" in text

    def test_profile_json_includes_parallel_metrics(self):
        code, text = run_cli(SCALE + ["profile", "topn", "--shards", "2",
                                      "--objects", "200", "--json"])
        assert code == 0
        payload = json.loads(text)
        counters = payload["metrics"]["counters"]
        assert counters["parallel.rounds"] >= 1
        assert "parallel.probes" in counters
        assert "parallel.queue_depth" in payload["metrics"]["gauges"]

    def test_profile_search_with_shards(self):
        code, text = run_cli(SCALE + ["profile", "search", "--terms", "data",
                                      "--shards", "2", "--json"])
        assert code == 0
        payload = json.loads(text)
        span_names = {span["name"] for root in payload["spans"]
                      for span in _walk(root)}
        assert "topn.parallel" in span_names
        assert "parallel.round" in span_names
        assert "parallel.shard" in span_names


def _walk(span):
    yield span
    for child in span.get("children", []):
        yield from _walk(child)
