"""Tests for document-range sharding of the inverted index."""

import numpy as np
import pytest

from repro.errors import ShardingError
from repro.ir import BM25, InvertedIndex
from repro.ir.ranking import score_all
from repro.parallel import shard_index
from repro.workloads import SyntheticCollection, generate_queries, trec


@pytest.fixture(scope="module")
def index():
    collection = SyntheticCollection.generate(trec.tiny(seed=11))
    return InvertedIndex.build(collection)


class TestBoundaries:
    def test_even_split(self, index):
        sharded = shard_index(index, shards=4)
        assert sharded.n_shards == 4
        assert sharded.boundaries[0] == 0
        assert sharded.boundaries[-1] == index.n_docs
        assert sharded.boundaries == sorted(sharded.boundaries)
        assert sum(s.n_docs for s in sharded.shards) == index.n_docs

    def test_postings_are_partitioned(self, index):
        sharded = shard_index(index, shards=3)
        assert sum(sharded.postings_per_shard()) == index.total_postings()
        for shard in sharded.shards:
            docs = shard.index.postings_docs.tail
            if len(docs):
                assert docs.min() >= shard.doc_lo
                assert docs.max() < shard.doc_hi

    def test_explicit_boundaries_override(self, index):
        n = index.n_docs
        sharded = shard_index(index, boundaries=[0, 1, n])
        assert sharded.shards[0].n_docs == 1
        assert sharded.shards[1].n_docs == n - 1

    def test_postings_balance_mode(self, index):
        sharded = shard_index(index, shards=3, balance="postings")
        per_shard = sharded.postings_per_shard()
        assert sum(per_shard) == index.total_postings()
        # each shard carries a nontrivial share of the postings volume
        even = index.total_postings() / 3
        assert max(per_shard) <= 2 * even

    @pytest.mark.parametrize("boundaries", [
        [5, 10],            # does not start at 0
        [0, 5],             # does not end at n_docs
        [0],                # too short
    ])
    def test_bad_boundaries_rejected(self, index, boundaries):
        assert index.n_docs not in (5, 10)
        with pytest.raises(ShardingError):
            shard_index(index, boundaries=boundaries)

    def test_descending_boundaries_rejected(self, index):
        n = index.n_docs
        with pytest.raises(ShardingError):
            shard_index(index, boundaries=[0, n // 2, n // 4, n])

    @pytest.mark.parametrize("shards", [0, -2, None])
    def test_bad_shard_count_rejected(self, index, shards):
        with pytest.raises(ShardingError):
            shard_index(index, shards=shards)

    def test_unknown_balance_mode_rejected(self, index):
        with pytest.raises(ShardingError):
            shard_index(index, shards=2, balance="bogus")

    def test_non_index_rejected(self):
        with pytest.raises(ShardingError):
            shard_index([1, 2, 3], shards=2)

    def test_fragmented_index_wrapper_accepted(self, index):
        class Wrapper:
            full = index

        sharded = shard_index(Wrapper(), shards=2)
        assert sharded.full is index


class TestShardLookup:
    def test_shard_of_covers_every_doc(self, index):
        sharded = shard_index(index, shards=5)
        for doc in range(index.n_docs):
            shard = sharded.shard_of(doc)
            assert shard.doc_lo <= doc < shard.doc_hi

    def test_shard_of_out_of_range(self, index):
        sharded = shard_index(index, shards=2)
        with pytest.raises(ShardingError):
            sharded.shard_of(index.n_docs)
        with pytest.raises(ShardingError):
            sharded.shard_of(-1)

    def test_empty_shard(self, index):
        n = index.n_docs
        sharded = shard_index(index, boundaries=[0, 0, n])
        empty = sharded.shards[0]
        assert empty.n_docs == 0
        assert empty.n_postings == 0
        assert sharded.shard_of(0).shard_id == 1

    def test_skew(self, index):
        even = shard_index(index, shards=2)
        assert even.skew() >= 1.0
        lopsided = shard_index(index, boundaries=[0, index.n_docs - 1,
                                                  index.n_docs])
        assert lopsided.skew() > even.skew()


class TestShardStatistics:
    def test_local_df_sums_to_global(self, index):
        sharded = shard_index(index, shards=4)
        local = np.sum([s.local_df for s in sharded.shards], axis=0)
        global_df = np.array([index.term_stats(t).df for t in range(index.n_terms)])
        assert np.array_equal(local, global_df)

    def test_global_df_visible_in_shards(self, index):
        """Shards share the global vocabulary: idf inputs are global."""
        sharded = shard_index(index, shards=3)
        tid = int(np.argmax([index.term_stats(t).df
                             for t in range(index.n_terms)]))
        for shard in sharded.shards:
            assert shard.index.term_stats(tid).df == index.term_stats(tid).df
            local = shard.local_term_stats(tid)
            assert local.df == shard.local_df[tid]
            assert local.df <= index.term_stats(tid).df

    def test_score_upper_bound_dominates_shard_scores(self, index):
        collection = SyntheticCollection.generate(trec.tiny(seed=11))
        query = generate_queries(collection, n_queries=1, seed=5).queries[0]
        tids = list(query.term_ids)
        model = BM25()
        sharded = shard_index(index, shards=3)
        for shard in sharded.shards:
            bound = shard.score_upper_bound(model, tids)
            bat = score_all(shard.index, tids, model)
            if len(bat):
                assert bound >= float(np.max(bat.tail)) - 1e-9

    def test_empty_shard_upper_bound_is_zero(self, index):
        sharded = shard_index(index, boundaries=[0, 0, index.n_docs])
        assert sharded.shards[0].score_upper_bound(BM25(), [0, 1]) == 0.0
