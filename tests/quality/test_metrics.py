"""Unit and property tests for retrieval-quality metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QualityError
from repro.quality import (
    average_precision,
    kendall_tau,
    mean_over_queries,
    overlap_at,
    precision_at,
    r_precision,
    recall_at,
)


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_at([1, 2, 3], {1, 2, 3}, 3) == 1.0
        assert recall_at([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_half(self):
        assert precision_at([1, 9, 2, 8], {1, 2}, 4) == 0.5
        assert recall_at([1, 9], {1, 2, 3, 4}, 2) == 0.25

    def test_short_ranking_penalized(self):
        # only 1 result returned but n=10: precision counts the misses
        assert precision_at([1], {1}, 10) == 0.1

    def test_empty_relevant(self):
        assert recall_at([1, 2], set(), 2) == 0.0

    def test_empty_ranking(self):
        assert precision_at([], {1}, 5) == 0.0

    def test_duplicates_rejected(self):
        with pytest.raises(QualityError):
            precision_at([1, 1], {1}, 2)

    def test_invalid_n(self):
        with pytest.raises(QualityError):
            precision_at([1], {1}, 0)
        with pytest.raises(QualityError):
            recall_at([1], {1}, -1)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([1, 2], {1, 2}) == 1.0

    def test_textbook_example(self):
        # relevant at ranks 1, 3, 5 out of 3 relevant total:
        # AP = (1/1 + 2/3 + 3/5) / 3
        ap = average_precision([1, 9, 2, 8, 3], {1, 2, 3})
        assert ap == pytest.approx((1 + 2 / 3 + 3 / 5) / 3)

    def test_missing_relevant_lowers_ap(self):
        assert average_precision([1], {1, 2}) == pytest.approx(0.5)

    def test_cutoff(self):
        full = average_precision([9, 8, 1], {1})
        cut = average_precision([9, 8, 1], {1}, cutoff=2)
        assert full > 0 and cut == 0.0

    def test_empty_relevant(self):
        assert average_precision([1, 2], set()) == 0.0

    def test_r_precision(self):
        assert r_precision([1, 2, 9], {1, 2}) == 1.0
        assert r_precision([9, 1], {1, 2}) == 0.5
        assert r_precision([1], set()) == 0.0


class TestOverlap:
    def test_identical(self):
        assert overlap_at([1, 2, 3], [3, 2, 1], 3) == 1.0  # sets, not order

    def test_disjoint(self):
        assert overlap_at([1, 2], [3, 4], 2) == 0.0

    def test_partial(self):
        assert overlap_at([1, 2, 3, 4], [1, 2, 9, 8], 4) == 0.5

    def test_short_lists(self):
        assert overlap_at([], [], 5) == 1.0
        assert overlap_at([1], [], 5) == 0.0

    def test_invalid_n(self):
        with pytest.raises(QualityError):
            overlap_at([1], [1], 0)


class TestKendallTau:
    def test_identical(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0

    def test_reversed(self):
        assert kendall_tau([3, 2, 1], [1, 2, 3]) == -1.0

    def test_one_swap(self):
        assert kendall_tau([2, 1, 3], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_singleton(self):
        assert kendall_tau([1], [1]) == 1.0

    def test_item_mismatch(self):
        with pytest.raises(QualityError):
            kendall_tau([1, 2], [1, 3])


class TestMean:
    def test_mean(self):
        assert mean_over_queries([0.5, 1.0]) == 0.75
        assert mean_over_queries([]) == 0.0


@given(st.lists(st.integers(0, 100), unique=True, max_size=40),
       st.sets(st.integers(0, 100), max_size=40),
       st.integers(1, 40))
def test_precision_recall_bounds(ranking, relevant, n):
    assert 0.0 <= precision_at(ranking, relevant, n) <= 1.0
    assert 0.0 <= recall_at(ranking, relevant, n) <= 1.0
    assert 0.0 <= average_precision(ranking, relevant) <= 1.0


@given(st.lists(st.integers(0, 100), unique=True, max_size=30))
def test_ap_of_exact_ranking_is_one_when_all_relevant(ranking):
    if ranking:
        assert average_precision(ranking, set(ranking)) == 1.0


@given(st.lists(st.integers(0, 50), unique=True, min_size=2, max_size=20))
def test_kendall_tau_symmetric_range(items):
    reference = sorted(items)
    tau = kendall_tau(items, reference)
    assert -1.0 <= tau <= 1.0
