"""Shared fixtures for the serve-layer tests: one small database with
planted feature spaces and one background server over it."""

import numpy as np
import pytest

from repro.core import MMDatabase
from repro.mm.features import FeatureSpace
from repro.serve import ServerConfig, ServerThread
from repro.workloads import SyntheticCollection, trec

DIMS = 6
SPACES = ("color", "texture")


def build_db(seed: int = 11, dims: int = DIMS) -> MMDatabase:
    collection = SyntheticCollection.generate(trec.tiny(seed=seed))
    db = MMDatabase.from_collection(collection)
    rng = np.random.default_rng(seed + 1)
    for name in SPACES:
        db.add_feature_space(
            FeatureSpace(name, rng.random((collection.n_docs, dims))))
    return db


@pytest.fixture(scope="module")
def db():
    database = build_db()
    yield database
    database.close()


@pytest.fixture(scope="module")
def feature_query():
    rng = np.random.default_rng(23)
    return {name: rng.random(DIMS) for name in SPACES}


@pytest.fixture(scope="module")
def server(db):
    """(handle, QueryServer) — the server thread runs in-process, so
    tests can inspect the live registry and quota manager."""
    thread = ServerThread(db, ServerConfig(chunk_depth=4))
    handle = thread.start()
    yield handle, thread.server
    thread.stop()
