"""The MOA10xx serve-safety rules: clean on the real package, firing
on seeded violations."""

import textwrap

from repro.analysis import check_serve, check_serve_paths, epoch_mismatch_diagnostic

UNDECLARED_STATE = textwrap.dedent("""\
    class Broken:
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1
            self.table["k"] = 1
""")

DECLARED_STATE = textwrap.dedent("""\
    class Fine:
        SHARED_STATE = {"count": "_lock", "table": "_lock"}

        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1
            self.table["k"] = 1
""")

NAKED_EXECUTOR = textwrap.dedent("""\
    async def pump(loop, pool, runner):
        return await loop.run_in_executor(pool, runner.step)
""")

DISCIPLINED_EXECUTOR = textwrap.dedent("""\
    async def pump(loop, pool, runner, cancel, admission):
        if cancel.cancelled():
            return None
        return await loop.run_in_executor(pool, runner.step)
""")


def write_server_module(tmp_path, source):
    path = tmp_path / "server.py"
    path.write_text(source)
    return path


def codes(report):
    return sorted(d.code for d in report.diagnostics)


class TestRealPackageIsClean:
    def test_check_serve_reports_nothing(self):
        assert check_serve().diagnostics == []


class TestMoa1001:
    def test_undeclared_mutation_fires_per_write(self, tmp_path):
        path = write_server_module(tmp_path, UNDECLARED_STATE)
        report = check_serve(tmp_path)
        assert codes(report) == ["MOA1001", "MOA1001"]
        assert all("SHARED_STATE" in d.message for d in report.diagnostics)
        assert report.diagnostics[0].site.startswith(path.name)

    def test_declared_mutation_is_clean(self, tmp_path):
        write_server_module(tmp_path, DECLARED_STATE)
        assert check_serve(tmp_path).diagnostics == []

    def test_init_writes_are_construction_not_sharing(self, tmp_path):
        write_server_module(tmp_path, "class C:\n    def __init__(self):\n"
                                      "        self.x = 1\n")
        assert check_serve(tmp_path).diagnostics == []


class TestMoa1003And1004:
    def test_naked_run_in_executor_fires_both(self, tmp_path):
        write_server_module(tmp_path, NAKED_EXECUTOR)
        assert codes(check_serve(tmp_path)) == ["MOA1003", "MOA1004"]

    def test_disciplined_call_site_is_clean(self, tmp_path):
        write_server_module(tmp_path, DISCIPLINED_EXECUTOR)
        assert check_serve(tmp_path).diagnostics == []

    def test_inline_admit_call_satisfies_1003(self, tmp_path):
        write_server_module(tmp_path, textwrap.dedent("""\
            async def pump(loop, pool, runner, cancel):
                with pool.admit():
                    return await loop.run_in_executor(pool, runner.step)
        """))
        assert check_serve(tmp_path).diagnostics == []


class TestScoping:
    def test_client_side_modules_are_out_of_scope(self, tmp_path):
        (tmp_path / "client.py").write_text(NAKED_EXECUTOR)
        (tmp_path / "bench.py").write_text(UNDECLARED_STATE)
        assert check_serve(tmp_path).diagnostics == []

    def test_explicit_paths_select_server_side_files_only(self, tmp_path):
        server = write_server_module(tmp_path, NAKED_EXECUTOR)
        other = tmp_path / "helpers.py"
        other.write_text(NAKED_EXECUTOR)
        report = check_serve_paths([server, other])
        assert codes(report) == ["MOA1003", "MOA1004"]

    def test_explicit_directory_is_scanned(self, tmp_path):
        write_server_module(tmp_path, UNDECLARED_STATE)
        assert codes(check_serve_paths([tmp_path])) == ["MOA1001", "MOA1001"]


class TestMoa1002Diagnostic:
    def test_epoch_mismatch_diagnostic_shape(self):
        diagnostic = epoch_mismatch_diagnostic(3, 5)
        assert diagnostic.code == "MOA1002"
        assert diagnostic.site == "serve.resume"
        assert "epoch 3" in diagnostic.message
        assert "epoch 5" in diagnostic.message
