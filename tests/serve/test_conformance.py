"""Acceptance conformance: streamed answers are bit-identical to the
library calls they wrap — across algorithms, shard states, disconnects
and resumes."""

import socket
import struct
import time

import numpy as np
import pytest

from repro.errors import ResumeTokenError
from repro.serve import ServeClient, ServerConfig, ServerThread, collect

from tests.serve.conftest import DIMS, build_db

ALGORITHMS = ("fa", "ta", "nra", "ca")
SHARD_STATES = (1, 4)


def expected_items(db, fq, n, algorithm):
    result = db.feature_search(fq, n=n, algorithm=algorithm).result
    return [[int(item.obj_id), float(item.score)] for item in result.items]


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(41)
    return [{"color": rng.random(DIMS), "texture": rng.random(DIMS)}
            for _ in range(3)]


class TestFinalChunkConformance:
    """The streamed final chunk equals the direct library call, for
    every algorithm, with the database unsharded and sharded."""

    @pytest.fixture(scope="class", params=SHARD_STATES,
                    ids=[f"shards{s}" for s in SHARD_STATES])
    def sharded_setup(self, request):
        db = build_db(seed=17)
        db.shard(request.param)
        thread = ServerThread(db, ServerConfig(chunk_depth=2))
        handle = thread.start()
        yield db, handle
        thread.stop()
        db.close()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_feature_stream_matches_library_call(self, sharded_setup,
                                                 queries, algorithm):
        db, handle = sharded_setup
        for fq in queries:
            want = expected_items(db, fq, 10, algorithm)
            with ServeClient(handle.host, handle.port) as client:
                result = collect(client.query(queries=fq, n=10,
                                              algorithm=algorithm,
                                              chunk_depth=2))
            assert result.complete
            assert result.final["items"] == want
            assert result.final["epoch"] == db.epoch
            # canonical tie order: score desc, id asc
            keys = [(-score, obj) for obj, score in result.final["items"]]
            assert keys == sorted(keys)

    def test_text_parallel_strategy_single_final_chunk(self, sharded_setup):
        db, handle = sharded_setup
        from repro.workloads import generate_queries

        generated = generate_queries(db.collection, n_queries=1,
                                     terms_range=(3, 5), seed=7)
        terms = " ".join(db.collection.term_strings[t]
                         for t in generated.queries[0].term_ids)
        want = db.search(terms, n=10, strategy="parallel").result
        with ServeClient(handle.host, handle.port) as client:
            result = collect(client.query(kind="text", query=terms, n=10,
                                          strategy="parallel"))
        assert result.complete and len(result.chunks) == 1
        final = result.final
        assert final["algorithm"] == "text:parallel"
        assert final["items"] == [[int(item.obj_id), float(item.score)]
                                  for item in want.items]


class TestDisconnectResume:
    @pytest.fixture(scope="class")
    def setup(self):
        db = build_db(seed=19)
        thread = ServerThread(db, ServerConfig(chunk_depth=1))
        handle = thread.start()
        yield db, handle, thread.server
        thread.stop()
        db.close()

    def resume_with_retry(self, handle, token, attempts=100):
        """Redeem, retrying while the server has not yet noticed the
        disconnect (the busy flag is released on its write failure)."""
        for _ in range(attempts):
            try:
                with ServeClient(handle.host, handle.port) as client:
                    return collect(client.resume(token))
            except ResumeTokenError as exc:
                if exc.code != "resume_busy":
                    raise
                time.sleep(0.05)
        raise AssertionError("session never released after disconnect")

    def test_abrupt_disconnect_mid_stream_then_resume(self, setup, queries):
        db, handle, server = setup
        fq = queries[0]
        want = expected_items(db, fq, 10, "nra")
        client = ServeClient(handle.host, handle.port)
        stream = client.query(queries=fq, n=10, algorithm="nra",
                              chunk_depth=1)
        first = next(stream)
        assert first["type"] == "chunk" and not first["final"]
        token = first["resume_token"]
        # abort the connection (RST, not FIN: the server must see the
        # disconnect on its next write, mid-stream)
        client._sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
        client.close()
        resumed = self.resume_with_retry(handle, token)
        assert resumed.complete
        assert resumed.final["items"] == want
        # the resumed stream continued the original chunk sequence
        assert resumed.chunks[0]["seq"] >= 1
        assert server.sessions.snapshot()["resumed"] >= 1

    def test_resume_token_is_single_reader(self, setup, queries):
        db, handle, _ = setup
        with ServeClient(handle.host, handle.port) as client:
            paused = collect(client.query(queries=queries[1], n=5,
                                          deadline_ms=0.0))
        token = paused.resume_token
        resumed = self.resume_with_retry(handle, token)
        assert resumed.complete
        # the stream completed, so the token is gone
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ResumeTokenError) as exc_info:
                collect(client.resume(token))
        assert exc_info.value.code == "resume_unknown"


class TestEpochInvalidation:
    def test_resume_across_corpus_epoch_is_refused_with_moa1002(self, queries):
        db = build_db(seed=29)
        thread = ServerThread(db, ServerConfig(chunk_depth=1))
        handle = thread.start()
        try:
            with ServeClient(handle.host, handle.port) as client:
                paused = collect(client.query(queries=queries[0], n=5,
                                              deadline_ms=0.0))
            token = paused.resume_token
            issue_epoch = db.epoch
            db.set_attribute("stamp", np.arange(db.collection.n_docs))
            assert db.epoch == issue_epoch + 1
            with ServeClient(handle.host, handle.port) as client:
                frames = list(client.resume(token))
            assert len(frames) == 1
            error = frames[0]
            assert error["type"] == "error"
            assert error["code"] == "resume_epoch_mismatch"
            assert error["moa"] == "MOA1002"
            assert error["retryable"] is False
            assert "epoch" in error["message"]
        finally:
            thread.stop()
            db.close()
