"""Hypothesis property: concurrent stream/resume interleavings of one
anytime session always converge to the cold engine answer, with zero
race-sanitizer violations.

Two threads fight over one session token the way a flaky client and
its retry do: redeem, pump one chunk, release, repeat.  Whatever
interleaving Hypothesis' schedules provoke, the session's busy flag
must keep the runner single-pumped, the chunk sequence must stay
strictly increasing, and the final chunk must be bit-identical to the
cold library call.  CI runs this file again under ``REPRO_SANITIZE=1``.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sync
from repro.errors import ResumeTokenError
from repro.mm import ArraySource
from repro.serve.session import AnytimeRunner, SessionRegistry
from repro.topn import SUM, combined_topn, fagin_topn, nra_topn, threshold_topn

COLD = {"fa": fagin_topn, "ta": threshold_topn, "nra": nra_topn,
        "ca": combined_topn}

N_OBJECTS = 48
N_SOURCES = 3
THREADS = 2


def make_sources(seed):
    rng = np.random.default_rng(seed)
    return [ArraySource(rng.random(N_OBJECTS), name=f"s{i}")
            for i in range(N_SOURCES)]


@pytest.fixture(autouse=True, scope="module")
def sanitized():
    sync.install_sanitizer()
    sync.reset_violations()
    yield
    sync.uninstall_sanitizer()


@settings(max_examples=25, deadline=None)
@given(
    algorithm=st.sampled_from(sorted(COLD)),
    n=st.integers(min_value=1, max_value=8),
    chunk_depth=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_concurrent_resume_interleavings_converge_to_cold(algorithm, n,
                                                          chunk_depth, seed):
    cold = COLD[algorithm](make_sources(seed), n, SUM)
    want = [(item.obj_id, item.score) for item in cold.items]

    registry = SessionRegistry(max_sessions=4)
    runner = AnytimeRunner(make_sources(seed), n, algorithm,
                           chunk_depth=chunk_depth)
    session = registry.issue(runner, "tenant", 0)
    session.release()  # issuing connection "disconnected" immediately
    token = session.token

    pumping = [0]  # mutual-exclusion witness, guarded by the busy flag
    sequences = {}
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        seqs = sequences.setdefault(tid, [])
        try:
            barrier.wait()
            while True:
                try:
                    mine = registry.redeem(token, 0)
                except ResumeTokenError as exc:
                    if exc.code == "resume_busy":
                        continue  # the other thread holds the stream
                    return  # resume_unknown: stream completed, dropped
                try:
                    pumping[0] += 1
                    assert pumping[0] == 1, "two concurrent pumpers"
                    chunk = mine.runner.step()
                    mine.note_delivered()
                    seqs.append(chunk.seq)
                    pumping[0] -= 1
                    if chunk.final:
                        registry.drop(token)
                        return
                finally:
                    mine.release()
        except Exception as exc:  # noqa: BLE001 - surface to the test
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert errors == []
    assert runner.finished
    assert runner._last.items == want

    # chunks were pumped exactly once each, gap-free, across both
    # threads, and each thread saw its share in increasing order
    merged = sorted(seq for seqs in sequences.values() for seq in seqs)
    assert merged == list(range(len(merged)))
    for seqs in sequences.values():
        assert seqs == sorted(seqs)


def test_no_sanitizer_violations_recorded():
    """Meta-check: under REPRO_SANITIZE=1 the interleavings above must
    have recorded zero violations against the serve declarations."""
    violations = sync.violations()
    assert violations == (), "\n".join(v.render() for v in violations)
