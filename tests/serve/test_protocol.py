"""Frame layer: length-prefixed JSON, size bounds, malformed input."""

import socket
import struct

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    error_frame,
    read_frame_sync,
    write_frame_sync,
)


def roundtrip(payload):
    a, b = socket.socketpair()
    try:
        write_frame_sync(a, payload)
        return read_frame_sync(b)
    finally:
        a.close()
        b.close()


class TestFrames:
    def test_roundtrip_preserves_payload(self):
        payload = {"op": "query", "n": 10, "items": [[1, 0.5], [2, 0.25]],
                   "nested": {"deep": True, "none": None}}
        assert roundtrip(payload) == payload

    def test_unicode_survives(self):
        assert roundtrip({"q": "café ↦ 画像"}) == {"q": "café ↦ 画像"}

    def test_multiple_frames_on_one_socket_stay_separate(self):
        a, b = socket.socketpair()
        try:
            write_frame_sync(a, {"seq": 1})
            write_frame_sync(a, {"seq": 2})
            assert read_frame_sync(b) == {"seq": 1}
            assert read_frame_sync(b) == {"seq": 2}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert read_frame_sync(b) is None
        finally:
            b.close()

    def test_encode_layout_is_big_endian_length_prefix(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4:] == b'{"a":1}'


class TestBounds:
    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_oversized_length_prefix_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                read_frame_sync(b)
        finally:
            a.close()
            b.close()


class TestMalformed:
    def test_garbage_body_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_body(b"{not json")

    def test_non_object_body_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_body(b"[1, 2, 3]")

    def test_invalid_utf8_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_body(b"\xff\xfe{}")


class TestErrorFrame:
    def test_minimal(self):
        frame = error_frame("bad_request", "nope")
        assert frame == {"type": "error", "code": "bad_request",
                         "message": "nope", "retryable": False}

    def test_retry_hint_and_moa(self):
        frame = error_frame("quota", "slow down", retryable=True,
                            retry_after_ms=123.4567, moa="MOA1002")
        assert frame["retryable"] is True
        assert frame["retry_after_ms"] == 123.457
        assert frame["moa"] == "MOA1002"
