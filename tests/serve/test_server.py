"""Socket-level server behavior: ops, admission, deadlines, HTTP shim."""

import http.client
import json

import numpy as np
import pytest

from repro.errors import ProtocolError, QuotaExceededError, ServeError
from repro.serve import ServeClient, ServerConfig, ServerThread, TenantConfig, collect

from tests.serve.conftest import DIMS, build_db


class TestControlOps:
    def test_ping(self, server):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            assert client.ping()["type"] == "pong"

    def test_stats_snapshot_shape(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            collect(client.query(queries=feature_query, n=5))
            stats = client.stats()
        assert stats["server"]["requests"] >= 2
        assert "epoch" in stats["server"]
        assert "default" in stats["tenants"]
        assert set(stats["sessions"]) == {"active", "issued", "resumed",
                                          "epoch_mismatches"}

    def test_unknown_op_is_a_bad_request(self, server):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            from repro.serve.protocol import read_frame_sync, write_frame_sync
            write_frame_sync(client._sock, {"op": "flush"})
            frame = read_frame_sync(client._sock)
        assert frame["type"] == "error" and frame["code"] == "bad_request"

    def test_connection_survives_a_bad_request(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError):
                collect(client.query(queries={"no_such_space": [0.0] * DIMS}))
            result = collect(client.query(queries=feature_query, n=3))
        assert result.complete


class TestQueryValidation:
    @pytest.mark.parametrize("request_patch, match", (
        ({"n": 0}, "n must be"),
        ({"n": 100_000}, "n must be"),
        ({"algorithm": "fuzzy"}, "unknown algorithm"),
        ({"agg": "harmonic"}, "unknown aggregate"),
        ({"kind": "graph"}, "unknown query kind"),
        ({"queries": {}}, "feature query needs"),
    ))
    def test_invalid_queries_answer_error_frames(self, server, feature_query,
                                                 request_patch, match):
        handle, _ = server
        request = {"queries": feature_query, "n": 5}
        request.update(request_patch)
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError, match=match):
                collect(client.query(**request))


class TestStreaming:
    def test_streams_prefinal_chunks_then_completes(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            result = collect(client.query(queries=feature_query, n=10,
                                          algorithm="ta", chunk_depth=1))
        assert result.complete
        assert result.done["chunks"] == len(result.chunks)
        assert sum(1 for c in result.chunks if not c["final"]) >= 1
        assert result.final is result.chunks[-1]
        for chunk in result.chunks:
            assert chunk["resume_token"].startswith("sv1.")

    def test_completed_session_is_dropped(self, server, feature_query):
        handle, query_server = server
        with ServeClient(handle.host, handle.port) as client:
            result = collect(client.query(queries=feature_query, n=5))
            token = result.chunks[-1]["resume_token"]
            with pytest.raises(Exception) as exc_info:
                collect(client.resume(token))
        assert getattr(exc_info.value, "code", None) == "resume_unknown"
        assert query_server.sessions.size() == 0

    def test_zero_deadline_stops_before_any_chunk(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            result = collect(client.query(queries=feature_query, n=5,
                                          deadline_ms=0.0))
        assert result.done["status"] == "deadline"
        assert result.chunks == []
        assert result.resume_token.startswith("sv1.")

    def test_deadline_stopped_stream_resumes_to_completion(self, server,
                                                           feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            paused = collect(client.query(queries=feature_query, n=5,
                                          algorithm="nra", deadline_ms=0.0))
        with ServeClient(handle.host, handle.port) as client:
            resumed = collect(client.resume(paused.resume_token))
        assert resumed.complete
        assert resumed.final is not None


class TestDeadlineValidation:
    def test_malformed_deadline_is_a_bad_request(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError, match="deadline_ms"):
                collect(client.query(queries=feature_query, n=3,
                                     deadline_ms="soon"))

    def test_malformed_deadlines_leak_no_concurrency_slots(self, server,
                                                           feature_query):
        # regression: deadline_ms was parsed between quota admit and the
        # admission context, so each bad value leaked one in_flight slot
        # until the tenant was permanently capped out
        handle, query_server = server
        cap = TenantConfig("default").max_concurrent
        with ServeClient(handle.host, handle.port) as client:
            for _ in range(cap + 2):
                with pytest.raises(ServeError, match="deadline_ms"):
                    collect(client.query(queries=feature_query, n=3,
                                         deadline_ms=[100.0]))
            assert query_server.quotas.tenant("default").in_flight == 0
            assert collect(client.query(queries=feature_query, n=3)).complete

    def test_malformed_deadline_on_resume_leaves_session_resumable(
            self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            paused = collect(client.query(queries=feature_query, n=5,
                                          algorithm="nra", deadline_ms=0.0))
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError, match="deadline_ms"):
                collect(client.resume(paused.resume_token,
                                      deadline_ms="later"))
        with ServeClient(handle.host, handle.port) as client:
            assert collect(client.resume(paused.resume_token)).complete

    def test_nonfinite_deadline_is_a_bad_request(self, server, feature_query):
        handle, _ = server
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError, match="deadline_ms"):
                collect(client.query(queries=feature_query, n=3,
                                     deadline_ms=float("nan")))


class TestEngineFailureMidStream:
    def test_engine_error_sends_error_frame_and_frees_the_session(
            self, server, feature_query, monkeypatch):
        # regression: a step() exception used to escape _stream, closing
        # the connection with no error frame and pinning the session
        # busy in the registry forever
        from repro.serve.session import AnytimeRunner

        def boom(self):
            raise RuntimeError("engine exploded")

        handle, query_server = server
        sessions_before = query_server.sessions.size()
        monkeypatch.setattr(AnytimeRunner, "step", boom)
        with ServeClient(handle.host, handle.port) as client:
            with pytest.raises(ServeError, match="engine exploded"):
                collect(client.query(queries=feature_query, n=5))
        monkeypatch.undo()
        assert query_server.sessions.size() == sessions_before
        # the error frame is sent from inside the admission context, so
        # give the server a beat to exit it and release the slot
        import time
        deadline = time.monotonic() + 5.0
        while (query_server.quotas.tenant("default").in_flight
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert query_server.quotas.tenant("default").in_flight == 0
        with ServeClient(handle.host, handle.port) as client:
            assert collect(client.query(queries=feature_query, n=3)).complete


class TestQuotaEnforcement:
    @pytest.fixture()
    def throttled_server(self):
        db = build_db(seed=31)
        config = ServerConfig(tenants=(
            TenantConfig("capped", rate=0.001, burst=2.0, max_concurrent=4),),
            allow_unknown=True)
        with ServerThread(db, config) as handle:
            yield handle
        db.close()

    def test_bucket_exhaustion_is_a_retryable_quota_error(self, throttled_server):
        rng = np.random.default_rng(3)
        fq = {"color": rng.random(DIMS), "texture": rng.random(DIMS)}
        with ServeClient(throttled_server.host, throttled_server.port) as client:
            assert collect(client.query(tenant="capped", queries=fq,
                                        n=3)).complete
            assert collect(client.query(tenant="capped", queries=fq,
                                        n=3)).complete
            with pytest.raises(QuotaExceededError) as exc_info:
                collect(client.query(tenant="capped", queries=fq, n=3))
        assert exc_info.value.retry_after is not None
        assert exc_info.value.retry_after > 0
        # rejection is an error frame, not a dropped connection: the
        # same client keeps working under another tenant
        with ServeClient(throttled_server.host, throttled_server.port) as client:
            assert collect(client.query(tenant="other", queries=fq,
                                        n=3)).complete


class TestHttpShim:
    def http(self, handle):
        return http.client.HTTPConnection(handle.host, handle.port, timeout=30)

    def test_healthz(self, server):
        handle, _ = server
        conn = self.http(handle)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read()) == {"status": "ok"}
        conn.close()

    def test_stats_document(self, server):
        handle, _ = server
        conn = self.http(handle)
        conn.request("GET", "/stats")
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert set(payload) == {"server", "tenants", "sessions"}
        conn.close()

    def test_unknown_route_is_404(self, server):
        handle, _ = server
        conn = self.http(handle)
        conn.request("GET", "/admin")
        assert conn.getresponse().status == 404
        conn.close()

    def test_post_query_streams_ndjson(self, server, feature_query):
        handle, _ = server
        body = json.dumps({
            "queries": {name: list(map(float, vec))
                        for name, vec in feature_query.items()},
            "n": 5, "algorithm": "ta", "chunk_depth": 1,
        })
        conn = self.http(handle)
        conn.request("POST", "/query", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        frames = [json.loads(line) for line in response.read().splitlines()]
        conn.close()
        assert frames[-1] == {"type": "done", "status": "complete",
                              "chunks": len(frames) - 1}
        assert all(frame["type"] == "chunk" for frame in frames[:-1])
        assert frames[-2]["final"] is True

    def test_post_query_rejects_garbage_body(self, server):
        handle, _ = server
        conn = self.http(handle)
        conn.request("POST", "/query", body="{not json",
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 400
        conn.close()


class TestProtocolEdges:
    def test_oversized_native_frame_gets_an_error_frame(self, server):
        import socket
        import struct

        from repro.serve.protocol import MAX_FRAME_BYTES, read_frame_sync

        handle, _ = server
        sock = socket.create_connection((handle.host, handle.port), timeout=30)
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            frame = read_frame_sync(sock)
        finally:
            sock.close()
        assert frame["type"] == "error" and frame["code"] == "bad_request"

    def test_half_frame_then_eof_closes_quietly(self, server):
        import socket
        import struct

        handle, _ = server
        sock = socket.create_connection((handle.host, handle.port), timeout=30)
        sock.sendall(struct.pack(">I", 100) + b'{"op"')
        sock.close()  # server must not crash; next probe still answers
        with ServeClient(handle.host, handle.port) as client:
            assert client.ping()["type"] == "pong"

    def test_client_raises_on_midstream_server_silence(self):
        # ProtocolError surface: a socket that closes before `done`
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        from repro.serve.protocol import read_frame_sync as read_one

        def accept_and_close():
            conn, _ = listener.accept()
            # read the whole request frame so close() sends a clean FIN
            # (unread bytes would turn the close into an RST)
            read_one(conn)
            conn.close()

        thread = threading.Thread(target=accept_and_close, daemon=True)
        thread.start()
        client = ServeClient("127.0.0.1", port)
        try:
            with pytest.raises(ProtocolError, match="mid-stream"):
                for _ in client.query(queries={"color": [0.0]}):
                    pass
        finally:
            client.close()
            thread.join()
            listener.close()
