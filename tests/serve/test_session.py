"""Anytime runners, resume tokens, and the session registry."""

import numpy as np
import pytest

from repro.errors import ResumeTokenError, TopNError
from repro.mm import ArraySource
from repro.serve.session import (
    ALGORITHMS,
    AnytimeRunner,
    ServeSession,
    SessionRegistry,
    make_token,
    parse_token,
)
from repro.topn import SUM, combined_topn, fagin_topn, nra_topn, threshold_topn

COLD = {"fa": fagin_topn, "ta": threshold_topn, "nra": nra_topn,
        "ca": combined_topn}

N_OBJECTS = 96
N_SOURCES = 3


def make_sources(seed=5, n_objects=N_OBJECTS, n_sources=N_SOURCES):
    rng = np.random.default_rng(seed)
    return [ArraySource(rng.random(n_objects), name=f"s{i}")
            for i in range(n_sources)]


def drain(runner, limit=64):
    chunks = []
    while not runner.finished:
        chunks.append(runner.step())
        assert len(chunks) <= limit, "runner never reached a final chunk"
    return chunks


class TestAnytimeRunner:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_final_chunk_matches_cold_engine(self, algorithm):
        runner = AnytimeRunner(make_sources(), n=10, algorithm=algorithm,
                               chunk_depth=2)
        final = drain(runner)[-1]
        cold = COLD[algorithm](make_sources(), 10, SUM)
        assert final.final and final.certified
        assert final.items == [(item.obj_id, item.score)
                               for item in cold.items]

    @pytest.mark.parametrize("algorithm", ("ta", "nra", "ca"))
    def test_streams_partial_chunks_before_final(self, algorithm):
        chunks = drain(AnytimeRunner(make_sources(), n=10,
                                     algorithm=algorithm, chunk_depth=1))
        assert len(chunks) >= 2
        assert all(not chunk.final for chunk in chunks[:-1])
        assert [chunk.seq for chunk in chunks] == list(range(len(chunks)))

    def test_fa_answers_in_one_final_chunk(self):
        chunks = drain(AnytimeRunner(make_sources(), n=5, algorithm="fa",
                                     chunk_depth=1))
        assert len(chunks) == 1 and chunks[0].final

    def test_partial_bounds_dominate_the_final_scores(self):
        chunks = drain(AnytimeRunner(make_sources(), n=10, algorithm="ta",
                                     chunk_depth=1, epoch=3))
        final_scores = [score for _, score in chunks[-1].items]
        for chunk in chunks[:-1]:
            assert chunk.bound is not None
            assert chunk.bound.epoch == 3
            # -key[0] is the certified ceiling on any unseen object
            assert -chunk.bound.key[0] >= min(final_scores) - 1e-9

    def test_step_after_final_resends_the_same_chunk(self):
        runner = AnytimeRunner(make_sources(), n=5, algorithm="ta",
                               chunk_depth=64)
        final = drain(runner)[-1]
        assert runner.step() is final

    def test_frame_serialization_is_json_native(self):
        runner = AnytimeRunner(make_sources(), n=5, algorithm="nra",
                               chunk_depth=64)
        frame = drain(runner)[-1].to_frame("sv1.x.0")
        assert frame["type"] == "chunk"
        assert frame["resume_token"] == "sv1.x.0"
        for obj_id, score in frame["items"]:
            assert type(obj_id) is int and type(score) is float
        assert all(isinstance(v, (bool, int, float, str, type(None)))
                   for v in frame["stats"].values())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(TopNError, match="unknown algorithm"):
            AnytimeRunner(make_sources(), n=5, algorithm="fuzzy")

    def test_bad_chunk_depth_rejected(self):
        with pytest.raises(TopNError, match="chunk_depth"):
            AnytimeRunner(make_sources(), n=5, algorithm="ta", chunk_depth=0)


class TestTokens:
    def test_roundtrip_embeds_the_epoch(self):
        token = make_token(epoch=7)
        session_id, epoch = parse_token(token)
        assert epoch == 7
        assert token == f"sv1.{session_id}.7"

    def test_tokens_are_unique(self):
        assert len({make_token(0) for _ in range(100)}) == 100

    @pytest.mark.parametrize("bad", ("", "sv1.x", "sv2.x.0", "sv1.x.y",
                                     "sv1.x.0.extra"))
    def test_malformed_tokens_rejected(self, bad):
        with pytest.raises(ResumeTokenError, match="malformed"):
            parse_token(bad)


def issue_released(registry, epoch=0):
    runner = AnytimeRunner(make_sources(), n=5, algorithm="ta")
    session = registry.issue(runner, "tenant", epoch)
    session.release()  # as after a disconnect
    return session


class TestSessionRegistry:
    def test_issue_then_redeem_roundtrip(self):
        registry = SessionRegistry()
        session = issue_released(registry)
        assert registry.redeem(session.token, 0) is session
        assert session.busy  # redeem re-attached the stream

    def test_busy_session_refuses_a_second_reader(self):
        registry = SessionRegistry()
        session = issue_released(registry)
        registry.redeem(session.token, 0)
        with pytest.raises(ResumeTokenError) as exc_info:
            registry.redeem(session.token, 0)
        assert exc_info.value.code == "resume_busy"

    def test_unknown_token_redeems_as_unknown(self):
        registry = SessionRegistry()
        with pytest.raises(ResumeTokenError) as exc_info:
            registry.redeem(make_token(0), 0)
        assert exc_info.value.code == "resume_unknown"

    def test_epoch_mismatch_is_moa1002_even_for_evicted_tokens(self):
        registry = SessionRegistry()
        with pytest.raises(ResumeTokenError) as exc_info:
            registry.redeem(make_token(epoch=1), current_epoch=2)
        error = exc_info.value
        assert error.code == "resume_epoch_mismatch"
        assert error.diagnostic is not None
        assert error.diagnostic.code == "MOA1002"
        assert registry.snapshot()["epoch_mismatches"] == 1

    def test_lru_eviction_drops_the_oldest_idle_session(self):
        registry = SessionRegistry(max_sessions=2)
        idle = issue_released(registry)
        issue_released(registry)
        issue_released(registry)  # overflows: the oldest idle one goes
        assert registry.size() == 2
        with pytest.raises(ResumeTokenError) as exc_info:
            registry.redeem(idle.token, 0)
        assert exc_info.value.code == "resume_unknown"

    def test_lru_eviction_never_drops_a_live_stream(self):
        registry = SessionRegistry(max_sessions=1)
        live = registry.issue(  # stays attached: must never be evicted
            AnytimeRunner(make_sources(), n=5, algorithm="ta"), "t", 0)
        issue_released(registry)  # overflow, but the LRU head is busy
        # the busy session is still registered (resume_busy, not unknown)
        with pytest.raises(ResumeTokenError) as busy_info:
            registry.redeem(live.token, 0)
        assert busy_info.value.code == "resume_busy"

    def test_lru_eviction_skips_a_busy_head_to_the_next_idle(self):
        # regression: eviction used to stop at a busy LRU head, letting
        # one long-lived stream pin every idle session behind it
        registry = SessionRegistry(max_sessions=2)
        live = registry.issue(  # busy: becomes the un-evictable LRU head
            AnytimeRunner(make_sources(), n=5, algorithm="ta"), "t", 0)
        idle = issue_released(registry)
        issue_released(registry)  # overflow: skip `live`, evict `idle`
        assert registry.size() == 2
        with pytest.raises(ResumeTokenError) as busy_info:
            registry.redeem(live.token, 0)
        assert busy_info.value.code == "resume_busy"
        with pytest.raises(ResumeTokenError) as gone_info:
            registry.redeem(idle.token, 0)
        assert gone_info.value.code == "resume_unknown"

    def test_drop_forgets_the_token(self):
        registry = SessionRegistry()
        session = issue_released(registry)
        registry.drop(session.token)
        with pytest.raises(ResumeTokenError):
            registry.redeem(session.token, 0)
        assert registry.size() == 0

    def test_snapshot_counters(self):
        registry = SessionRegistry()
        session = issue_released(registry)
        registry.redeem(session.token, 0)
        snap = registry.snapshot()
        assert snap == {"active": 1, "issued": 1, "resumed": 1,
                        "epoch_mismatches": 0}


class TestServeSession:
    def test_acquire_release_cycle(self):
        session = ServeSession("sv1.x.0", None, "t", 0)
        assert not session.busy
        assert session.acquire()
        assert not session.acquire()
        session.release()
        assert session.acquire()

    def test_delivery_accounting(self):
        session = ServeSession("sv1.x.0", None, "t", 0)
        session.note_delivered()
        session.note_delivered()
        assert session.delivered == 2
