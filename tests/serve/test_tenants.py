"""Tenant quotas: token buckets on a virtual clock, concurrency caps,
and the QuotaManager admission gate."""

import pytest

from repro.errors import QuotaExceededError
from repro.serve.tenants import (
    QuotaManager,
    TenantConfig,
    TenantState,
    TokenBucket,
    percentile,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_is_the_deficit_over_the_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        assert not bucket.try_acquire()

    def test_retry_after_zero_when_tokens_available(self):
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=FakeClock())
        assert bucket.retry_after() == 0.0


class TestTenantState:
    def test_concurrency_cap(self):
        state = TenantState(TenantConfig("t", max_concurrent=2),
                            clock=FakeClock())
        assert state.begin() and state.begin()
        assert not state.begin()
        state.end()
        assert state.begin()

    def test_snapshot_counts_and_percentiles(self):
        clock = FakeClock()
        state = TenantState(TenantConfig("t"), clock=clock)
        state.begin()
        state.end(latency_ms=10.0)
        state.begin()
        state.end(latency_ms=30.0)
        state.note_rejected("quota")
        state.note_rejected("concurrency")
        state.note_chunk()
        snap = state.snapshot()
        assert snap["admitted"] == 2
        assert snap["completed"] == 2
        assert snap["in_flight"] == 0
        assert snap["rejected_quota"] == 1
        assert snap["rejected_concurrency"] == 1
        assert snap["chunks_streamed"] == 1
        assert snap["p50_ms"] == 10.0
        assert snap["p99_ms"] == 30.0

    def test_invalid_config_rejected(self):
        with pytest.raises(QuotaExceededError, match="invalid tenant config"):
            TenantState(TenantConfig("t", rate=0.0), clock=FakeClock())


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0


class TestQuotaManager:
    def make(self, clock=None, **kwargs):
        return QuotaManager(
            configs=[TenantConfig("paid", rate=10.0, burst=2.0,
                                  max_concurrent=1)],
            clock=clock or FakeClock(), **kwargs)

    def test_admission_is_a_context_holding_the_slot(self):
        quotas = self.make()
        with quotas.admit("paid") as state:
            assert state.in_flight == 1
            with pytest.raises(QuotaExceededError, match="concurrent"):
                quotas.admit("paid")
        assert quotas.tenant("paid").in_flight == 0

    def test_bucket_rejection_carries_retry_after(self):
        quotas = self.make()
        quotas.admit("paid").__exit__(None, None, None)
        quotas.admit("paid").__exit__(None, None, None)
        with pytest.raises(QuotaExceededError) as exc_info:
            quotas.admit("paid")
        assert exc_info.value.retry_after == pytest.approx(0.1)

    def test_admission_records_latency(self):
        clock = FakeClock()
        quotas = self.make(clock=clock)
        admission = quotas.admit("paid")
        with admission:
            clock.advance(0.050)
        assert quotas.tenant("paid").snapshot()["p50_ms"] == pytest.approx(50.0)

    def test_unknown_tenant_gets_default_quota(self):
        quotas = self.make()
        with quotas.admit("walk-in") as state:
            assert state.config.name == "walk-in"
            assert state.config.rate == TenantConfig("default").rate

    def test_concurrent_unknown_tenant_creation_shares_one_state(self):
        # regression: tenant() used to get under the lock, release it,
        # then register — two racing admits could each build a distinct
        # TenantState and split the in_flight accounting between them
        import threading

        quotas = self.make()
        barrier = threading.Barrier(8)
        states = []

        def grab():
            barrier.wait()
            states.append(quotas.tenant("walk-in"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(states) == 8
        assert all(state is states[0] for state in states)

    def test_unknown_tenant_rejected_when_closed(self):
        quotas = self.make(allow_unknown=False)
        with pytest.raises(QuotaExceededError, match="unknown tenant"):
            quotas.admit("walk-in")

    def test_snapshot_covers_all_tenants(self):
        quotas = self.make()
        quotas.admit("extra").__exit__(None, None, None)
        snap = quotas.snapshot()
        assert set(snap) == {"paid", "extra"}
        assert snap["extra"]["completed"] == 1
