"""Unit tests for the BAT container."""

import numpy as np
import pytest

from repro.errors import BATShapeError, BATTypeError
from repro.storage import BAT


class TestConstruction:
    def test_dense_head_default(self):
        bat = BAT([10, 20, 30])
        assert bat.is_dense_head
        assert bat.count == 3
        assert list(bat.head_array()) == [0, 1, 2]

    def test_dense_head_with_base(self):
        bat = BAT([1.5, 2.5], hseqbase=100)
        assert list(bat.head_array()) == [100, 101]

    def test_materialized_head(self):
        bat = BAT([5, 6], head=[9, 3])
        assert not bat.is_dense_head
        assert list(bat.head_array()) == [9, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(BATShapeError):
            BAT([1, 2, 3], head=[1, 2])

    def test_negative_hseqbase_rejected(self):
        with pytest.raises(BATShapeError):
            BAT([1], hseqbase=-1)

    def test_string_tail(self):
        bat = BAT(["the", "quick", "fox"])
        assert bat.tail_dtype_kind == "U"
        assert bat.to_list() == [(0, "the"), (1, "quick"), (2, "fox")]

    def test_bool_tail_coerced_to_int(self):
        bat = BAT([True, False, True])
        assert bat.tail_dtype_kind == "i"

    def test_object_tail_coerced_to_str(self):
        bat = BAT(np.array(["a", "bb"], dtype=object))
        assert bat.tail_dtype_kind == "U"

    def test_two_dimensional_tail_rejected(self):
        with pytest.raises(BATShapeError):
            BAT(np.zeros((2, 2)))

    def test_non_integer_head_rejected(self):
        with pytest.raises(BATTypeError):
            BAT([1, 2], head=[0.5, 1.5])

    def test_complex_tail_rejected(self):
        with pytest.raises(BATTypeError):
            BAT(np.array([1 + 2j]))

    def test_dense_factory(self):
        bat = BAT.dense(4, hseqbase=10)
        assert list(bat.tail) == [0, 1, 2, 3]
        assert list(bat.head_array()) == [10, 11, 12, 13]
        assert bat.tail_sorted and bat.tail_key

    def test_from_pairs_roundtrip(self):
        pairs = [(3, 1.0), (1, 2.0), (2, 0.5)]
        bat = BAT.from_pairs(pairs)
        assert bat.to_list() == pairs

    def test_from_pairs_empty(self):
        bat = BAT.from_pairs([])
        assert len(bat) == 0

    def test_unique_segment_ids(self):
        a, b = BAT([1]), BAT([1])
        assert a.segment_id != b.segment_id


class TestProperties:
    def test_verify_sorted_flag_true(self):
        assert BAT([1, 2, 3], tail_sorted=True).verify_properties()

    def test_verify_sorted_flag_false(self):
        assert not BAT([3, 1, 2], tail_sorted=True).verify_properties()

    def test_verify_desc_flag(self):
        assert BAT([3, 2, 1], tail_sorted_desc=True).verify_properties()
        assert not BAT([1, 3, 2], tail_sorted_desc=True).verify_properties()

    def test_verify_tail_key(self):
        assert BAT([1, 2, 3], tail_key=True).verify_properties()
        assert not BAT([1, 2, 2], tail_key=True).verify_properties()

    def test_verify_head_key(self):
        assert BAT([1, 2], head=[5, 6], head_key=True).verify_properties()
        assert not BAT([1, 2], head=[5, 5], head_key=True).verify_properties()

    def test_refresh_sortedness(self):
        bat = BAT([1, 2, 3]).refresh_sortedness()
        assert bat.tail_sorted and not bat.tail_sorted_desc
        bat = BAT([3, 2, 1]).refresh_sortedness()
        assert bat.tail_sorted_desc and not bat.tail_sorted

    def test_refresh_sortedness_short(self):
        bat = BAT([7]).refresh_sortedness()
        assert bat.tail_sorted and bat.tail_sorted_desc

    def test_dense_head_is_key(self):
        assert BAT([1, 2]).head_key


class TestAccessors:
    def test_head_positions_dense(self):
        bat = BAT([1.0, 2.0, 3.0], hseqbase=5)
        assert list(bat.head_positions(np.array([5, 7]))) == [0, 2]

    def test_head_positions_materialized_rejected(self):
        bat = BAT([1, 2], head=[4, 5])
        with pytest.raises(BATShapeError):
            bat.head_positions(np.array([4]))

    def test_same_content(self):
        a = BAT([1.0, 2.0], head=[0, 1])
        b = BAT([1.0, 2.0])
        assert a.same_content(b)
        assert b.same_content(a)

    def test_same_content_order_sensitive(self):
        a = BAT([1.0, 2.0])
        b = BAT([2.0, 1.0])
        assert not a.same_content(b)

    def test_same_content_dtype_kind_mismatch(self):
        assert not BAT([1, 2]).same_content(BAT(["1", "2"]))

    def test_same_content_empty(self):
        assert BAT.from_pairs([]).same_content(BAT.from_pairs([]))

    def test_clone_with_overrides_tail(self):
        original = BAT([1, 2, 3], hseqbase=4)
        clone = original.clone_with(tail=np.array([9, 9, 9]))
        assert list(clone.tail) == [9, 9, 9]
        assert clone.hseqbase == 4
        assert list(original.tail) == [1, 2, 3]

    def test_pairs_yield_python_scalars(self):
        bat = BAT([1.5])
        head, tail = next(bat.pairs())
        assert isinstance(head, int)
        assert isinstance(tail, float)
