"""The pluggable replacement policies: LRU, segmented LRU (2Q) and
CLOCK, plus the manager-level guarantees every policy must preserve —
pins are never victims, flush keeps pinned frames, live migration
keeps residency."""

import pytest

from repro.core import DatabaseConfig
from repro.errors import BufferError_, ReproError
from repro.storage.buffer import BufferManager
from repro.storage.policies import POLICIES, make_policy

POLICY_NAMES = sorted(POLICIES)


def fill(manager, n, segment=0):
    for page in range(n):
        manager.request(segment, page)


class TestLRU:
    def test_evicts_coldest(self):
        manager = BufferManager(capacity_pages=3, policy="lru")
        fill(manager, 3)
        manager.request(0, 0)  # page 0 now hottest; page 1 coldest
        manager.request(0, 3)  # evicts page 1
        assert manager.request(0, 0)  # hit
        assert not manager.request(0, 1)  # miss: was evicted
        assert manager.evictions >= 1


class TestSLRU:
    def test_scan_resistance(self):
        """A one-pass cold scan must not flush the re-referenced hot
        set — the property LRU lacks and SLRU exists for."""
        hot = list(range(4))
        manager = BufferManager(capacity_pages=8, policy="slru")
        for page in hot:
            manager.request(0, page)
        for page in hot:
            manager.request(0, page)  # re-reference: promote to protected
        for page in range(100, 140):  # large one-pass scan on segment 1
            manager.request(1, page)
        hits = sum(manager.request(0, page) for page in hot)
        assert hits == len(hot), "scan evicted the protected hot set"

    def test_lru_not_scan_resistant_baseline(self):
        """The contrast case: under plain LRU the same scan flushes
        the hot set (this is why slru is worth selecting)."""
        hot = list(range(4))
        manager = BufferManager(capacity_pages=8, policy="lru")
        for page in hot:
            manager.request(0, page)
        for page in hot:
            manager.request(0, page)
        for page in range(100, 140):
            manager.request(1, page)
        hits = sum(manager.request(0, page) for page in hot)
        assert hits == 0

    def test_protected_fraction_validated(self):
        import threading

        with pytest.raises(BufferError_):
            POLICIES["slru"](threading.Lock(), protected_fraction=1.5)


class TestClock:
    def test_second_chance(self):
        manager = BufferManager(capacity_pages=3, policy="clock")
        fill(manager, 3)
        manager.request(0, 0)  # sets page 0's reference bit
        manager.request(0, 3)  # hand skips page 0 (bit set), evicts 1 or 2
        assert manager.request(0, 0), "referenced frame lost its second chance"

    def test_cold_newcomer_is_next_victim(self):
        manager = BufferManager(capacity_pages=2, policy="clock")
        manager.request(0, 0)
        manager.request(0, 0)  # hot
        manager.request(0, 1)  # cold newcomer
        manager.request(0, 2)  # must evict the cold page 1
        assert manager.request(0, 0)
        assert not manager.request(0, 1)


class TestManagerInvariants:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_pinned_never_evicted(self, policy):
        manager = BufferManager(capacity_pages=3, policy=policy)
        manager.request(0, 0)
        manager.pin(0, 0)
        fill(manager, 10)
        assert manager.request(0, 0), f"{policy} evicted a pinned page"
        manager.unpin(0, 0)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_all_pinned_overflow_raises(self, policy):
        # pins beyond capacity (pin admits without evicting); the next
        # ordinary request cannot shrink the pool back under capacity
        manager = BufferManager(capacity_pages=2, policy=policy)
        for page in range(3):
            manager.pin(0, page)
        with pytest.raises(BufferError_):
            manager.request(0, 5)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_flush_keeps_pinned(self, policy):
        manager = BufferManager(capacity_pages=8, policy=policy)
        fill(manager, 4)
        manager.pin(0, 2)
        manager.flush()
        assert manager.resident_pages == 1
        assert manager.request(0, 2)  # still resident
        manager.unpin(0, 2)

    def test_unpin_unknown_raises(self):
        manager = BufferManager(capacity_pages=2)
        with pytest.raises(BufferError_):
            manager.unpin(0, 7)

    @pytest.mark.parametrize("target", POLICY_NAMES)
    def test_set_policy_migrates_residency(self, target):
        manager = BufferManager(capacity_pages=8, policy="lru")
        fill(manager, 5)
        manager.pin(0, 4)
        manager.set_policy(target)
        assert manager.policy_name == target
        assert manager.resident_pages == 5
        for page in range(5):
            assert manager.request(0, page), (target, page)
        assert manager.pinned_pages == 1  # pins live on the manager
        manager.unpin(0, 4)

    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferError_):
            BufferManager(policy="mru")
        import threading

        with pytest.raises(BufferError_):
            make_policy("fifo", threading.Lock())

    def test_config_validates_policy(self):
        DatabaseConfig(buffer_policy="slru").validate()
        with pytest.raises(ReproError):
            DatabaseConfig(buffer_policy="mru").validate()
