"""Property-based tests: the buffer manager against a reference model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferManager


class ReferenceLRU:
    """An obviously-correct LRU cache model."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: OrderedDict = OrderedDict()

    def request(self, key) -> bool:
        if key in self.entries:
            self.entries.move_to_end(key)
            return True
        self.entries[key] = None
        if len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
        return False


requests = st.lists(
    st.tuples(st.integers(1, 3), st.integers(0, 10)),  # (segment, page)
    min_size=0,
    max_size=200,
)


@given(st.integers(1, 8), requests)
@settings(max_examples=100, deadline=None)
def test_buffer_matches_reference_lru(capacity, sequence):
    buffer = BufferManager(capacity_pages=capacity, page_tuples=10)
    model = ReferenceLRU(capacity)
    for segment, page in sequence:
        assert buffer.request(segment, page) == model.request((segment, page))
    assert buffer.resident_pages == len(model.entries)


@given(st.integers(1, 8), requests, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_evict_segment_matches_reference(capacity, sequence, victim):
    buffer = BufferManager(capacity_pages=capacity, page_tuples=10)
    model = ReferenceLRU(capacity)
    for segment, page in sequence:
        buffer.request(segment, page)
        model.request((segment, page))
    buffer.evict_segment(victim)
    for key in [k for k in model.entries if k[0] == victim]:
        del model.entries[key]
    # all remaining pages still hit; evicted ones miss
    for (segment, page) in set(sequence):
        expected = (segment, page) in model.entries
        assert buffer.request(segment, page) == expected
        model.request((segment, page))


@given(st.integers(1, 64), st.integers(0, 500), st.integers(0, 100))
@settings(max_examples=80, deadline=None)
def test_scan_miss_count_bounded_by_pages(page_tuples, n_tuples, start):
    buffer = BufferManager(capacity_pages=4096, page_tuples=page_tuples)
    misses = buffer.scan(1, n_tuples, start_tuple=start)
    assert misses == buffer.pages_for(n_tuples + (start % page_tuples)) or (
        misses <= buffer.pages_for(n_tuples) + 1
    )
    # a repeated scan of the same range is fully warm
    assert buffer.scan(1, n_tuples, start_tuple=start) == 0


@given(requests)
@settings(max_examples=60, deadline=None)
def test_counters_are_consistent(sequence):
    buffer = BufferManager(capacity_pages=4, page_tuples=10)
    for segment, page in sequence:
        buffer.request(segment, page)
    assert buffer.hits + buffer.misses == buffer.requests == len(sequence)
    assert 0.0 <= buffer.hit_rate() <= 1.0
    assert buffer.resident_pages <= buffer.capacity_pages
