"""Unit tests for the simulated buffer manager and cost counters."""

import threading

import pytest

from repro.errors import BufferError_
from repro.storage import BufferManager, CostCounter, get_buffer_manager, set_buffer_manager
from repro.storage import stats


class TestBufferManager:
    def test_invalid_config_rejected(self):
        with pytest.raises(BufferError_):
            BufferManager(capacity_pages=0)
        with pytest.raises(BufferError_):
            BufferManager(page_tuples=0)

    def test_miss_then_hit(self):
        buf = BufferManager(capacity_pages=4, page_tuples=10)
        assert buf.request(1, 0) is False  # cold miss
        assert buf.request(1, 0) is True  # now resident
        assert buf.hits == 1 and buf.misses == 1

    def test_lru_eviction(self):
        buf = BufferManager(capacity_pages=2, page_tuples=10)
        buf.request(1, 0)
        buf.request(1, 1)
        buf.request(1, 2)  # evicts page 0
        assert buf.evictions == 1
        assert buf.request(1, 0) is False  # page 0 was evicted

    def test_lru_touch_refreshes(self):
        buf = BufferManager(capacity_pages=2, page_tuples=10)
        buf.request(1, 0)
        buf.request(1, 1)
        buf.request(1, 0)  # refresh page 0
        buf.request(1, 2)  # should evict page 1, not 0
        assert buf.request(1, 0) is True

    def test_page_math(self):
        buf = BufferManager(page_tuples=100)
        assert buf.page_of(0) == 0
        assert buf.page_of(99) == 0
        assert buf.page_of(100) == 1
        assert buf.pages_for(0) == 0
        assert buf.pages_for(1) == 1
        assert buf.pages_for(100) == 1
        assert buf.pages_for(101) == 2

    def test_scan_counts_misses(self):
        buf = BufferManager(page_tuples=10)
        misses = buf.scan(segment_id=1, n_tuples=25)
        assert misses == 3
        assert buf.scan(1, 25) == 0  # warm

    def test_scan_with_offset(self):
        buf = BufferManager(page_tuples=10)
        buf.scan(1, 10, start_tuple=0)  # page 0
        misses = buf.scan(1, 10, start_tuple=10)  # page 1
        assert misses == 1

    def test_scan_zero_tuples(self):
        buf = BufferManager()
        assert buf.scan(1, 0) == 0

    def test_random_read(self):
        buf = BufferManager(page_tuples=10)
        assert buf.random_read(1, 15) is False
        assert buf.random_read(1, 12) is True  # same page

    def test_write_charges_and_warms(self):
        buf = BufferManager(page_tuples=10)
        with CostCounter.activate() as cost:
            buf.write(1, 25)
        assert cost.page_writes == 3
        assert cost.tuples_written == 25
        assert buf.request(1, 0) is True

    def test_segments_are_independent(self):
        buf = BufferManager(page_tuples=10)
        buf.request(1, 0)
        assert buf.request(2, 0) is False

    def test_evict_segment(self):
        buf = BufferManager(page_tuples=10)
        buf.request(1, 0)
        buf.request(2, 0)
        buf.evict_segment(1)
        assert buf.request(2, 0) is True
        assert buf.request(1, 0) is False

    def test_flush(self):
        buf = BufferManager()
        buf.request(1, 0)
        buf.flush()
        assert buf.resident_pages == 0

    def test_hit_rate(self):
        buf = BufferManager()
        assert buf.hit_rate() == 0.0
        buf.request(1, 0)
        buf.request(1, 0)
        assert buf.hit_rate() == 0.5

    def test_global_swap(self):
        original = get_buffer_manager()
        replacement = BufferManager(capacity_pages=1)
        try:
            previous = set_buffer_manager(replacement)
            assert previous is original
            assert get_buffer_manager() is replacement
        finally:
            set_buffer_manager(original)


class TestCostCounter:
    def test_scoped_charging(self):
        with CostCounter.activate() as cost:
            stats.charge_tuples_read(5)
            stats.charge_comparisons(3)
        assert cost.tuples_read == 5
        assert cost.comparisons == 3

    def test_charges_outside_scope_ignored(self):
        with CostCounter.activate() as cost:
            pass
        stats.charge_tuples_read(99)
        assert cost.tuples_read == 0

    def test_nested_counters_both_charged(self):
        with CostCounter.activate() as outer:
            stats.charge_page_reads(1)
            with CostCounter.activate() as inner:
                stats.charge_page_reads(2)
        assert inner.page_reads == 2
        assert outer.page_reads == 3

    def test_zero_charge_is_noop(self):
        with CostCounter.activate() as cost:
            stats.charge_comparisons(0)
        assert cost.comparisons == 0

    def test_extra_counters(self):
        with CostCounter.activate() as cost:
            stats.charge_extra("restarts", 2)
            stats.charge_extra("restarts")
        assert cost.extra["restarts"] == 3

    def test_add_merges(self):
        a = CostCounter(page_reads=1, extra={"x": 1})
        b = CostCounter(page_reads=2, tuples_read=5, extra={"x": 2, "y": 7})
        a.add(b)
        assert a.page_reads == 3
        assert a.tuples_read == 5
        assert a.extra == {"x": 3, "y": 7}

    def test_reset(self):
        counter = CostCounter(page_reads=4, extra={"k": 1})
        counter.reset()
        assert counter.page_reads == 0
        assert counter.extra == {}

    def test_snapshot_flattens_extra(self):
        counter = CostCounter(comparisons=2, extra={"probes": 9})
        snap = counter.snapshot()
        assert snap["comparisons"] == 2
        assert snap["probes"] == 9

    def test_totals(self):
        counter = CostCounter(random_accesses=2, sorted_accesses=3, page_reads=1, page_writes=4)
        assert counter.total_accesses == 5
        assert counter.total_io == 5

    def test_thread_isolation(self):
        seen = {}

        def worker():
            with CostCounter.activate() as inner:
                stats.charge_tuples_read(7)
            seen["thread"] = inner.tuples_read

        with CostCounter.activate() as main_counter:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["thread"] == 7
        assert main_counter.tuples_read == 0

    def test_unbalanced_exit_is_tolerated(self):
        counter = CostCounter()
        counter.__enter__()
        other = CostCounter()
        other.__enter__()
        counter.__exit__(None, None, None)  # out of order
        other.__exit__(None, None, None)
        assert stats.active_counters() == ()
