"""Unit tests for the sparse/non-dense index, hash index and catalog."""

import numpy as np
import pytest

from repro.errors import CatalogError, IndexError_
from repro.storage import BAT, Catalog, CostCounter, HashIndex, SparseIndex
from repro.storage import kernel


def sorted_bat(n=10_000, persistent=True):
    return BAT(np.arange(n, dtype=np.int64), tail_sorted=True, persistent=persistent)


class TestSparseIndex:
    def test_requires_sorted(self):
        with pytest.raises(IndexError_):
            SparseIndex(BAT([3, 1, 2]))

    def test_requires_ascending(self):
        with pytest.raises(IndexError_):
            SparseIndex(BAT([3, 2, 1], tail_sorted_desc=True))

    def test_invalid_stride(self):
        with pytest.raises(IndexError_):
            SparseIndex(sorted_bat(), stride=-5)

    def test_is_small(self):
        index = SparseIndex(sorted_bat(10_000), stride=100)
        assert index.entries == 100
        assert index.size_ratio() == pytest.approx(0.01)

    def test_lookup_eq(self):
        base = sorted_bat(1000)
        index = SparseIndex(base, stride=64)
        out = index.lookup_eq(123)
        assert out.to_list() == [(123, 123)]

    def test_lookup_range_matches_kernel_select(self):
        base = BAT(np.sort(np.random.default_rng(1).integers(0, 500, 2000)), tail_sorted=True)
        index = SparseIndex(base, stride=32)
        expected = kernel.select_range(base, 100, 200)
        got = index.lookup_range(100, 200)
        assert got.same_content(expected)

    def test_lookup_exclusive_bounds(self):
        base = BAT(np.array([1, 2, 3, 4, 5]), tail_sorted=True)
        index = SparseIndex(base, stride=2)
        out = index.lookup_range(1, 5, include_lo=False, include_hi=False)
        assert [t for _, t in out.to_list()] == [2, 3, 4]

    def test_lookup_open_bounds(self):
        base = sorted_bat(100)
        index = SparseIndex(base, stride=16)
        assert len(index.lookup_range(None, None)) == 100

    def test_lookup_no_match(self):
        base = sorted_bat(100)
        index = SparseIndex(base, stride=16)
        assert len(index.lookup_range(1000, 2000)) == 0

    def test_empty_base(self):
        base = BAT(np.empty(0, dtype=np.int64), tail_sorted=True)
        index = SparseIndex(base, stride=4)
        assert index.entries == 0
        assert len(index.lookup_range(0, 10)) == 0

    def test_probe_reads_fraction_of_pages(self):
        base = sorted_bat(100_000)
        index = SparseIndex(base)  # stride = page size
        with CostCounter.activate() as probe_cost:
            index.lookup_range(500, 600)
        with CostCounter.activate() as scan_cost:
            kernel.select_range(base.clone_with(tail_sorted=False, persistent=True), 500, 600)
        assert probe_cost.tuples_read < scan_cost.tuples_read / 50

    def test_duplicate_values_straddling_strides(self):
        # many duplicates of one key crossing stride boundaries
        tail = np.sort(np.concatenate([np.zeros(10, dtype=np.int64),
                                       np.full(25, 7, dtype=np.int64),
                                       np.arange(8, 40, dtype=np.int64)]))
        base = BAT(tail, tail_sorted=True)
        index = SparseIndex(base, stride=8)
        out = index.lookup_eq(7)
        assert len(out) == 25
        assert all(t == 7 for _, t in out.to_list())


class TestHashIndex:
    def test_lookup_eq(self):
        base = BAT([5, 3, 5, 1])
        index = HashIndex(base)
        out = index.lookup_eq(5)
        assert [h for h, _ in out.to_list()] == [0, 2]

    def test_lookup_missing(self):
        index = HashIndex(BAT([1, 2]))
        assert len(index.lookup_eq(9)) == 0

    def test_entries(self):
        assert HashIndex(BAT([1, 2, 3])).entries == 3

    def test_string_keys(self):
        index = HashIndex(BAT(["b", "a", "b"]))
        assert [h for h, _ in index.lookup_eq("b").to_list()] == [0, 2]


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        bat = catalog.register("scores", BAT([1.0]))
        assert catalog.get("scores") is bat
        assert bat.name == "scores"
        assert "scores" in catalog

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.register("a", BAT([1]))
        with pytest.raises(CatalogError):
            catalog.register("a", BAT([2]))

    def test_replace(self):
        catalog = Catalog()
        catalog.register("a", BAT([1]))
        replacement = catalog.register("a", BAT([2]), replace=True)
        assert catalog.get("a") is replacement

    def test_missing_name(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.register("a", BAT([1]))
        catalog.drop("a")
        assert "a" not in catalog

    def test_names_sorted(self):
        catalog = Catalog()
        catalog.register("b", BAT([1]))
        catalog.register("a", BAT([1]))
        assert catalog.names() == ["a", "b"]

    def test_total_tuples(self):
        catalog = Catalog()
        catalog.register("a", BAT([1, 2]))
        catalog.register("b", BAT([3]))
        assert catalog.total_tuples() == 3

    def test_save_load_roundtrip(self, tmp_path):
        catalog = Catalog()
        catalog.register("dense", BAT([1.5, 2.5], hseqbase=10, tail_sorted=True))
        catalog.register("oids", BAT([7, 8], head=[100, 200], tail_key=True))
        catalog.register("words", BAT(["alpha", "beta"]))
        catalog.save(tmp_path / "db")

        loaded = Catalog.load(tmp_path / "db")
        assert loaded.names() == ["dense", "oids", "words"]
        dense = loaded.get("dense")
        assert dense.is_dense_head and dense.hseqbase == 10
        assert dense.tail_sorted and dense.persistent
        assert list(dense.tail) == [1.5, 2.5]
        oids = loaded.get("oids")
        assert list(oids.head_array()) == [100, 200]
        assert oids.tail_key
        assert list(loaded.get("words").tail) == ["alpha", "beta"]

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(CatalogError):
            Catalog.load(tmp_path)

    def test_load_missing_file(self, tmp_path):
        catalog = Catalog()
        catalog.register("a", BAT([1]))
        catalog.save(tmp_path / "db")
        (tmp_path / "db" / "a.npz").unlink()
        with pytest.raises(CatalogError):
            Catalog.load(tmp_path / "db")

    def test_save_charges_page_writes(self, tmp_path):
        catalog = Catalog()
        catalog.register("a", BAT(np.arange(1000)))
        with CostCounter.activate() as cost:
            catalog.save(tmp_path / "db")
        assert cost.page_writes > 0
