"""Unit tests for the BAT algebra kernel operators."""

import numpy as np
import pytest

from repro.errors import BATShapeError, BATTypeError
from repro.storage import BAT, CostCounter, kernel


def bat_of(tails, heads=None, **kw):
    return BAT(tails, head=heads, **kw)


class TestStructural:
    def test_reverse_swaps_columns(self):
        bat = BAT([10, 20, 30])
        rev = kernel.reverse(bat)
        assert rev.to_list() == [(10, 0), (20, 1), (30, 2)]

    def test_reverse_requires_int_tail(self):
        with pytest.raises(BATTypeError):
            kernel.reverse(BAT([1.5]))

    def test_reverse_roundtrip(self):
        bat = BAT([5, 3, 4])
        assert kernel.reverse(kernel.reverse(bat)).same_content(bat)

    def test_mirror(self):
        bat = BAT([1.0, 2.0], hseqbase=7)
        mir = kernel.mirror(bat)
        assert mir.to_list() == [(7, 7), (8, 8)]

    def test_mark_numbers_tuples(self):
        bat = BAT([5.0, 1.0, 3.0])
        marked = kernel.mark(bat, base=100)
        assert marked.to_list() == [(0, 100), (1, 101), (2, 102)]
        assert marked.tail_sorted and marked.tail_key


class TestSelect:
    def test_select_range_unsorted(self):
        bat = BAT([1, 2, 3, 4, 4, 5])
        out = kernel.select_range(bat, 2, 4)
        assert [t for _, t in out.to_list()] == [2, 3, 4, 4]
        assert [h for h, _ in out.to_list()] == [1, 2, 3, 4]

    def test_select_range_sorted_uses_binary_search(self):
        bat = BAT(np.arange(10_000), tail_sorted=True, persistent=True)
        with CostCounter.activate() as cost:
            out = kernel.select_range(bat, 100, 150)
        assert len(out) == 51
        # binary search + a one-page range scan: far fewer reads than a scan
        assert cost.tuples_read < 1000

    def test_select_range_unsorted_scans_everything(self):
        bat = BAT(np.arange(10_000))
        with CostCounter.activate() as cost:
            kernel.select_range(bat, 100, 150)
        assert cost.tuples_read == 10_000

    def test_select_open_bounds(self):
        bat = BAT([1, 2, 3], tail_sorted=True)
        assert len(kernel.select_range(bat, None, None)) == 3
        assert [t for _, t in kernel.select_range(bat, 2, None).to_list()] == [2, 3]
        assert [t for _, t in kernel.select_range(bat, None, 2).to_list()] == [1, 2]

    def test_select_exclusive_bounds(self):
        bat = BAT([1, 2, 3, 4], tail_sorted=True)
        out = kernel.select_range(bat, 1, 4, include_lo=False, include_hi=False)
        assert [t for _, t in out.to_list()] == [2, 3]

    def test_select_exclusive_bounds_unsorted(self):
        bat = BAT([4, 1, 3, 2])
        out = kernel.select_range(bat, 1, 4, include_lo=False, include_hi=False)
        assert sorted(t for _, t in out.to_list()) == [2, 3]

    def test_select_empty_input(self):
        bat = BAT(np.empty(0, dtype=np.int64), tail_sorted=True)
        assert len(kernel.select_range(bat, 1, 2)) == 0

    def test_select_no_matches(self):
        bat = BAT([1, 2, 3], tail_sorted=True)
        assert len(kernel.select_range(bat, 10, 20)) == 0

    def test_select_eq(self):
        bat = BAT([1, 2, 2, 3])
        out = kernel.select_eq(bat, 2)
        assert [h for h, _ in out.to_list()] == [1, 2]

    def test_select_eq_strings(self):
        bat = BAT(["a", "b", "a"])
        out = kernel.select_eq(bat, "a")
        assert [h for h, _ in out.to_list()] == [0, 2]

    def test_select_mask(self):
        bat = BAT([10, 20, 30])
        out = kernel.select_mask(bat, np.array([True, False, True]))
        assert out.to_list() == [(0, 10), (2, 30)]

    def test_select_mask_length_mismatch(self):
        with pytest.raises(BATShapeError):
            kernel.select_mask(BAT([1, 2]), np.array([True]))

    def test_select_preserves_sortedness_flag(self):
        bat = BAT([1, 2, 3, 4], tail_sorted=True)
        out = kernel.select_range(bat, 2, 3)
        assert out.tail_sorted


class TestJoins:
    def test_fetchjoin_positional(self):
        left = BAT([2, 0, 1])  # oids into right
        right = BAT([100.0, 200.0, 300.0])
        out = kernel.fetchjoin(left, right)
        assert out.to_list() == [(0, 300.0), (1, 100.0), (2, 200.0)]

    def test_fetchjoin_with_hseqbase(self):
        left = BAT([11, 10])
        right = BAT([5.0, 6.0], hseqbase=10)
        out = kernel.fetchjoin(left, right)
        assert [t for _, t in out.to_list()] == [6.0, 5.0]

    def test_fetchjoin_requires_dense_right(self):
        with pytest.raises(BATShapeError):
            kernel.fetchjoin(BAT([0]), BAT([1.0], head=[0]))

    def test_fetchjoin_out_of_range(self):
        with pytest.raises(BATShapeError):
            kernel.fetchjoin(BAT([5]), BAT([1.0, 2.0]))

    def test_fetch_values(self):
        bat = BAT([10.0, 20.0, 30.0], hseqbase=100)
        values = kernel.fetch_values(bat, np.array([102, 100]))
        assert list(values) == [30.0, 10.0]

    def test_hashjoin_unique_keys(self):
        left = BAT([7, 9], head=[0, 1])
        right = BAT(["seven", "nine"], head=[7, 9])
        out = kernel.hashjoin(left, right)
        assert out.to_list() == [(0, "seven"), (1, "nine")]

    def test_hashjoin_duplicates_both_sides(self):
        left = BAT([1, 1], head=[10, 11])
        right = BAT([100.0, 200.0], head=[1, 1])
        out = kernel.hashjoin(left, right)
        assert sorted(out.to_list()) == [
            (10, 100.0),
            (10, 200.0),
            (11, 100.0),
            (11, 200.0),
        ]

    def test_hashjoin_no_matches(self):
        out = kernel.hashjoin(BAT([1], head=[0]), BAT([2.0], head=[99]))
        assert len(out) == 0

    def test_hashjoin_dense_right_filters_misses(self):
        left = BAT([0, 5], head=[1, 2])  # 5 outside right
        right = BAT([9.0, 8.0])
        out = kernel.hashjoin(left, right)
        assert out.to_list() == [(1, 9.0)]

    def test_semijoin(self):
        left = BAT([1.0, 2.0, 3.0], head=[10, 20, 30])
        right = BAT([0, 0], head=[10, 30])
        out = kernel.semijoin(left, right)
        assert [h for h, _ in out.to_list()] == [10, 30]

    def test_antijoin(self):
        left = BAT([1.0, 2.0, 3.0], head=[10, 20, 30])
        right = BAT([0], head=[20])
        out = kernel.antijoin(left, right)
        assert [h for h, _ in out.to_list()] == [10, 30]


class TestOrdering:
    def test_sort_tail_ascending(self):
        bat = BAT([3.0, 1.0, 2.0])
        out = kernel.sort_tail(bat)
        assert [t for _, t in out.to_list()] == [1.0, 2.0, 3.0]
        assert out.tail_sorted

    def test_sort_tail_descending(self):
        out = kernel.sort_tail(BAT([3.0, 1.0, 2.0]), descending=True)
        assert [t for _, t in out.to_list()] == [3.0, 2.0, 1.0]
        assert out.tail_sorted_desc

    def test_sort_keeps_pairing(self):
        bat = BAT([3.0, 1.0], head=[30, 10])
        out = kernel.sort_tail(bat)
        assert out.to_list() == [(10, 1.0), (30, 3.0)]

    def test_sort_head(self):
        bat = BAT([1.0, 2.0], head=[5, 3])
        out = kernel.sort_head(bat)
        assert out.to_list() == [(3, 2.0), (5, 1.0)]

    def test_sort_head_dense_is_noop(self):
        bat = BAT([1.0, 2.0])
        assert kernel.sort_head(bat) is bat

    def test_topn_tail_basic(self):
        bat = BAT([0.5, 0.9, 0.1, 0.7])
        out = kernel.topn_tail(bat, 2)
        assert out.to_list() == [(1, 0.9), (3, 0.7)]

    def test_topn_ascending(self):
        bat = BAT([0.5, 0.9, 0.1, 0.7])
        out = kernel.topn_tail(bat, 2, descending=False)
        assert out.to_list() == [(2, 0.1), (0, 0.5)]

    def test_topn_n_larger_than_input(self):
        bat = BAT([2.0, 1.0])
        out = kernel.topn_tail(bat, 10)
        assert [t for _, t in out.to_list()] == [2.0, 1.0]

    def test_topn_zero(self):
        assert len(kernel.topn_tail(BAT([1.0]), 0)) == 0

    def test_topn_tie_break_by_head(self):
        bat = BAT([1.0, 1.0, 1.0], head=[30, 10, 20])
        out = kernel.topn_tail(bat, 2)
        assert [h for h, _ in out.to_list()] == [10, 20]

    def test_topn_matches_sort_slice(self):
        rng = np.random.default_rng(3)
        scores = rng.random(500)
        bat = BAT(scores)
        via_topn = kernel.topn_tail(bat, 10)
        via_sort = kernel.slice_pairs(kernel.sort_tail(bat, descending=True), 0, 10)
        assert set(h for h, _ in via_topn.to_list()) == set(h for h, _ in via_sort.to_list())

    def test_topn_cheaper_than_sort(self):
        bat = BAT(np.random.default_rng(0).random(20_000))
        with CostCounter.activate() as topn_cost:
            kernel.topn_tail(bat, 10)
        with CostCounter.activate() as sort_cost:
            kernel.slice_pairs(kernel.sort_tail(bat, descending=True), 0, 10)
        assert topn_cost.comparisons < sort_cost.comparisons

    def test_slice_pairs(self):
        bat = BAT([10, 20, 30, 40])
        out = kernel.slice_pairs(bat, 1, 2)
        assert out.to_list() == [(1, 20), (2, 30)]

    def test_slice_beyond_end(self):
        assert len(kernel.slice_pairs(BAT([1, 2]), 5, 3)) == 0


class TestAggregates:
    def test_sum_tail(self):
        assert kernel.sum_tail(BAT([1.0, 2.5])) == 3.5

    def test_sum_empty(self):
        assert kernel.sum_tail(BAT(np.empty(0))) == 0.0

    def test_max_min(self):
        bat = BAT([3, 1, 2])
        assert kernel.max_tail(bat) == 3
        assert kernel.min_tail(bat) == 1

    def test_max_empty_is_none(self):
        assert kernel.max_tail(BAT(np.empty(0))) is None

    def test_aggregate_rejects_strings(self):
        with pytest.raises(BATTypeError):
            kernel.sum_tail(BAT(["a"]))

    def test_group_sum(self):
        bat = BAT([1.0, 2.0, 3.0], head=[5, 5, 7])
        out = kernel.group_sum(bat)
        assert out.to_list() == [(5, 3.0), (7, 3.0)]
        assert out.head_key

    def test_group_sum_empty(self):
        assert len(kernel.group_sum(BAT.from_pairs([]))) == 0

    def test_group_count(self):
        bat = BAT([1.0, 2.0, 3.0], head=[5, 5, 7])
        assert kernel.group_count(bat).to_list() == [(5, 2), (7, 1)]

    def test_group_max(self):
        bat = BAT([1.0, 9.0, 3.0], head=[5, 5, 7])
        assert kernel.group_max(bat).to_list() == [(5, 9.0), (7, 3.0)]

    def test_unique_tail(self):
        out = kernel.unique_tail(BAT([3, 1, 3, 2]))
        assert [t for _, t in out.to_list()] == [1, 2, 3]
        assert out.tail_key and out.tail_sorted

    def test_count_tail(self):
        assert kernel.count_tail(BAT([1, 2])) == 2


class TestArithmetic:
    def test_append(self):
        out = kernel.append(BAT([1, 2]), BAT([3], hseqbase=2))
        assert [t for _, t in out.to_list()] == [1, 2, 3]

    def test_append_dtype_mismatch(self):
        with pytest.raises(BATTypeError):
            kernel.append(BAT([1]), BAT(["a"]))

    def test_scale_tail(self):
        out = kernel.scale_tail(BAT([1.0, 2.0], tail_sorted=True), 2.0)
        assert [t for _, t in out.to_list()] == [2.0, 4.0]
        assert out.tail_sorted

    def test_scale_negative_flips_order(self):
        out = kernel.scale_tail(BAT([1.0, 2.0], tail_sorted=True), -1.0)
        assert out.tail_sorted_desc and not out.tail_sorted

    def test_shift_tail(self):
        out = kernel.shift_tail(BAT([1.0], tail_sorted=True), 5.0)
        assert out.to_list() == [(0, 6.0)]
        assert out.tail_sorted

    def test_combine_aligned_add(self):
        a = BAT([1.0, 2.0])
        b = BAT([10.0, 20.0])
        assert [t for _, t in kernel.combine_aligned(a, b).to_list()] == [11.0, 22.0]

    def test_combine_aligned_max(self):
        a = BAT([1.0, 30.0])
        b = BAT([10.0, 20.0])
        assert [t for _, t in kernel.combine_aligned(a, b, "max").to_list()] == [10.0, 30.0]

    def test_combine_misaligned_heads(self):
        with pytest.raises(BATShapeError):
            kernel.combine_aligned(BAT([1.0], head=[0]), BAT([1.0], head=[1]))

    def test_combine_length_mismatch(self):
        with pytest.raises(BATShapeError):
            kernel.combine_aligned(BAT([1.0]), BAT([1.0, 2.0]))

    def test_combine_unknown_op(self):
        with pytest.raises(BATTypeError):
            kernel.combine_aligned(BAT([1.0]), BAT([2.0]), "xor")

    def test_assert_valid_passes(self):
        bat = BAT([1, 2], tail_sorted=True)
        assert kernel.assert_valid(bat) is bat

    def test_assert_valid_raises(self):
        with pytest.raises(BATShapeError):
            kernel.assert_valid(BAT([2, 1], tail_sorted=True))
