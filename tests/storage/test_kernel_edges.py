"""Edge-case tests for kernel operators and page accounting."""

import numpy as np
import pytest

from repro.errors import BATTypeError
from repro.storage import BAT, BufferManager, CostCounter, kernel, set_buffer_manager
from repro.storage.buffer import get_buffer_manager


@pytest.fixture
def small_pages():
    """Install a tiny-page buffer manager for precise page assertions."""
    original = get_buffer_manager()
    manager = BufferManager(capacity_pages=1024, page_tuples=10)
    set_buffer_manager(manager)
    yield manager
    set_buffer_manager(original)


class TestPageAccounting:
    def test_scan_charges_exact_pages(self, small_pages):
        bat = BAT(np.arange(95), persistent=True)
        with CostCounter.activate() as cost:
            kernel.scan_cost(bat)
        assert cost.page_reads == 10  # ceil(95 / 10)

    def test_warm_rescan_hits(self, small_pages):
        bat = BAT(np.arange(50), persistent=True)
        kernel.scan_cost(bat)
        with CostCounter.activate() as cost:
            kernel.scan_cost(bat)
        assert cost.page_reads == 0
        assert cost.buffer_hits == 5

    def test_transient_bats_charge_no_pages(self, small_pages):
        bat = BAT(np.arange(100))  # not persistent
        with CostCounter.activate() as cost:
            kernel.scan_cost(bat)
        assert cost.page_reads == 0
        assert cost.tuples_read == 100

    def test_sorted_select_reads_only_matching_pages(self, small_pages):
        bat = BAT(np.arange(1000), tail_sorted=True, persistent=True)
        with CostCounter.activate() as cost:
            kernel.select_range(bat, 500, 509)  # exactly one page of data
        # binary-search probes + the one matching page
        assert cost.page_reads <= 12

    def test_fetchjoin_random_probe_pages(self, small_pages):
        left = BAT(np.array([5, 905], dtype=np.int64))  # two far-apart rows
        right = BAT(np.arange(1000, dtype=np.float64), persistent=True)
        with CostCounter.activate() as cost:
            kernel.fetchjoin(left, right)
        assert cost.page_reads == 2  # one page per touched position

    def test_fetchjoin_same_page_deduped(self, small_pages):
        left = BAT(np.array([5, 6, 7], dtype=np.int64))
        right = BAT(np.arange(100, dtype=np.float64), persistent=True)
        with CostCounter.activate() as cost:
            kernel.fetchjoin(left, right)
        assert cost.page_reads == 1


class TestOperatorEdges:
    def test_mark_empty(self):
        assert len(kernel.mark(BAT(np.empty(0, dtype=np.int64)))) == 0

    def test_append_empty_sides(self):
        a = BAT([1, 2])
        empty = BAT(np.empty(0, dtype=np.int64))
        assert [t for _, t in kernel.append(a, empty).to_list()] == [1, 2]
        assert [t for _, t in kernel.append(empty, a).to_list()] == [1, 2]

    def test_group_ops_reject_strings(self):
        bat = BAT(["a", "b"], head=[0, 0])
        with pytest.raises(BATTypeError):
            kernel.group_sum(bat)
        with pytest.raises(BATTypeError):
            kernel.group_max(bat)

    def test_group_count_accepts_strings(self):
        bat = BAT(["a", "b"], head=[0, 0])
        assert kernel.group_count(bat).to_list() == [(0, 2)]

    def test_topn_all_equal_scores(self):
        bat = BAT([1.0] * 20)
        out = kernel.topn_tail(bat, 5)
        assert [h for h, _ in out.to_list()] == [0, 1, 2, 3, 4]

    def test_sort_stability(self):
        bat = BAT([1.0, 1.0, 0.5], head=[10, 11, 12])
        out = kernel.sort_tail(bat)
        assert [h for h, _ in out.to_list()] == [12, 10, 11]

    def test_select_range_on_desc_sorted_uses_scan(self):
        """A descending-sorted BAT cannot use the ascending binary
        search; it must scan (and still be correct)."""
        bat = BAT(np.arange(100)[::-1].copy(), tail_sorted_desc=True)
        out = kernel.select_range(bat, 10, 12)
        assert sorted(t for _, t in out.to_list()) == [10, 11, 12]

    def test_scale_by_zero_drops_key(self):
        bat = BAT([1.0, 2.0], tail_key=True)
        out = kernel.scale_tail(bat, 0.0)
        assert not out.tail_key
        assert [t for _, t in out.to_list()] == [0.0, 0.0]

    def test_semijoin_empty_right(self):
        left = BAT([1.0, 2.0], head=[3, 4])
        assert len(kernel.semijoin(left, BAT.from_pairs([]))) == 0
        assert len(kernel.antijoin(left, BAT.from_pairs([]))) == 2

    def test_unique_on_strings(self):
        out = kernel.unique_tail(BAT(["b", "a", "b"]))
        assert [t for _, t in out.to_list()] == ["a", "b"]

    def test_reverse_preserves_keys(self):
        bat = BAT([5, 3, 4], tail_key=True)
        rev = kernel.reverse(bat)
        assert rev.head_key  # unique tails became unique heads


class TestCounterScoping:
    def test_kernel_ops_charge_all_active_counters(self):
        bat = BAT(np.arange(100))
        with CostCounter.activate() as outer:
            kernel.sort_tail(bat)
            with CostCounter.activate() as inner:
                kernel.sort_tail(bat)
        assert inner.comparisons > 0
        assert outer.comparisons == pytest.approx(2 * inner.comparisons)

    def test_uncounted_when_no_scope(self):
        # must not raise outside any counter scope
        kernel.sort_tail(BAT([3, 1, 2]))
