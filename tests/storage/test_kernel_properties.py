"""Property-based tests (hypothesis) for kernel invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BAT, kernel

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
float_lists = st.lists(floats, min_size=0, max_size=200)
int_lists = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=200)


@given(int_lists, st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_select_range_matches_python_filter(values, a, b):
    lo, hi = min(a, b), max(a, b)
    bat = BAT(np.asarray(values, dtype=np.int64))
    out = kernel.select_range(bat, lo, hi)
    expected = [(i, v) for i, v in enumerate(values) if lo <= v <= hi]
    assert out.to_list() == expected


@given(int_lists, st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_select_sorted_equals_select_unsorted(values, a, b):
    """Sorted fast path and scan path must agree on sorted input."""
    lo, hi = min(a, b), max(a, b)
    tail = np.sort(np.asarray(values, dtype=np.int64))
    sorted_bat = BAT(tail, tail_sorted=True)
    scan_bat = BAT(tail)  # same data, no sortedness declared
    fast = kernel.select_range(sorted_bat, lo, hi)
    slow = kernel.select_range(scan_bat, lo, hi)
    assert fast.same_content(slow)


@given(float_lists)
def test_sort_tail_is_sorted_permutation(values):
    bat = BAT(np.asarray(values, dtype=np.float64))
    out = kernel.sort_tail(bat)
    tails = [t for _, t in out.to_list()]
    assert tails == sorted(values)
    # heads form a permutation of the input positions
    assert sorted(h for h, _ in out.to_list()) == list(range(len(values)))
    assert out.verify_properties()


@given(float_lists, st.integers(min_value=0, max_value=50))
def test_topn_agrees_with_sorted_prefix(values, n):
    bat = BAT(np.asarray(values, dtype=np.float64))
    top = kernel.topn_tail(bat, n)
    expected_scores = sorted(values, reverse=True)[:n]
    assert [t for _, t in top.to_list()] == expected_scores
    assert top.verify_properties()


@given(float_lists, st.integers(min_value=1, max_value=50))
def test_topn_is_prefix_of_full_ranking(values, n):
    """Top-N must equal the first N of the full descending sort with the
    same deterministic (head oid) tie-break."""
    bat = BAT(np.asarray(values, dtype=np.float64))
    top = kernel.topn_tail(bat, n)
    full = kernel.topn_tail(bat, len(values))
    assert top.to_list() == full.to_list()[:n]


@given(
    st.lists(st.tuples(st.integers(0, 30), floats), min_size=0, max_size=100),
)
def test_group_sum_matches_python(pairs):
    bat = BAT.from_pairs(pairs) if pairs else BAT.from_pairs([])
    out = kernel.group_sum(bat)
    expected = {}
    for head, value in pairs:
        expected[head] = expected.get(head, 0.0) + value
    got = {h: t for h, t in out.to_list()}
    assert set(got) == set(expected)
    for key, value in expected.items():
        assert abs(got[key] - value) < 1e-6 * max(1.0, abs(value))


@given(int_lists)
def test_unique_tail_is_sorted_set(values):
    out = kernel.unique_tail(BAT(np.asarray(values, dtype=np.int64)))
    assert [t for _, t in out.to_list()] == sorted(set(values))


@given(
    st.lists(st.integers(0, 20), min_size=0, max_size=50),
    st.lists(st.integers(0, 20), min_size=0, max_size=50),
)
def test_hashjoin_matches_nested_loop(left_keys, right_keys):
    left = BAT(np.asarray(left_keys, dtype=np.int64))
    right = BAT(
        np.asarray(right_keys, dtype=np.int64) * 10,
        head=np.asarray(right_keys, dtype=np.int64),
    )
    out = kernel.hashjoin(left, right)
    expected = sorted(
        (i, rk * 10)
        for i, lk in enumerate(left_keys)
        for rk in right_keys
        if lk == rk
    )
    assert sorted(out.to_list()) == expected


@given(float_lists)
@settings(max_examples=30)
def test_reverse_involution(values):
    int_values = np.arange(len(values), dtype=np.int64)
    bat = BAT(int_values, head=np.asarray(range(len(values)), dtype=np.int64))
    assert kernel.reverse(kernel.reverse(bat)).same_content(bat)


@given(float_lists, st.integers(0, 20), st.integers(0, 20))
def test_slice_matches_python_slice(values, offset, count):
    bat = BAT(np.asarray(values, dtype=np.float64))
    out = kernel.slice_pairs(bat, offset, count)
    expected = list(enumerate(values))[offset : offset + count]
    assert out.to_list() == [(h, v) for h, v in expected]
