"""Tests for the modeled-time cost conversion."""

import pytest

from repro.storage import BAT, CostCounter, kernel
from repro.storage.buffer import get_buffer_manager


class TestModeledSeconds:
    def test_zero_counters(self):
        assert CostCounter().modeled_seconds() == 0.0

    def test_pages_dominate(self):
        io_bound = CostCounter(page_reads=100)
        cpu_bound = CostCounter(comparisons=100)
        assert io_bound.modeled_seconds() > cpu_bound.modeled_seconds() * 100

    def test_components_additive(self):
        combined = CostCounter(page_reads=2, page_writes=3,
                               tuples_read=10, comparisons=20)
        parts = (
            CostCounter(page_reads=2).modeled_seconds()
            + CostCounter(page_writes=3).modeled_seconds()
            + CostCounter(tuples_read=10).modeled_seconds()
            + CostCounter(comparisons=20).modeled_seconds()
        )
        assert combined.modeled_seconds() == pytest.approx(parts)

    def test_custom_constants(self):
        counter = CostCounter(page_reads=10)
        assert counter.modeled_seconds(page_read_ms=1.0) == pytest.approx(0.01)
        assert counter.modeled_seconds(page_read_ms=10.0) == pytest.approx(0.1)

    def test_monotone_in_counters(self):
        small = CostCounter(page_reads=1, tuples_read=10)
        large = CostCounter(page_reads=2, tuples_read=20)
        assert large.modeled_seconds() > small.modeled_seconds()

    def test_end_to_end_scan_has_modeled_time(self):
        get_buffer_manager().flush()
        bat = BAT(list(range(10_000)), persistent=True)
        with CostCounter.activate() as cost:
            kernel.select_range(bat, 10, 20)
        assert cost.modeled_seconds() > 0
        # a warm rescan is cheaper in modeled time (buffer hits)
        with CostCounter.activate() as warm:
            kernel.select_range(bat, 10, 20)
        assert warm.modeled_seconds() < cost.modeled_seconds()
