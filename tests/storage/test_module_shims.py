"""The stats / statistics module split: both re-exported from the
package, with deprecation shims forwarding misdirected lookups.

``repro.storage.stats`` holds runtime cost counters and
``repro.storage.statistics`` offline column statistics; historically
callers confused the two, so each module forwards (and warns on) names
that live in the other.
"""

import pytest

import repro.storage as storage
from repro.storage import statistics, stats


class TestPackageSurface:
    def test_both_modules_re_exported(self):
        assert storage.stats is stats
        assert storage.statistics is statistics
        assert "stats" in storage.__all__
        assert "statistics" in storage.__all__

    def test_flagship_classes_at_package_level(self):
        assert storage.CostCounter is stats.CostCounter
        assert storage.ZoneMap is statistics.ZoneMap


class TestDeprecationShims:
    @pytest.mark.parametrize("name", [
        "ZoneMap", "EquiDepthHistogram", "ColumnStatistics",
        "StatisticsRegistry", "analyze_column",
    ])
    def test_stats_forwards_statistics_names(self, name):
        with pytest.warns(DeprecationWarning, match="repro.storage.statistics"):
            forwarded = getattr(stats, name)
        assert forwarded is getattr(statistics, name)

    @pytest.mark.parametrize("name", [
        "CostCounter", "active_counters", "charge_tuples_read",
        "charge_page_reads",
    ])
    def test_statistics_forwards_cost_names(self, name):
        with pytest.warns(DeprecationWarning, match="repro.storage.stats"):
            forwarded = getattr(statistics, name)
        assert forwarded is getattr(stats, name)

    def test_unknown_names_still_raise(self):
        with pytest.raises(AttributeError):
            stats.definitely_not_a_name
        with pytest.raises(AttributeError):
            statistics.definitely_not_a_name

    def test_native_names_do_not_warn(self, recwarn):
        assert stats.CostCounter is storage.CostCounter
        assert statistics.ZoneMap is storage.ZoneMap
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []
