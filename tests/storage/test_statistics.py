"""Tests for optimizer statistics (zone maps, equi-depth histograms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import make_bag, make_list, parse
from repro.errors import StorageError
from repro.optimizer import CostModel
from repro.storage import BAT
from repro.storage.statistics import (
    ColumnStatistics,
    EquiDepthHistogram,
    StatisticsRegistry,
    ZoneMap,
    analyze_column,
)


class TestZoneMap:
    def test_uniform_selectivity(self):
        zone = ZoneMap(0.0, 100.0, 1000)
        assert zone.range_selectivity(0, 50) == pytest.approx(0.5)
        assert zone.range_selectivity(25, 75) == pytest.approx(0.5)

    def test_open_bounds(self):
        zone = ZoneMap(0.0, 100.0, 10)
        assert zone.range_selectivity(None, None) == pytest.approx(1.0)
        assert zone.range_selectivity(50, None) == pytest.approx(0.5)

    def test_out_of_range(self):
        zone = ZoneMap(0.0, 100.0, 10)
        assert zone.range_selectivity(200, 300) == 0.0

    def test_constant_column(self):
        zone = ZoneMap(5.0, 5.0, 10)
        assert zone.range_selectivity(0, 10) == 1.0
        assert zone.range_selectivity(6, 10) == 0.0

    def test_empty(self):
        assert ZoneMap(0.0, 0.0, 0).range_selectivity(0, 1) == 0.0


class TestEquiDepthHistogram:
    def test_validation(self):
        with pytest.raises(StorageError):
            EquiDepthHistogram(np.array([]))
        with pytest.raises(StorageError):
            EquiDepthHistogram(np.array([1.0]), n_buckets=0)

    def test_uniform_data(self):
        values = np.linspace(0, 1, 10_000)
        histogram = EquiDepthHistogram(values, n_buckets=32)
        assert histogram.range_selectivity(0.0, 0.5) == pytest.approx(0.5, abs=0.02)
        assert histogram.estimate_rows(0.25, 0.75) == pytest.approx(5000, rel=0.05)

    def test_skewed_data_beats_zone_map(self):
        """On exponential data the histogram estimate is far closer to
        truth than the uniform zone-map estimate."""
        rng = np.random.default_rng(5)
        values = rng.exponential(1.0, 50_000)
        histogram = EquiDepthHistogram(values, n_buckets=64)
        zone = ZoneMap(float(values.min()), float(values.max()), len(values))
        truth = ((values >= 0) & (values <= 1.0)).mean()
        hist_err = abs(histogram.range_selectivity(0, 1.0) - truth)
        zone_err = abs(zone.range_selectivity(0, 1.0) - truth)
        assert hist_err < zone_err / 3

    def test_extreme_bounds(self):
        histogram = EquiDepthHistogram(np.arange(100.0), n_buckets=8)
        assert histogram.range_selectivity(None, None) == pytest.approx(1.0)
        assert histogram.range_selectivity(1000, 2000) == 0.0
        assert histogram.range_selectivity(-10, -5) == 0.0

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=10, max_size=500),
           st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_calibration_property(self, values, a, b):
        """Histogram estimates are within one bucket's worth of truth."""
        lo, hi = min(a, b), max(a, b)
        arr = np.asarray(values)
        histogram = EquiDepthHistogram(arr, n_buckets=16)
        truth = ((arr >= lo) & (arr <= hi)).mean()
        estimate = histogram.range_selectivity(lo, hi)
        tolerance = 2.5 / histogram.n_buckets + 0.02
        assert abs(estimate - truth) <= tolerance


class TestAnalyze:
    def test_analyze_column(self):
        bat = BAT(np.arange(1000, dtype=np.float64))
        statistics = analyze_column(bat, n_buckets=16)
        assert statistics.zone_map.count == 1000
        assert statistics.histogram is not None
        assert statistics.range_selectivity(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_analyze_without_histogram(self):
        statistics = analyze_column(BAT([1.0, 2.0]), with_histogram=False)
        assert statistics.histogram is None
        assert statistics.range_selectivity(1.0, 1.5) == pytest.approx(0.5)

    def test_analyze_strings_rejected(self):
        with pytest.raises(StorageError):
            analyze_column(BAT(["a"]))

    def test_analyze_empty(self):
        statistics = analyze_column(BAT(np.empty(0)))
        assert statistics.zone_map.count == 0

    def test_registry_analyze_env(self):
        env = {
            "xs": make_list([1.0, 2.0, 3.0]),
            "words": make_list(["a", "b"]),  # skipped: strings
        }
        registry = StatisticsRegistry().analyze_env(env)
        assert "xs" in registry
        assert "words" not in registry
        assert registry.get("nope") is None


class TestCostModelIntegration:
    def test_histogram_improves_skewed_estimate(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(1.0, 20_000)
        env = {"xs": make_bag(values.tolist())}
        statistics = StatisticsRegistry().analyze_env(env)
        expr = parse("select(xs, 0.0, 0.5)")
        truth_rows = ((values >= 0) & (values <= 0.5)).sum()

        plain = CostModel().estimate_expr(expr, env)
        informed = CostModel(statistics=statistics).estimate_expr(expr, env)
        assert abs(informed.rows - truth_rows) < abs(plain.rows - truth_rows)

    def test_statistics_do_not_change_equivalence(self):
        """The informed model still ranks the Example-1 pair correctly."""
        env = {"xs": make_list(list(range(10_000)))}
        statistics = StatisticsRegistry().analyze_env(env)
        model = CostModel(statistics=statistics)
        bad = model.estimate_expr(parse("select(projecttobag(xs), 10, 20)"), env)
        good = model.estimate_expr(parse("projecttobag(select(xs, 10, 20))"), env)
        assert good.cost < bad.cost
