"""Aggregate metadata: monotonicity declarations, the threshold-engine
gate, and the interval transfer (``combine_interval``) containment
property — the runtime twins of the static MOA901 check."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopNError
from repro.intervals import ScoreInterval
from repro.mm import ArraySource
from repro.topn import SUM, combined_topn, fagin_topn, nra_topn, threshold_topn
from repro.topn.aggregates import (
    AVG,
    BUILTIN_AGGREGATES,
    MAX,
    MIN,
    PROD,
    UserAggregate,
    WeightedSum,
    require_monotone,
)

SPREAD = UserAggregate("spread", lambda gs: max(gs) - min(gs))


class TestDeclaredMetadata:
    def test_every_builtin_is_monotone(self):
        assert set(BUILTIN_AGGREGATES) == {"sum", "avg", "min", "max", "prob"}
        for agg in BUILTIN_AGGREGATES.values():
            assert agg.monotone, agg.name

    def test_strictness_declarations(self):
        assert SUM.strict and AVG.strict
        assert not MIN.strict and not MAX.strict and not PROD.strict

    def test_weighted_sum_zero_weight_drops_strictness_only(self):
        agg = WeightedSum([1.0, 0.0])
        assert agg.monotone and not agg.strict
        assert WeightedSum([1.0, 2.0]).strict

    def test_weighted_sum_rejects_negative_weights(self):
        with pytest.raises(TopNError):
            WeightedSum([1.0, -0.5])

    def test_user_aggregate_defaults_to_non_monotone(self):
        assert not SPREAD.monotone
        assert UserAggregate("ok", sum, monotone=True).monotone


class TestThresholdEngineGate:
    def test_require_monotone_refuses_undeclared(self):
        with pytest.raises(TopNError, match="not declared monotone"):
            require_monotone(SPREAD, "TA")
        require_monotone(SUM, "TA")  # monotone passes

    @pytest.mark.parametrize("engine", [threshold_topn, nra_topn,
                                        combined_topn, fagin_topn])
    def test_every_threshold_engine_rejects_non_monotone(self, engine):
        sources = [ArraySource([0.9, 0.5, 0.2]), ArraySource([0.1, 0.6, 0.9])]
        with pytest.raises(TopNError, match="not declared monotone"):
            engine(sources, 2, SPREAD)


# -- interval transfer containment -------------------------------------------

unit_grades = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@settings(max_examples=80, deadline=None)
@given(grades=st.lists(unit_grades, min_size=1, max_size=4),
       widths=st.lists(st.floats(min_value=0.0, max_value=0.5,
                                 allow_nan=False), min_size=4, max_size=4))
def test_combine_interval_contains_true_aggregate(grades, widths):
    """The conservativeness property: for any per-source intervals
    containing the true grades, the transferred interval contains the
    true aggregate."""
    intervals = [ScoreInterval(max(0.0, g - w), g + w)
                 for g, w in zip(grades, widths)]
    aggregates = [SUM, AVG, MIN, MAX, PROD, WeightedSum([2.0] + [0.5] * (len(grades) - 1))]
    for agg in aggregates:
        true = agg.combine(grades)
        derived = agg.combine_interval(intervals)
        # a few ulps of slack: combine and the transfer may associate
        # float operations differently on degenerate point intervals
        eps = 1e-9
        assert derived.lo - eps <= true <= derived.hi + eps, (
            agg.name, grades, derived.describe())


class TestUserAggregateTransfer:
    def test_no_transfer_declared_refuses(self):
        with pytest.raises(TopNError, match="no interval transfer"):
            SPREAD.combine_interval([ScoreInterval(0, 1)])

    def test_declared_transfer_is_used(self):
        doubled = UserAggregate(
            "double", lambda gs: 2.0 * sum(gs), monotone=True,
            transfer=lambda ivs: ScoreInterval(
                sum(i.lo for i in ivs) * 2.0, sum(i.hi for i in ivs) * 2.0))
        derived = doubled.combine_interval([ScoreInterval(0, 1), ScoreInterval(1, 2)])
        assert derived == ScoreInterval(2, 6)
        assert derived.contains(doubled.combine([0.5, 1.5]))

    def test_product_transfer_rejects_negative_domain(self):
        with pytest.raises(TopNError, match="non-negative"):
            PROD.combine_interval([ScoreInterval(-2, -1)])
