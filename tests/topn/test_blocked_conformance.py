"""Differential conformance: blocked engines vs their scalar oracles.

The blocked TA/NRA/CA variants (:mod:`repro.topn.blocked`) promise
**exactness**, not tie-aware agreement: same ids, same float scores,
same canonical tie order as the scalar reference engine — block-max
pruning only skips work the scalar engine's stop rule would also never
have needed.  So unlike :mod:`tests.topn.test_conformance` (score
multisets, boundary groups), every assertion here is
``result.doc_ids == ref.doc_ids and result.scores == ref.scores``.

The matrix crosses the PR 2 corpus shapes with block sizes
``{1, 7, 64, 4096}``: block 1 degenerates to posting-at-a-time, 7 does
not divide the 300-object corpus (short last block), 64 is the
interesting middle, and 4096 exceeds the corpus (a single short
block).  Aggregates beyond SUM are crossed at one shape to pin the
float-fold association contract.
"""

import numpy as np
import pytest

from repro.ir import BM25, InvertedIndex
from repro.mm import BlockedSource
from repro.topn import (
    AVG,
    MAX,
    MIN,
    PROD,
    SUM,
    WeightedSum,
    blocked_combined_topn,
    blocked_nra_topn,
    blocked_threshold_topn,
    combined_topn,
    naive_topn,
    naive_topn_sources,
    nra_topn,
    quit_continue_topn,
    threshold_topn,
)
from repro.parallel import parallel_topn_sources

from .test_conformance import SHAPES, corpus, make_sources

#: 1 = degenerate, 7 does not divide 300, 4096 > the 300-object corpus
BLOCK_SIZES = [1, 7, 64, 4096]

ENGINE_PAIRS = {
    "ta": (
        lambda sources, n, agg: threshold_topn(sources, n, agg),
        lambda sources, n, agg: blocked_threshold_topn(sources, n, agg),
    ),
    "nra": (
        lambda sources, n, agg: nra_topn(sources, n, agg, check_every=4),
        lambda sources, n, agg: blocked_nra_topn(sources, n, agg, check_every=4),
    ),
    "ca": (
        lambda sources, n, agg: combined_topn(sources, n, agg, h=4, check_every=4),
        lambda sources, n, agg: blocked_combined_topn(sources, n, agg, h=4,
                                                      check_every=4),
    ),
}


def blocked_sources(matrix: np.ndarray, block_size: int):
    return [BlockedSource.from_array(matrix[:, j], block_size, name=f"s{j}")
            for j in range(matrix.shape[1])]


def assert_exact(candidate, reference, context):
    """The blocked contract: bit-identical ids AND scores."""
    assert candidate.doc_ids == reference.doc_ids, context
    assert candidate.scores == reference.scores, context


class TestBlockedEngineMatrix:
    """Every (engine, shape, block size, n) cell is exact."""

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize("n", [1, 10, 25])
    def test_blocked_is_exactly_scalar(self, engine, shape, block_size, n):
        scalar, blocked = ENGINE_PAIRS[engine]
        for seed in (0, 1):
            matrix = corpus(shape, seed)
            reference = scalar(make_sources(matrix), n, SUM)
            result = blocked(blocked_sources(matrix, block_size), n, SUM)
            assert_exact(result, reference, (engine, shape, block_size, n, seed))

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    @pytest.mark.parametrize("agg", [AVG, MIN, MAX, PROD,
                                     WeightedSum([0.5, 0.3, 0.2])],
                             ids=["avg", "min", "max", "product", "wsum"])
    @pytest.mark.parametrize("block_size", [7, 64])
    def test_aggregates_preserve_float_association(self, engine, agg, block_size):
        """The vectorized column folds must associate float operations
        exactly as the scalar left-to-right folds do."""
        scalar, blocked = ENGINE_PAIRS[engine]
        matrix = corpus("uniform", seed=2)
        reference = scalar(make_sources(matrix), 10, agg)
        result = blocked(blocked_sources(matrix, block_size), 10, agg)
        assert_exact(result, reference, (engine, agg.name, block_size))

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    @pytest.mark.parametrize("n_objects", [1, 2, 5, 13])
    @pytest.mark.parametrize("block_size", [1, 7, 4096])
    def test_tiny_corpora(self, engine, n_objects, block_size):
        """Corpora smaller than (or awkwardly sized against) the block:
        short last blocks and single-block sources stay exact."""
        scalar, blocked = ENGINE_PAIRS[engine]
        matrix = corpus("uniform", seed=3, n_objects=n_objects)
        reference = scalar(make_sources(matrix), 10, SUM)
        result = blocked(blocked_sources(matrix, block_size), 10, SUM)
        assert_exact(result, reference, (engine, n_objects, block_size))

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    def test_n_larger_than_corpus(self, engine):
        scalar, blocked = ENGINE_PAIRS[engine]
        matrix = corpus("ties", seed=4, n_objects=20)
        reference = scalar(make_sources(matrix), 50, SUM)
        result = blocked(blocked_sources(matrix, 7), 50, SUM)
        assert_exact(result, reference, engine)

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    def test_nonpositive_n_is_empty(self, engine):
        _, blocked = ENGINE_PAIRS[engine]
        matrix = corpus("uniform", seed=0, n_objects=10)
        result = blocked(blocked_sources(matrix, 4), 0, SUM)
        assert result.items == []

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_stats_parity(self, shape, block_size):
        """Trace-level agreement: blocked engines stop at the same
        depth, see the same objects, and report the same threshold /
        bottom aggregate as their scalar oracle."""
        matrix = corpus(shape, seed=1)
        ta_ref = threshold_topn(make_sources(matrix), 10, SUM)
        ta = blocked_threshold_topn(blocked_sources(matrix, block_size), 10, SUM)
        for key in ("depth", "objects_seen", "final_threshold", "stop_reason"):
            assert ta.stats[key] == ta_ref.stats[key], (shape, block_size, key)
        # the blocked engine completes every fresh object in the stopping
        # block row — including ones past the exact stop depth — so its
        # random-access count is the scalar's rounded up to the block
        assert ta.stats["random_accesses"] >= ta_ref.stats["random_accesses"], \
            (shape, block_size)

        nra_ref = nra_topn(make_sources(matrix), 10, SUM, check_every=4)
        nra = blocked_nra_topn(blocked_sources(matrix, block_size), 10, SUM,
                               check_every=4)
        for key in ("depth", "objects_seen", "stop_reason", "bottom_aggregate"):
            assert nra.stats[key] == nra_ref.stats[key], (shape, block_size, key)

        ca_ref = combined_topn(make_sources(matrix), 10, SUM, h=4, check_every=4)
        ca = blocked_combined_topn(blocked_sources(matrix, block_size), 10, SUM,
                                   h=4, check_every=4)
        for key in ("depth", "objects_seen", "stop_reason", "completions",
                    "bound_checks"):
            assert ca.stats[key] == ca_ref.stats[key], (shape, block_size, key)

    @pytest.mark.parametrize("engine", list(ENGINE_PAIRS))
    @pytest.mark.parametrize("max_depth", [0, 3, 300, 310])
    def test_bounded_depth_parity(self, engine, max_depth):
        """max_depth / min_check_depth knobs cut off at the same rank."""
        if engine == "ta":
            pytest.skip("TA has no depth bound knobs")
        matrix = corpus("skewed", seed=6)
        if engine == "nra":
            reference = nra_topn(make_sources(matrix), 10, SUM, check_every=4,
                                 max_depth=max_depth, min_check_depth=8)
            result = blocked_nra_topn(blocked_sources(matrix, 7), 10, SUM,
                                      check_every=4, max_depth=max_depth,
                                      min_check_depth=8)
        else:
            reference = combined_topn(make_sources(matrix), 10, SUM, h=4,
                                      check_every=4, max_depth=max_depth,
                                      min_check_depth=8)
            result = blocked_combined_topn(blocked_sources(matrix, 7), 10, SUM,
                                           h=4, check_every=4,
                                           max_depth=max_depth,
                                           min_check_depth=8)
        assert_exact(result, reference, (engine, max_depth))
        assert result.stats["stop_reason"] == reference.stats["stop_reason"]


class TestScalarProtocolOverBlockedStorage:
    """BlockedSource preserves the scalar ScoreSource protocol bit for
    bit: scalar engines and the certified parallel coordinator run over
    blocked storage unchanged."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_scalar_engines_agree(self, shape):
        matrix = corpus(shape, seed=1)
        for scalar, _ in ENGINE_PAIRS.values():
            reference = scalar(make_sources(matrix), 10, SUM)
            over_blocks = scalar(blocked_sources(matrix, 64), 10, SUM)
            assert_exact(over_blocks, reference, shape)

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_parallel_coordinator(self, shards):
        matrix = corpus("uniform", seed=1)
        reference = naive_topn_sources(make_sources(matrix), 10, SUM)
        result = parallel_topn_sources(blocked_sources(matrix, 64), 10,
                                       shards=shards)
        assert result.doc_ids == reference.doc_ids
        assert result.certified is True


class TestBlockedQuitContinue:
    """quit/continue's blocked continue phase (DocBlocks overlap
    pruning) returns the identical ranking at every budget."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.workloads import SyntheticCollection, generate_queries, trec

        collection = SyntheticCollection.generate(trec.tiny(seed=33))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=6,
                                   terms_range=(3, 7), seed=9)
        return index, BM25(), queries

    @pytest.mark.parametrize("strategy", ["quit", "continue"])
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_blocked_equals_scalar(self, setup, strategy, block_size):
        index, model, queries = setup
        for query in queries.queries:
            tids = list(query.term_ids)
            for fraction in (0.25, 1.0):
                reference = quit_continue_topn(index, tids, model, 10,
                                               budget_fraction=fraction,
                                               strategy=strategy)
                result = quit_continue_topn(index, tids, model, 10,
                                            budget_fraction=fraction,
                                            strategy=strategy,
                                            block_size=block_size)
                assert_exact(result, reference, (strategy, block_size, fraction))

    def test_full_budget_continue_equals_naive(self, setup):
        index, model, queries = setup
        query = queries.queries[0]
        tids = list(query.term_ids)
        exact = naive_topn(index, tids, model, 10)
        safe = quit_continue_topn(index, tids, model, 10, budget_fraction=1.0,
                                  strategy="continue", block_size=64)
        assert safe.same_ranking(exact)

    def test_blocked_run_reports_block_stats(self, setup):
        index, model, queries = setup
        query = queries.queries[0]
        tids = list(query.term_ids)
        result = quit_continue_topn(index, tids, model, 10,
                                    budget_fraction=0.25, strategy="continue",
                                    block_size=64)
        stats = result.stats
        assert stats["block_size"] == 64
        assert stats["blocks_read"] + stats["blocks_skipped"] >= 0
        scalar = quit_continue_topn(index, tids, model, 10,
                                    budget_fraction=0.25, strategy="continue")
        assert "block_size" not in scalar.stats


class TestBlockedPostingsSources:
    """BlockedSource.from_postings over the inverted index: blocked TA
    equals scalar TA on real BM25 query terms."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.workloads import SyntheticCollection, generate_queries, trec

        collection = SyntheticCollection.generate(trec.tiny(seed=33))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=4,
                                   terms_range=(3, 7), seed=9)
        return index, BM25(), queries

    @pytest.mark.parametrize("block_size", [7, 64])
    def test_blocked_ta_on_index_terms(self, setup, block_size):
        from repro.mm.sources import PostingsSource

        index, model, queries = setup
        for query in queries.queries:
            tids = list(query.term_ids)
            scalar_srcs = [PostingsSource(index, tid, model) for tid in tids]
            reference = threshold_topn(scalar_srcs, 10, SUM)
            blocked_srcs = [BlockedSource.from_postings(index, tid, model,
                                                        block_size)
                            for tid in tids]
            result = blocked_threshold_topn(blocked_srcs, 10, SUM)
            assert_exact(result, reference, (tids, block_size))
