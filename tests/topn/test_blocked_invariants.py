"""Trace invariants of the blocked engines.

Block-at-a-time must never read *more* than block-rounding dictates:

* blocked TA's charged sorted accesses are bounded by the scalar TA's
  stop depth rounded up to whole blocks, per source;
* ``blocks_skipped`` is monotone non-increasing in ``n`` (a larger
  answer can only need more blocks, never fewer);
* the ``topn.blocks_read`` / ``topn.blocks_skipped`` metrics appear in
  the registry when metrics are enabled and stay silent otherwise.
"""

import math

import numpy as np
import pytest

from repro.mm import BlockedSource
from repro.obs import metrics
from repro.storage import CostCounter
from repro.topn import (
    SUM,
    blocked_combined_topn,
    blocked_nra_topn,
    blocked_threshold_topn,
    threshold_topn,
)

from .test_conformance import SHAPES, corpus, make_sources


def blocked_sources(matrix: np.ndarray, block_size: int):
    return [BlockedSource.from_array(matrix[:, j], block_size, name=f"s{j}")
            for j in range(matrix.shape[1])]


class TestSortedAccessBound:
    """Blocked TA reads at most the scalar stop depth rounded up to
    whole blocks — per source, in block units."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", [1, 7, 64, 4096])
    def test_blocked_ta_within_block_rounding(self, shape, block_size):
        matrix = corpus(shape, seed=1)
        with CostCounter.activate() as scalar_cost:
            reference = threshold_topn(make_sources(matrix), 10, SUM)
        scalar_depth = reference.stats["depth"]

        with CostCounter.activate() as blocked_cost:
            result = blocked_threshold_topn(blocked_sources(matrix, block_size),
                                            10, SUM)
        assert result.doc_ids == reference.doc_ids

        rounded = math.ceil(scalar_depth / block_size) * block_size
        bound = sum(min(rounded, matrix.shape[0]) for _ in range(matrix.shape[1]))
        assert blocked_cost.sorted_accesses <= bound, (shape, block_size)
        # block 1 *is* posting-at-a-time: the charge matches exactly
        if block_size == 1:
            assert blocked_cost.sorted_accesses == scalar_cost.sorted_accesses

    @pytest.mark.parametrize("shape", SHAPES)
    def test_skipping_actually_happens(self, shape):
        """At a small block size on 300 objects the early stop must
        leave whole blocks unread."""
        matrix = corpus(shape, seed=1)
        result = blocked_threshold_topn(blocked_sources(matrix, 7), 10, SUM)
        total_blocks = sum(s.n_blocks for s in blocked_sources(matrix, 7))
        assert result.stats["blocks_read"] + result.stats["blocks_skipped"] \
            == total_blocks
        if result.stats["stop_reason"] == "threshold" \
                and result.stats["depth"] < matrix.shape[0] // 2:
            assert result.stats["blocks_skipped"] > 0


class TestBlocksSkippedMonotone:
    """TA's stop rule is monotone in n (the n-th best score only falls
    as n grows, so the stop comes later): ``blocks_skipped`` is
    non-increasing in n.  NRA/CA stop depths are *not* monotone in n —
    a larger n shrinks the "rest" set the n-th lower bound must
    dominate — so there the invariant is instead that block consumption
    is exactly the oracle's stop depth rounded up to whole blocks."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", [7, 64])
    def test_ta_monotone_in_n(self, shape, block_size):
        matrix = corpus(shape, seed=1)
        skipped = [
            blocked_threshold_topn(blocked_sources(matrix, block_size),
                                   n, SUM).stats["blocks_skipped"]
            for n in (1, 5, 10, 25, 50)
        ]
        assert skipped == sorted(skipped, reverse=True), (shape, skipped)

    @pytest.mark.parametrize("engine", ["nra", "ca"])
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", [7, 64])
    def test_bound_engines_read_exactly_rounded_depth(self, engine, shape,
                                                      block_size):
        matrix = corpus(shape, seed=1)
        n_objects = matrix.shape[0]
        for n in (1, 5, 10, 25, 50):
            if engine == "nra":
                result = blocked_nra_topn(blocked_sources(matrix, block_size),
                                          n, SUM, check_every=4)
            else:
                result = blocked_combined_topn(
                    blocked_sources(matrix, block_size), n, SUM, h=4,
                    check_every=4)
            ingested = min(result.stats["depth"], n_objects)
            expected = matrix.shape[1] * math.ceil(ingested / block_size)
            assert result.stats["blocks_read"] == expected, \
                (engine, shape, block_size, n)


class TestBlockMetrics:
    def test_metrics_emitted_when_enabled(self):
        matrix = corpus("uniform", seed=1)
        metrics.enable()
        try:
            metrics.reset()
            result = blocked_threshold_topn(blocked_sources(matrix, 7), 10, SUM)
            counters = metrics.snapshot()["counters"]
            assert counters.get("topn.blocks_read") == result.stats["blocks_read"]
            assert counters.get("topn.blocks_skipped") \
                == result.stats["blocks_skipped"]
        finally:
            metrics.reset()
            metrics.disable()

    def test_silent_when_disabled(self):
        matrix = corpus("uniform", seed=1)
        assert not metrics.enabled()
        blocked_threshold_topn(blocked_sources(matrix, 7), 10, SUM)
        counters = metrics.snapshot()["counters"]
        assert "topn.blocks_read" not in counters
