"""Property tests for the blocked access path (hypothesis).

Three properties carry the soundness argument of block-max pruning:

* **Containment** — every block's precomputed upper bound contains the
  block's maximum grade (and therefore every grade in the block), and
  the exported epoch-stamped :class:`~repro.intervals.ThresholdBound`
  records certify exactly that interval.
* **No dropped documents** — on arbitrary grade matrices (including
  the adversarial tie patterns hypothesis produces) a blocked engine
  returns the scalar oracle's answer bit for bit, so no block-skip
  decision ever drops a document the oracle returns.
* **Warm equals cold** — a cached TA resume state replayed against
  blocked storage yields the same answer as a cold run, in every
  direction (scalar-captured -> blocked resume and vice versa).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm import ArraySource, BlockedSource
from repro.storage.blocks import DocBlocks, ScoredBlocks
from repro.topn import (
    SUM,
    blocked_combined_topn,
    blocked_nra_topn,
    blocked_threshold_topn,
    combined_topn,
    nra_topn,
    threshold_topn,
)

grades_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, width=32), min_size=0, max_size=200)

matrices = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=1.0, width=32),
             min_size=2, max_size=2),
    min_size=1, max_size=60,
)


def blocked_sources(grid: np.ndarray, block_size: int):
    return [BlockedSource.from_array(grid[:, j], block_size, name=f"s{j}")
            for j in range(grid.shape[1])]


def scalar_sources(grid: np.ndarray):
    return [ArraySource(grid[:, j], name=f"s{j}") for j in range(grid.shape[1])]


class TestBoundContainment:
    @settings(max_examples=60, deadline=None)
    @given(grades=grades_lists, block_size=st.integers(min_value=1, max_value=70))
    def test_scored_block_upper_contains_block_max(self, grades, block_size):
        doc_ids = np.arange(len(grades), dtype=np.int64)
        blocks = ScoredBlocks(doc_ids, grades, block_size)
        for b in range(blocks.n_blocks):
            _, block_grades = blocks.block(b)
            assert blocks.block_upper(b) >= float(block_grades.max())

    @settings(max_examples=60, deadline=None)
    @given(grades=grades_lists, block_size=st.integers(min_value=1, max_value=70))
    def test_threshold_bounds_certify_every_grade(self, grades, block_size):
        """The exported ThresholdBound of block ``b`` certifies the
        whole tail from its start rank: grades are descending, so every
        grade at rank >= start lies in the bound's interval."""
        doc_ids = np.arange(len(grades), dtype=np.int64)
        blocks = ScoredBlocks(doc_ids, grades, block_size)
        bounds = blocks.threshold_bounds(epoch=3)
        assert len(bounds) == blocks.n_blocks
        for b, bound in enumerate(bounds):
            start, _ = blocks.block_bounds(b)
            assert bound.n == start
            assert bound.epoch == 3
            interval = bound.interval()
            for grade in blocks.grades[start:]:
                assert interval.contains(float(grade))

    @settings(max_examples=60, deadline=None)
    @given(grades=grades_lists, block_size=st.integers(min_value=1, max_value=70))
    def test_doc_block_upper_contains_block_max(self, grades, block_size):
        doc_ids = np.arange(len(grades), dtype=np.int64)
        blocks = DocBlocks(doc_ids, grades, block_size)
        for b, bound in enumerate(blocks.threshold_bounds()):
            _, block_grades = blocks.block(b)
            assert bound.interval().contains(float(block_grades.max()))


class TestNoDroppedDocuments:
    """Block skipping is invisible: blocked answers are bit-identical
    to the scalar oracle on arbitrary matrices and block sizes."""

    @settings(max_examples=40, deadline=None)
    @given(matrix=matrices, n=st.integers(min_value=1, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_blocked_ta(self, matrix, n, block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        reference = threshold_topn(scalar_sources(grid), n, SUM)
        result = blocked_threshold_topn(blocked_sources(grid, block_size), n, SUM)
        assert result.doc_ids == reference.doc_ids
        assert result.scores == reference.scores

    @settings(max_examples=40, deadline=None)
    @given(matrix=matrices, n=st.integers(min_value=1, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_blocked_nra(self, matrix, n, block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        reference = nra_topn(scalar_sources(grid), n, SUM, check_every=4)
        result = blocked_nra_topn(blocked_sources(grid, block_size), n, SUM,
                                  check_every=4)
        assert result.doc_ids == reference.doc_ids
        assert result.scores == reference.scores

    @settings(max_examples=40, deadline=None)
    @given(matrix=matrices, n=st.integers(min_value=1, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_blocked_ca(self, matrix, n, block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        reference = combined_topn(scalar_sources(grid), n, SUM, h=4,
                                  check_every=4)
        result = blocked_combined_topn(blocked_sources(grid, block_size), n,
                                       SUM, h=4, check_every=4)
        assert result.doc_ids == reference.doc_ids
        assert result.scores == reference.scores


class TestWarmEqualsCold:
    """A TA resume state replayed against blocked storage answers as if
    the run had been cold — in every scalar/blocked direction."""

    @settings(max_examples=30, deadline=None)
    @given(matrix=matrices,
           n_small=st.integers(min_value=1, max_value=5),
           n_large=st.integers(min_value=6, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_blocked_capture_blocked_resume(self, matrix, n_small, n_large,
                                            block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        cold = blocked_threshold_topn(blocked_sources(grid, block_size),
                                      n_large, SUM)
        first = blocked_threshold_topn(blocked_sources(grid, block_size),
                                       n_small, SUM, capture_state=True)
        warm = blocked_threshold_topn(blocked_sources(grid, block_size),
                                      n_large, SUM,
                                      resume_from=first.stats["resume_state"])
        assert warm.doc_ids == cold.doc_ids
        assert warm.scores == cold.scores

    @settings(max_examples=30, deadline=None)
    @given(matrix=matrices,
           n_small=st.integers(min_value=1, max_value=5),
           n_large=st.integers(min_value=6, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_scalar_capture_blocked_resume(self, matrix, n_small, n_large,
                                           block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        cold = threshold_topn(scalar_sources(grid), n_large, SUM)
        first = threshold_topn(scalar_sources(grid), n_small, SUM,
                               capture_state=True)
        warm = blocked_threshold_topn(blocked_sources(grid, block_size),
                                      n_large, SUM,
                                      resume_from=first.stats["resume_state"])
        assert warm.doc_ids == cold.doc_ids
        assert warm.scores == cold.scores

    @settings(max_examples=30, deadline=None)
    @given(matrix=matrices,
           n_small=st.integers(min_value=1, max_value=5),
           n_large=st.integers(min_value=6, max_value=12),
           block_size=st.integers(min_value=1, max_value=70))
    def test_blocked_capture_scalar_resume(self, matrix, n_small, n_large,
                                           block_size):
        grid = np.asarray(matrix, dtype=np.float64)
        cold = threshold_topn(scalar_sources(grid), n_large, SUM)
        first = blocked_threshold_topn(blocked_sources(grid, block_size),
                                       n_small, SUM, capture_state=True)
        warm = threshold_topn(scalar_sources(grid), n_large, SUM,
                              resume_from=first.stats["resume_state"])
        assert warm.doc_ids == cold.doc_ids
        assert warm.scores == cold.scores
