"""Tests for the Combined Algorithm (CA)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopNError
from repro.mm import ArraySource
from repro.storage import CostCounter
from repro.topn import MIN, SUM, combined_topn, naive_topn_sources, threshold_topn


def make_sources(matrix):
    matrix = np.asarray(matrix, dtype=np.float64)
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(matrix.shape[1])]


class TestCA:
    @pytest.mark.parametrize("h", [1, 2, 4, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_membership_exact(self, h, seed):
        matrix = np.random.default_rng(seed).random((300, 3))
        ca = combined_topn(make_sources(matrix), 10, SUM, h=h, check_every=4)
        naive = naive_topn_sources(make_sources(matrix), 10, SUM)
        assert ca.same_set(naive)

    def test_min_aggregate(self):
        matrix = np.random.default_rng(3).random((200, 2))
        ca = combined_topn(make_sources(matrix), 5, MIN, h=2, check_every=2)
        naive = naive_topn_sources(make_sources(matrix), 5, MIN)
        assert ca.same_set(naive)

    def test_fewer_random_accesses_than_ta(self):
        """CA's reason to exist: at high random-access cost it spends
        far fewer random accesses than TA."""
        matrix = np.random.default_rng(4).random((2000, 3))
        with CostCounter.activate() as ta_cost:
            threshold_topn(make_sources(matrix), 10, SUM)
        with CostCounter.activate() as ca_cost:
            combined_topn(make_sources(matrix), 10, SUM, h=8, check_every=8)
        assert ca_cost.random_accesses < ta_cost.random_accesses / 2

    def test_h_trades_random_for_sorted(self):
        matrix = np.random.default_rng(5).random((2000, 3))
        costs = {}
        for h in (1, 16):
            with CostCounter.activate() as cost:
                combined_topn(make_sources(matrix), 10, SUM, h=h, check_every=8)
            costs[h] = cost
        assert costs[16].random_accesses <= costs[1].random_accesses
        assert costs[16].sorted_accesses >= costs[1].sorted_accesses

    def test_scores_are_lower_bounds(self):
        matrix = np.random.default_rng(6).random((300, 3))
        ca = combined_topn(make_sources(matrix), 10, SUM, h=4, check_every=4)
        exact = {item.obj_id: item.score
                 for item in naive_topn_sources(make_sources(matrix), 300, SUM)}
        for item in ca:
            assert item.score <= exact[item.obj_id] + 1e-9

    def test_max_depth_cap(self):
        matrix = np.random.default_rng(7).random((1000, 2))
        with CostCounter.activate() as cost:
            combined_topn(make_sources(matrix), 5, SUM, max_depth=40)
        assert cost.sorted_accesses <= 2 * 40

    def test_validation(self):
        with pytest.raises(TopNError):
            combined_topn([], 5)
        with pytest.raises(TopNError):
            combined_topn(make_sources(np.ones((2, 1))), 5, h=0)

    def test_n_zero(self):
        assert len(combined_topn(make_sources(np.ones((5, 2))), 0)) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(10, 60), st.integers(1, 3), st.integers(1, 8),
       st.integers(1, 8), st.integers(0, 10_000))
def test_ca_membership_property(n_objects, m, n, h, seed):
    matrix = np.random.default_rng(seed).random((n_objects, m))
    ca = combined_topn(make_sources(matrix), n, SUM, h=h, check_every=2)
    naive = naive_topn_sources(make_sources(matrix), n, SUM)
    assert ca.same_set(naive)
