"""Differential conformance: every exact top-N engine agrees.

One instance, all safe strategies — naive, FA, TA, NRA, CA (two cost
ratios), the STOP AFTER family, and quit/continue in its safe
configuration (budget_fraction=1.0) — must return *the same answer*.

Tie-awareness: all in-repo engines share the deterministic convention
documented in :class:`repro.topn.result.TopNResult` (score descending,
then id ascending), so comparisons are on **score multisets** plus
exact (id, score) agreement strictly above the tied boundary — an
early-stopping engine (TA, FA) may keep a different member of a tied
boundary group than the exhaustive baseline, because canonicalizing
boundary membership would require reading past its stop point.
NRA and CA may additionally report
*lower-bound* scores for members whose exact score was never
materialized; they are compared by validity instead — the multiset of
*true* scores of the returned ids must equal the reference top-N's
score multiset.  (Any answer with those true scores is a correct
top-N; at a boundary tied in *true* score NRA/CA may keep a different
tied member than naive, because their id tie-break applies to the
lower bounds they actually computed.)

Corpus shapes exercise the distributions where Fagin-family engines
historically diverge: uniform, skewed, correlated, anticorrelated and
heavy-ties (few distinct grades, so the N-boundary is usually tied).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import BM25, InvertedIndex
from repro.mm import ArraySource
from repro.storage import BAT, kernel
from repro.topn import (
    SUM,
    classic_topn,
    combined_topn,
    fagin_topn,
    naive_topn,
    naive_topn_sources,
    nra_topn,
    quit_continue_topn,
    scan_stop,
    sort_stop,
    stop_after_filter,
    threshold_topn,
)
from repro.parallel import parallel_topn, parallel_topn_sources, shard_index
from repro.workloads import SyntheticCollection, generate_queries, trec

N_OBJECTS = 300
M_SOURCES = 3


def corpus(shape: str, seed: int, n_objects: int = N_OBJECTS,
           m: int = M_SOURCES) -> np.ndarray:
    """An (objects x sources) grade matrix of the named shape."""
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        return rng.random((n_objects, m))
    if shape == "skewed":
        # most grades tiny, few large: Zipf-flavoured score mass
        return rng.random((n_objects, m)) ** 6
    if shape == "correlated":
        base = rng.random((n_objects, 1))
        noise = rng.random((n_objects, m)) * 0.05
        return np.clip(base + noise, 0.0, 1.0)
    if shape == "anticorrelated":
        base = rng.random(n_objects)
        cols = [base] + [(1.0 - base + rng.random(n_objects) * 0.05) / 1.05
                         for _ in range(m - 1)]
        return np.clip(np.column_stack(cols), 0.0, 1.0)
    if shape == "ties":
        # five distinct grades: tied aggregate scores straddle every
        # plausible N-boundary
        return rng.integers(0, 5, size=(n_objects, m)) / 4.0
    raise AssertionError(shape)


SHAPES = ["uniform", "skewed", "correlated", "anticorrelated", "ties"]


def make_sources(matrix: np.ndarray):
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(matrix.shape[1])]


def true_scores(matrix: np.ndarray, ids) -> list[float]:
    return [float(SUM.combine(list(matrix[obj]))) for obj in ids]


def score_multiset(scores) -> list[float]:
    return sorted(round(float(s), 9) for s in scores)


def above_boundary(result):
    """(id, score) pairs strictly above the result's last (boundary)
    score — the part every tie-aware engine must agree on exactly."""
    if not result.items:
        return []
    boundary = result.scores[-1]
    return [(item.obj_id, round(item.score, 9)) for item in result.items
            if item.score > boundary]


EXACT_SCORE_ENGINES = {
    "fa": lambda sources, n: fagin_topn(sources, n, SUM),
    "ta": lambda sources, n: threshold_topn(sources, n, SUM),
}
BOUND_SCORE_ENGINES = {
    "nra": lambda sources, n: nra_topn(sources, n, SUM, check_every=4),
    "ca-h1": lambda sources, n: combined_topn(sources, n, SUM, h=1, check_every=4),
    "ca-h4": lambda sources, n: combined_topn(sources, n, SUM, h=4, check_every=4),
}


class TestSourceEngineConformance:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n", [1, 10, 25])
    def test_all_engines_agree(self, shape, seed, n):
        matrix = corpus(shape, seed)
        reference = naive_topn_sources(make_sources(matrix), n, SUM)
        ref_multiset = score_multiset(reference.scores)

        for name, engine in EXACT_SCORE_ENGINES.items():
            result = engine(make_sources(matrix), n)
            assert score_multiset(result.scores) == ref_multiset, \
                (name, shape, seed, n)
            assert above_boundary(result) == above_boundary(reference), \
                (name, shape, seed, n)

        for name, engine in BOUND_SCORE_ENGINES.items():
            result = engine(make_sources(matrix), n)
            # a valid top-N: the returned ids' *true* scores form the
            # reference score multiset
            assert score_multiset(true_scores(matrix, result.doc_ids)) \
                == ref_multiset, (name, shape, seed, n)
            assert len(result) == len(reference)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_tied_boundary_takes_smallest_ids(self, shape):
        """The documented boundary rule: among objects tied at the N-th
        score, the smallest ids are returned."""
        matrix = corpus(shape, seed=5)
        n = 10
        result = naive_topn_sources(make_sources(matrix), n, SUM)
        boundary = result.scores[-1]
        tied_everywhere = sorted(
            obj for obj in range(len(matrix))
            if abs(float(SUM.combine(list(matrix[obj]))) - boundary) < 1e-12
        )
        tied_returned = sorted(i for i, s in zip(result.doc_ids, result.scores)
                               if abs(s - boundary) < 1e-12)
        assert tied_returned == tied_everywhere[:len(tied_returned)]

    @settings(max_examples=30, deadline=None)
    @given(
        matrix=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1.0, width=32),
                     min_size=2, max_size=2),
            min_size=1, max_size=60,
        ),
        n=st.integers(min_value=1, max_value=12),
    )
    def test_hypothesis_generated_distributions(self, matrix, n):
        """Engines agree on arbitrary grade matrices, including
        adversarial tie patterns hypothesis likes to produce."""
        grid = np.asarray(matrix, dtype=np.float64)
        reference = naive_topn_sources(make_sources(grid), n, SUM)
        ref_multiset = score_multiset(reference.scores)
        for name, engine in EXACT_SCORE_ENGINES.items():
            result = engine(make_sources(grid), n)
            assert score_multiset(result.scores) == ref_multiset, name
            assert above_boundary(result) == above_boundary(reference), name
        for name, engine in BOUND_SCORE_ENGINES.items():
            result = engine(make_sources(grid), n)
            assert score_multiset(true_scores(grid, result.doc_ids)) \
                == ref_multiset, name


class TestStopAfterConformance:
    """The relational family: every STOP AFTER policy returns the
    classic full-sort answer."""

    def table(self, shape, seed):
        matrix = corpus(shape, seed, n_objects=2000, m=1)
        return BAT(matrix[:, 0], persistent=True)

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_policies_agree(self, shape, seed):
        scores = self.table(shape, seed)
        n = 15
        reference = classic_topn(scores, n)
        assert sort_stop(scores, n).same_ranking(reference)
        ordered = kernel.sort_tail(scores, descending=True)
        assert scan_stop(ordered, n).same_ranking(reference)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_filtered_policies_agree(self, shape):
        scores = self.table(shape, seed=3)
        rng = np.random.default_rng(4)
        attributes = BAT(rng.random(len(scores)))
        n = 12
        conservative = stop_after_filter(scores, attributes, n, 0.2, 0.8,
                                         policy="conservative")
        aggressive = stop_after_filter(scores, attributes, n, 0.2, 0.8,
                                       policy="aggressive")
        assert aggressive.same_ranking(conservative)
        assert score_multiset(aggressive.scores) == score_multiset(conservative.scores)


class TestParallelConformance:
    """The sharded parallel engine is *exactly* (tie-aware) the serial
    answer: identical ids and scores on every corpus shape and shard
    count — the certified two-round merge, unlike early-stopping
    engines, reproduces naive's boundary rule byte for byte."""

    SHARD_COUNTS = [1, 2, 4, 7]

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_parallel_is_exactly_serial(self, shape, shards):
        matrix = corpus(shape, seed=1)
        reference = naive_topn_sources(make_sources(matrix), 10, SUM)
        result = parallel_topn_sources(make_sources(matrix), 10, shards=shards)
        assert result.doc_ids == reference.doc_ids
        assert [round(s, 12) for s in result.scores] \
            == [round(s, 12) for s in reference.scores]
        assert result.certified is True

    @pytest.mark.parametrize("shape", SHAPES)
    def test_parallel_agrees_with_ta(self, shape):
        """Against the early-stopping family the usual tie-aware
        comparison applies: same score multiset, exact agreement above
        the tied boundary."""
        matrix = corpus(shape, seed=2)
        ta = threshold_topn(make_sources(matrix), 10, SUM)
        result = parallel_topn_sources(make_sources(matrix), 10, shards=4)
        assert score_multiset(result.scores) == score_multiset(ta.scores)
        assert above_boundary(result) == above_boundary(ta)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_skewed_sharding(self, shape):
        """~90% of the objects on one shard: load skew must not change
        the answer (only the probe pattern)."""
        matrix = corpus(shape, seed=3)
        reference = naive_topn_sources(make_sources(matrix), 10, SUM)
        boundaries = [0, 270, 280, 290, N_OBJECTS]
        result = parallel_topn_sources(make_sources(matrix), 10,
                                       boundaries=boundaries)
        assert result.doc_ids == reference.doc_ids
        assert result.certified is True

    @pytest.mark.parametrize("shape", SHAPES)
    def test_empty_shard(self, shape):
        matrix = corpus(shape, seed=4)
        reference = naive_topn_sources(make_sources(matrix), 10, SUM)
        boundaries = [0, 0, 150, N_OBJECTS]
        result = parallel_topn_sources(make_sources(matrix), 10,
                                       boundaries=boundaries)
        assert result.doc_ids == reference.doc_ids
        assert result.certified is True


class TestParallelIndexConformance:
    """Sharded parallel search over the inverted index reproduces
    serial naive_topn exactly for every shard count, including a
    deliberately skewed and an empty shard."""

    @pytest.fixture(scope="class")
    def setup(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=33))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=6,
                                   terms_range=(3, 7), seed=9)
        return index, BM25(), queries

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_matches_naive_for_every_query(self, setup, shards):
        index, model, queries = setup
        sharded = shard_index(index, shards=shards)
        for query in queries.queries:
            tids = list(query.term_ids)
            exact = naive_topn(index, tids, model, 10)
            result = parallel_topn(sharded, tids, model, 10)
            assert result.doc_ids == exact.doc_ids
            assert result.scores == exact.scores
            assert result.certified is True

    @pytest.mark.parametrize("boundaries_of", [
        lambda n: [0, max(1, int(n * 0.9)), n],       # ~90% on shard 0
        lambda n: [0, 0, n // 2, n],                   # leading empty shard
    ])
    def test_degenerate_layouts(self, setup, boundaries_of):
        index, model, queries = setup
        sharded = shard_index(index, boundaries=boundaries_of(index.n_docs))
        for query in queries.queries:
            tids = list(query.term_ids)
            exact = naive_topn(index, tids, model, 10)
            result = parallel_topn(sharded, tids, model, 10)
            assert result.doc_ids == exact.doc_ids
            assert result.scores == exact.scores
            assert result.certified is True


class TestSafeModeQuitContinue:
    """quit/continue with the full postings budget degenerates to the
    exact naive evaluation — the 'safe configuration' of the unsafe
    technique."""

    @pytest.fixture(scope="class")
    def setup(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=33))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=6,
                                   terms_range=(3, 7), seed=9)
        return index, BM25(), queries

    @pytest.mark.parametrize("strategy", ["quit", "continue"])
    def test_full_budget_equals_naive(self, setup, strategy):
        index, model, queries = setup
        for query in queries.queries:
            tids = list(query.term_ids)
            exact = naive_topn(index, tids, model, 10)
            safe = quit_continue_topn(index, tids, model, 10,
                                      budget_fraction=1.0, strategy=strategy)
            assert safe.same_ranking(exact)
            assert score_multiset(safe.scores) == score_multiset(exact.scores)
