"""Tests for conjunctive (Boolean AND + ranked) top-N."""

import numpy as np
import pytest

from repro.core import MMDatabase
from repro.errors import ReproError
from repro.ir import BM25, Collection, Document, InvertedIndex
from repro.storage import CostCounter
from repro.topn import conjunctive_topn, naive_topn
from repro.workloads import SyntheticCollection, generate_queries, trec


def tiny_index():
    docs = [
        Document(0, np.array([0, 1, 2])),  # a b c
        Document(1, np.array([0, 1])),  # a b
        Document(2, np.array([0, 3])),  # a d
        Document(3, np.array([1, 1, 1])),  # b b b
    ]
    return InvertedIndex.build(Collection(docs, ["a", "b", "c", "d"], name="tiny"))


class TestConjunctive:
    def test_requires_all_terms(self):
        index = tiny_index()
        result = conjunctive_topn(index, [0, 1], BM25(), 10)
        assert set(result.doc_ids) == {0, 1}

    def test_single_term_equals_naive(self):
        index = tiny_index()
        conj = conjunctive_topn(index, [1], BM25(), 10)
        naive = naive_topn(index, [1], BM25(), 10)
        assert conj.same_ranking(naive)

    def test_empty_intersection(self):
        index = tiny_index()
        assert len(conjunctive_topn(index, [2, 3], BM25(), 10)) == 0

    def test_empty_query(self):
        assert len(conjunctive_topn(tiny_index(), [], BM25(), 5)) == 0

    def test_scores_match_naive_on_surviving_docs(self):
        index = tiny_index()
        model = BM25()
        conj = conjunctive_topn(index, [0, 1], model, 10)
        full = {item.obj_id: item.score
                for item in naive_topn(index, [0, 1], model, 10)}
        for item in conj:
            assert item.score == pytest.approx(full[item.obj_id])

    def test_subset_of_disjunctive_candidates(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=61))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=10, terms_range=(2, 4), seed=3)
        model = BM25()
        for query in queries:
            tids = list(query.term_ids)
            conj = conjunctive_topn(index, tids, model, 50)
            naive = naive_topn(index, tids, model, index.n_docs)
            assert set(conj.doc_ids) <= set(naive.doc_ids)
            assert conj.stats["candidates"] <= naive.stats["candidates"]

    def test_rarest_first_can_stop_early(self):
        """When the rarest terms already have an empty intersection,
        remaining posting lists are not read."""
        index = tiny_index()
        with CostCounter.activate() as cost:
            conjunctive_topn(index, [2, 3, 0], BM25(), 5)  # c ∩ d = {} — skip a
        # postings of "a" (2 entries over 2 columns) were never read
        assert cost.tuples_read < 2 * index.total_postings()


class TestDatabaseMode:
    @pytest.fixture(scope="class")
    def db(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=62))
        return MMDatabase.from_collection(collection)

    def test_mode_all(self, db):
        queries = generate_queries(db.collection, n_queries=5, terms_range=(2, 3), seed=4)
        for query in queries:
            tids = list(query.term_ids)
            strict = db.search(tids, n=20, mode="all")
            loose = db.search(tids, n=db.collection.n_docs, mode="any",
                              strategy="naive")
            assert set(strict.doc_ids) <= set(loose.doc_ids)

    def test_mode_validation(self, db):
        with pytest.raises(ReproError):
            db.search("anything", mode="some")

    def test_default_mode_is_any(self, db):
        queries = generate_queries(db.collection, n_queries=1, seed=5)
        tids = list(queries.queries[0].term_ids)
        assert db.search(tids, n=5).result.strategy != "naive-and"
