"""Edge cases for the shared top-N primitives.

Degenerate inputs — a request deeper than the corpus, empty sources,
score columns with no variation, histograms built over a constant
column — are exactly where a stopping rule or a tie-break silently
goes wrong.  Every case pins the behaviour against the sorted
reference (score desc, obj_id asc).
"""

import math

import numpy as np
import pytest

from repro.errors import TopNError
from repro.mm import ArraySource
from repro.storage.bat import BAT
from repro.topn import (
    SUM,
    BoundedTopN,
    ScoreHistogram,
    fagin_topn,
    naive_topn_sources,
    nra_topn,
    probabilistic_topn,
    threshold_topn,
)
from repro.topn.ca import combined_topn

ENGINES = [naive_topn_sources, fagin_topn, threshold_topn, nra_topn, combined_topn]


def make_sources(matrix):
    matrix = np.asarray(matrix, dtype=np.float64)
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(matrix.shape[1])]


class TestHeapEdges:
    def test_n_zero_accepts_nothing(self):
        heap = BoundedTopN(0)
        assert not heap.push(1, 0.9)
        assert heap.items_sorted() == []
        assert heap.threshold() == -math.inf

    def test_negative_n_rejected(self):
        with pytest.raises(TopNError):
            BoundedTopN(-1)

    def test_n_beyond_offers_keeps_everything(self):
        heap = BoundedTopN(100)
        for obj_id, score in enumerate([0.3, 0.1, 0.2]):
            heap.push(obj_id, score)
        assert [item.obj_id for item in heap.items_sorted()] == [0, 2, 1]
        assert not heap.full
        assert heap.threshold() == -math.inf

    def test_all_equal_scores_tie_break_by_id(self):
        heap = BoundedTopN(3)
        for obj_id in [7, 3, 9, 1, 5]:
            heap.push(obj_id, 0.5)
        assert [item.obj_id for item in heap.items_sorted()] == [1, 3, 5]

    def test_would_enter_on_exact_tie(self):
        heap = BoundedTopN(1)
        heap.push(4, 0.5)
        # same score: only a smaller id displaces the incumbent
        assert heap.would_enter(0.5, 2)
        assert not heap.would_enter(0.5, 4)
        assert not heap.would_enter(0.5, 9)


class TestEnginesDegenerate:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_n_beyond_corpus_returns_full_ranking(self, engine):
        matrix = np.random.default_rng(3).random((7, 2))
        result = engine(make_sources(matrix), 50, SUM)
        reference = naive_topn_sources(make_sources(matrix), 50, SUM)
        assert len(result.items) == 7
        assert result.same_ranking(reference)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_sources_return_empty(self, engine):
        sources = make_sources(np.zeros((0, 2)))
        result = engine(sources, 5, SUM)
        assert result.items == []

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_equal_scores_certify_id_order(self, engine):
        """Every engine must resolve a fully tied corpus the same way:
        ids ascending — the tie-break the conformance suites certify."""
        sources = make_sources(np.full((12, 3), 0.25))
        result = engine(sources, 5, SUM)
        assert [item.obj_id for item in result.items] == [0, 1, 2, 3, 4]
        assert all(item.score == pytest.approx(0.75) for item in result.items)


class TestHistogramDegenerate:
    def test_constant_scores(self):
        hist = ScoreHistogram(np.full(50, 0.4))
        cutoff = hist.cutoff_for(10)
        assert cutoff == pytest.approx(0.4)
        # a restart from the only boundary value must terminate
        assert hist.next_lower_cutoff(cutoff) == -math.inf

    def test_n_beyond_population_falls_back_to_minimum(self):
        scores = np.linspace(0.1, 0.9, 20)
        hist = ScoreHistogram(scores)
        assert hist.cutoff_for(1000) == pytest.approx(0.1)

    def test_tiny_population(self):
        hist = ScoreHistogram(np.array([0.7]))
        assert hist.cutoff_for(1) == pytest.approx(0.7)

    def test_empty_and_bad_buckets_rejected(self):
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([]))
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([0.1, 0.2]), n_buckets=1)
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([0.1, 0.2])).cutoff_for(0)

    def test_probabilistic_constant_column_still_exact(self):
        """Cutoff == every score: the first selection already qualifies
        the whole column; tie-break and exactness must survive."""
        scores = np.full(30, 0.6)
        bat = BAT(scores, tail_sorted=True)
        result = probabilistic_topn(bat, 5, ScoreHistogram(scores))
        assert [item.obj_id for item in result.items] == [0, 1, 2, 3, 4]
        assert result.stats["restarts"] == 0

    def test_probabilistic_n_beyond_population(self):
        scores = np.linspace(0.0, 1.0, 10)
        bat = BAT(scores, tail_sorted=True)
        result = probabilistic_topn(bat, 99, ScoreHistogram(scores))
        assert len(result.items) == 10
        assert [item.obj_id for item in result.items] == list(range(9, -1, -1))
