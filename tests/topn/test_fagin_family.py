"""Tests for FA / TA / NRA against the naive baseline.

The safety property — exact top-N for monotone aggregates — is the
core invariant; it is exercised with unit cases, randomized cases and
hypothesis properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopNError
from repro.mm import ArraySource
from repro.storage import CostCounter
from repro.topn import (
    AVG,
    MAX,
    MIN,
    SUM,
    WeightedSum,
    fagin_topn,
    naive_topn_sources,
    nra_topn,
    threshold_topn,
)


def make_sources(matrix):
    """One ArraySource per column of an (objects x sources) matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return [ArraySource(matrix[:, j], name=f"s{j}") for j in range(matrix.shape[1])]


def random_sources(n_objects, m, seed):
    rng = np.random.default_rng(seed)
    return make_sources(rng.random((n_objects, m)))


class TestFA:
    def test_simple_exact(self):
        sources = make_sources([[0.9, 0.1], [0.5, 0.6], [0.2, 0.9]])
        result = fagin_topn(sources, 1, SUM)
        naive = naive_topn_sources(make_sources([[0.9, 0.1], [0.5, 0.6], [0.2, 0.9]]), 1, SUM)
        assert result.same_ranking(naive)
        assert result.safe

    @pytest.mark.parametrize("agg", [SUM, AVG, MIN, MAX])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exactness_random(self, agg, seed):
        matrix = np.random.default_rng(seed).random((200, 3))
        result = fagin_topn(make_sources(matrix), 10, agg)
        naive = naive_topn_sources(make_sources(matrix), 10, agg)
        assert result.same_ranking(naive)

    def test_weighted_sum(self):
        matrix = np.random.default_rng(5).random((100, 2))
        agg = WeightedSum([3.0, 1.0])
        result = fagin_topn(make_sources(matrix), 5, agg)
        naive = naive_topn_sources(make_sources(matrix), 5, agg)
        assert result.same_ranking(naive)

    def test_stops_early_on_correlated_lists(self):
        """When the lists agree, FA stops long before reading everything."""
        base = np.sort(np.random.default_rng(7).random(5000))[::-1]
        matrix = np.stack([base, base * 0.95], axis=1)
        with CostCounter.activate() as cost:
            fagin_topn(make_sources(matrix), 10, SUM)
        assert cost.sorted_accesses < 2 * 5000 * 0.2

    def test_n_zero(self):
        assert len(fagin_topn(random_sources(10, 2, 0), 0)) == 0

    def test_no_sources(self):
        with pytest.raises(TopNError):
            fagin_topn([], 5)

    def test_n_exceeds_objects(self):
        result = fagin_topn(random_sources(5, 2, 1), 10, SUM)
        assert len(result) == 5


class TestTA:
    @pytest.mark.parametrize("agg", [SUM, AVG, MIN, MAX])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exactness_random(self, agg, seed):
        matrix = np.random.default_rng(seed).random((200, 3))
        result = threshold_topn(make_sources(matrix), 10, agg)
        naive = naive_topn_sources(make_sources(matrix), 10, agg)
        assert result.same_ranking(naive)

    def test_never_deeper_than_fa(self):
        """TA's stopping rule dominates FA's (instance optimality)."""
        for seed in range(5):
            matrix = np.random.default_rng(seed).random((500, 3))
            ta = threshold_topn(make_sources(matrix), 10, SUM)
            fa = fagin_topn(make_sources(matrix), 10, SUM)
            assert ta.stats["depth"] <= fa.stats["depth"]

    def test_sorted_accesses_sublinear(self):
        matrix = np.random.default_rng(3).random((20_000, 2))
        with CostCounter.activate() as cost:
            threshold_topn(make_sources(matrix), 10, SUM)
        assert cost.sorted_accesses < 2 * 20_000 / 4

    def test_single_source_reads_n(self):
        matrix = np.random.default_rng(4).random((1000, 1))
        with CostCounter.activate() as cost:
            result = threshold_topn(make_sources(matrix), 5, SUM)
        naive = naive_topn_sources(make_sources(matrix), 5, SUM)
        assert result.same_ranking(naive)
        assert cost.sorted_accesses <= 6

    def test_n_zero(self):
        assert len(threshold_topn(random_sources(10, 2, 0), 0)) == 0

    def test_no_sources(self):
        with pytest.raises(TopNError):
            threshold_topn([], 5)


class TestNRA:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_membership_exact(self, seed):
        matrix = np.random.default_rng(seed).random((200, 3))
        result = nra_topn(make_sources(matrix), 10, SUM, check_every=4)
        naive = naive_topn_sources(make_sources(matrix), 10, SUM)
        assert result.same_set(naive)

    def test_no_random_accesses(self):
        matrix = np.random.default_rng(1).random((500, 3))
        with CostCounter.activate() as cost:
            nra_topn(make_sources(matrix), 10, SUM)
        assert cost.random_accesses == 0

    def test_reported_scores_are_lower_bounds(self):
        matrix = np.random.default_rng(2).random((300, 3))
        result = nra_topn(make_sources(matrix), 10, SUM, check_every=4)
        exact = {item.obj_id: item.score
                 for item in naive_topn_sources(make_sources(matrix), 300, SUM)}
        for item in result:
            assert item.score <= exact[item.obj_id] + 1e-9

    def test_max_depth_caps_work(self):
        matrix = np.random.default_rng(3).random((1000, 2))
        with CostCounter.activate() as cost:
            nra_topn(make_sources(matrix), 5, SUM, max_depth=50)
        assert cost.sorted_accesses <= 2 * 50

    def test_min_aggregate(self):
        matrix = np.random.default_rng(4).random((200, 2))
        result = nra_topn(make_sources(matrix), 5, MIN, check_every=4)
        naive = naive_topn_sources(make_sources(matrix), 5, MIN)
        assert result.same_set(naive)

    def test_no_sources(self):
        with pytest.raises(TopNError):
            nra_topn([], 3)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(10, 60),  # objects
    st.integers(1, 4),  # sources
    st.integers(1, 8),  # n
    st.integers(0, 10_000),  # seed
)
def test_fa_ta_nra_agree_with_naive(n_objects, m, n, seed):
    """Safety property: all safe middleware algorithms return the exact
    top-N membership for random instances."""
    matrix = np.random.default_rng(seed).random((n_objects, m))
    naive = naive_topn_sources(make_sources(matrix), n, SUM)
    fa = fagin_topn(make_sources(matrix), n, SUM)
    ta = threshold_topn(make_sources(matrix), n, SUM)
    nra = nra_topn(make_sources(matrix), n, SUM, check_every=2)
    assert fa.same_ranking(naive)
    assert ta.same_ranking(naive)
    assert nra.same_set(naive)
