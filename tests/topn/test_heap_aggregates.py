"""Unit tests for the bounded heap, aggregates and result container."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopNError
from repro.storage import BAT
from repro.topn import AVG, BoundedTopN, MAX, MIN, RankedItem, SUM, TopNResult, WeightedSum


class TestBoundedTopN:
    def test_keeps_best(self):
        heap = BoundedTopN(2)
        for obj, score in [(1, 0.3), (2, 0.9), (3, 0.5), (4, 0.1)]:
            heap.push(obj, score)
        items = heap.items_sorted()
        assert [(i.obj_id, i.score) for i in items] == [(2, 0.9), (3, 0.5)]

    def test_threshold(self):
        heap = BoundedTopN(2)
        assert heap.threshold() == -math.inf
        heap.push(1, 0.5)
        assert heap.threshold() == -math.inf  # not yet full
        heap.push(2, 0.9)
        assert heap.threshold() == 0.5

    def test_tie_break_prefers_smaller_id(self):
        heap = BoundedTopN(2)
        heap.push(5, 1.0)
        heap.push(3, 1.0)
        heap.push(1, 1.0)
        assert [i.obj_id for i in heap.items_sorted()] == [1, 3]

    def test_push_returns_entered(self):
        heap = BoundedTopN(1)
        assert heap.push(1, 0.5)
        assert not heap.push(2, 0.4)
        assert heap.push(3, 0.6)

    def test_zero_capacity(self):
        heap = BoundedTopN(0)
        assert not heap.push(1, 1.0)
        assert heap.items_sorted() == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(TopNError):
            BoundedTopN(-1)

    def test_contains_ids(self):
        heap = BoundedTopN(2)
        heap.push(7, 0.1)
        heap.push(9, 0.2)
        assert heap.contains_ids() == {7, 9}

    @given(st.lists(st.tuples(st.integers(0, 1000), st.floats(0, 1, allow_nan=False)),
                    min_size=0, max_size=100),
           st.integers(1, 20))
    def test_matches_sorted_prefix(self, pairs, n):
        # deduplicate object ids (the heap assumes each object pushed once)
        seen = {}
        for obj, score in pairs:
            seen.setdefault(obj, score)
        heap = BoundedTopN(n)
        for obj, score in seen.items():
            heap.push(obj, score)
        expected = sorted(seen.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        got = [(i.obj_id, i.score) for i in heap.items_sorted()]
        assert got == expected


class TestAggregates:
    def test_values(self):
        grades = [0.2, 0.8, 0.5]
        assert SUM.combine(grades) == pytest.approx(1.5)
        assert AVG.combine(grades) == pytest.approx(0.5)
        assert MIN.combine(grades) == 0.2
        assert MAX.combine(grades) == 0.8

    def test_weighted_sum(self):
        agg = WeightedSum([2.0, 0.0, 1.0])
        assert agg.combine([0.5, 0.9, 0.25]) == pytest.approx(1.25)

    def test_weighted_sum_validation(self):
        with pytest.raises(TopNError):
            WeightedSum([])
        with pytest.raises(TopNError):
            WeightedSum([1.0, -1.0])
        with pytest.raises(TopNError):
            WeightedSum([1.0]).combine([0.5, 0.5])
        with pytest.raises(TopNError):
            WeightedSum([1.0, 1.0]).validate_arity(3)

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=6),
           st.integers(0, 5), st.floats(0, 1, allow_nan=False))
    def test_monotonicity(self, grades, position, bump):
        """Increasing any grade must not decrease any aggregate."""
        position = position % len(grades)
        bumped = list(grades)
        bumped[position] = min(bumped[position] + bump, 1.0)
        for agg in (SUM, AVG, MIN, MAX):
            assert agg.combine(bumped) >= agg.combine(grades) - 1e-12


class TestTopNResult:
    def test_accessors(self):
        result = TopNResult([RankedItem(3, 0.9), RankedItem(1, 0.5)], 2, "x", True)
        assert result.doc_ids == [3, 1]
        assert result.scores == [0.9, 0.5]
        assert len(result) == 2

    def test_ordering_enforced(self):
        with pytest.raises(TopNError):
            TopNResult([RankedItem(1, 0.1), RankedItem(2, 0.9)], 2, "x", True)

    def test_overflow_rejected(self):
        with pytest.raises(TopNError):
            TopNResult([RankedItem(1, 0.5), RankedItem(2, 0.4)], 1, "x", True)

    def test_same_ranking_and_set(self):
        a = TopNResult([RankedItem(1, 0.9), RankedItem(2, 0.5)], 2, "a", True)
        b = TopNResult([RankedItem(1, 0.8), RankedItem(2, 0.4)], 2, "b", True)
        c = TopNResult([RankedItem(2, 0.9), RankedItem(1, 0.5)], 2, "c", True)
        assert a.same_ranking(b)
        assert not a.same_ranking(c)
        assert a.same_set(c)

    def test_from_bat(self):
        bat = BAT([0.9, 0.5], head=[7, 3], tail_sorted_desc=True)
        result = TopNResult.from_bat(bat, 2, "kernel", True)
        assert result.doc_ids == [7, 3]
