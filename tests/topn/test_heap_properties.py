"""Property tests for :class:`repro.topn.heap.BoundedTopN`.

The heap is the shared primitive under naive/FA/TA: if it ever evicts
a true top-N member, every engine built on it silently returns wrong
answers.  The properties pin its contract directly against a sorted
reference.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopNError
from repro.topn import BoundedTopN

scores_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, width=32), min_size=0, max_size=120
)


def reference_topn(scores, n):
    """(score desc, id asc) reference, as (id, score) pairs."""
    ranked = sorted(enumerate(scores), key=lambda p: (-p[1], p[0]))
    return ranked[:n]


class TestAgainstReference:
    @settings(max_examples=120, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=0, max_value=15))
    def test_matches_sorted_reference(self, scores, n):
        heap = BoundedTopN(n)
        for obj_id, score in enumerate(scores):
            heap.push(obj_id, score)
        got = [(item.obj_id, item.score) for item in heap.items_sorted()]
        assert got == reference_topn(scores, n)

    @settings(max_examples=120, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=15))
    def test_never_evicts_true_topn_member(self, scores, n):
        """Once a true top-N member enters, it is never displaced."""
        true_ids = {obj_id for obj_id, _ in reference_topn(scores, n)}
        heap = BoundedTopN(n)
        for obj_id, score in enumerate(scores):
            heap.push(obj_id, score)
            held = heap.contains_ids()
            entered = true_ids & set(range(obj_id + 1))
            assert entered <= held

    @settings(max_examples=120, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=15))
    def test_threshold_monotone_nondecreasing(self, scores, n):
        """The N-th best score — TA's stopping lever — never goes down."""
        heap = BoundedTopN(n)
        previous = -math.inf
        for obj_id, score in enumerate(scores):
            heap.push(obj_id, score)
            current = heap.threshold()
            assert current >= previous
            previous = current

    @settings(max_examples=120, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=15))
    def test_threshold_is_weakest_member(self, scores, n):
        heap = BoundedTopN(n)
        for obj_id, score in enumerate(scores):
            heap.push(obj_id, score)
        if heap.full:
            assert heap.threshold() == heap.items_sorted()[-1].score
        else:
            assert heap.threshold() == -math.inf

    @settings(max_examples=80, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=15))
    def test_would_enter_consistent_with_push(self, scores, n):
        heap = BoundedTopN(n)
        for obj_id, score in enumerate(scores):
            predicted = heap.would_enter(score, obj_id)
            assert heap.push(obj_id, score) == predicted

    @settings(max_examples=80, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=0, max_value=15))
    def test_churn_accounting(self, scores, n):
        heap = BoundedTopN(n)
        for obj_id, score in enumerate(scores):
            heap.push(obj_id, score)
        churn = heap.churn()
        assert churn["offers"] == len(scores)
        assert churn["accepts"] == churn["evictions"] + len(heap)
        assert 0 <= churn["accepts"] <= churn["offers"]


class TestEdgeCases:
    def test_negative_n_rejected(self):
        with pytest.raises(TopNError):
            BoundedTopN(-1)

    def test_n_zero_accepts_nothing(self):
        heap = BoundedTopN(0)
        assert not heap.push(1, 0.9)
        assert heap.items_sorted() == []
        assert heap.threshold() == -math.inf

    def test_tie_prefers_smaller_id(self):
        heap = BoundedTopN(2)
        for obj_id in (5, 9, 1):
            heap.push(obj_id, 0.5)
        assert [item.obj_id for item in heap.items_sorted()] == [1, 5]

    def test_tied_weaker_id_never_displaces(self):
        heap = BoundedTopN(1)
        heap.push(2, 0.5)
        assert not heap.push(7, 0.5)
        assert heap.contains_ids() == {2}
