"""Tests for STOP AFTER policies, probabilistic top-N and the
Brown-style quit/continue pruning."""

import numpy as np
import pytest

from repro.errors import TopNError
from repro.ir import BM25, InvertedIndex
from repro.storage import BAT, CostCounter, SparseIndex
from repro.storage import kernel
from repro.topn import (
    ScoreHistogram,
    classic_topn,
    naive_topn,
    probabilistic_topn,
    probabilistic_topn_indexed,
    quit_continue_topn,
    scan_stop,
    sort_stop,
    stop_after_filter,
)
from repro.quality import overlap_at
from repro.workloads import SyntheticCollection, generate_queries, trec


def score_table(n=10_000, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(rng.random(n), persistent=True)


class TestStopAfter:
    def test_sort_stop_matches_classic(self):
        scores = score_table()
        assert sort_stop(scores, 10).same_ranking(classic_topn(scores, 10))

    def test_sort_stop_cheaper_than_classic(self):
        scores = score_table(50_000)
        with CostCounter.activate() as stop_cost:
            sort_stop(scores, 10)
        with CostCounter.activate() as classic_cost:
            classic_topn(scores, 10)
        assert stop_cost.comparisons < classic_cost.comparisons / 3

    def test_scan_stop_requires_sorted(self):
        with pytest.raises(TopNError):
            scan_stop(score_table(), 5)

    def test_scan_stop_on_sorted(self):
        scores = score_table(1000)
        ordered = kernel.sort_tail(scores, descending=True)
        result = scan_stop(ordered, 5)
        assert result.same_ranking(sort_stop(scores, 5))

    def test_scan_stop_reads_prefix_only(self):
        ordered = kernel.sort_tail(score_table(100_000), descending=True)
        with CostCounter.activate() as cost:
            scan_stop(ordered, 10)
        assert cost.tuples_read <= 10

    def test_filter_conservative_exact(self):
        scores = score_table(5000, seed=1)
        attrs = BAT(np.random.default_rng(2).integers(0, 100, 5000))
        result = stop_after_filter(scores, attrs, 10, 20, 60, policy="conservative")
        mask = (attrs.tail >= 20) & (attrs.tail <= 60)
        expected = kernel.topn_tail(kernel.select_mask(scores, mask), 10)
        assert result.doc_ids == [h for h, _ in expected.to_list()]

    def test_filter_aggressive_exact(self):
        scores = score_table(5000, seed=1)
        attrs = BAT(np.random.default_rng(2).integers(0, 100, 5000))
        conservative = stop_after_filter(scores, attrs, 10, 20, 60, policy="conservative")
        aggressive = stop_after_filter(scores, attrs, 10, 20, 60, policy="aggressive")
        assert aggressive.same_ranking(conservative)

    def test_aggressive_restarts_on_selective_filter(self):
        scores = score_table(5000, seed=3)
        # very selective predicate: ~1% pass
        attrs = BAT(np.random.default_rng(4).integers(0, 100, 5000))
        result = stop_after_filter(scores, attrs, 20, 0, 0, policy="aggressive", inflation=1.5)
        assert result.stats["restarts"] >= 1
        conservative = stop_after_filter(scores, attrs, 20, 0, 0, policy="conservative")
        assert result.same_ranking(conservative)

    def test_aggressive_cheaper_when_filter_loose(self):
        scores = score_table(100_000, seed=5)
        attrs = BAT(np.random.default_rng(6).integers(0, 100, 100_000))
        with CostCounter.activate() as aggressive_cost:
            stop_after_filter(scores, attrs, 10, 5, 95, policy="aggressive")
        with CostCounter.activate() as conservative_cost:
            stop_after_filter(scores, attrs, 10, 5, 95, policy="conservative")
        assert aggressive_cost.tuples_read < conservative_cost.tuples_read

    def test_validation(self):
        scores, attrs = score_table(10), score_table(5)
        with pytest.raises(TopNError):
            stop_after_filter(scores, attrs, 1, 0, 1)
        with pytest.raises(TopNError):
            stop_after_filter(scores, score_table(10), 1, 0, 1, policy="nope")
        with pytest.raises(TopNError):
            stop_after_filter(scores, score_table(10), 1, 0, 1, inflation=0.5)


class TestProbabilistic:
    def make_sorted_scores(self, n=20_000, seed=0):
        rng = np.random.default_rng(seed)
        scores = np.sort(rng.normal(0.5, 0.2, n))
        return BAT(scores, tail_sorted=True, persistent=True)

    def test_exactness(self):
        scores = self.make_sorted_scores()
        histogram = ScoreHistogram(scores.tail)
        result = probabilistic_topn(scores, 25, histogram)
        expected = kernel.topn_tail(scores, 25, descending=True)
        assert result.doc_ids == [h for h, _ in expected.to_list()]

    def test_scans_small_fraction(self):
        scores = self.make_sorted_scores(100_000)
        histogram = ScoreHistogram(scores.tail, n_buckets=128)
        with CostCounter.activate() as cost:
            result = probabilistic_topn(scores, 10, histogram)
        assert result.stats["fraction_scanned"] < 0.05
        assert cost.tuples_read < 100_000 * 0.1

    def test_restart_when_histogram_stale(self):
        """A histogram built on different data must still give exact
        answers, via restarts."""
        scores = self.make_sorted_scores(5000, seed=1)
        # stale statistics: histogram from a shifted distribution
        stale = ScoreHistogram(scores.tail + 0.4)
        result = probabilistic_topn(scores, 50, stale, slack=1.0)
        expected = kernel.topn_tail(scores, 50, descending=True)
        assert result.doc_ids == [h for h, _ in expected.to_list()]

    def test_requires_sorted(self):
        scores = BAT(np.random.default_rng(0).random(100))
        with pytest.raises(TopNError):
            probabilistic_topn(scores, 5, ScoreHistogram(scores.tail))

    def test_histogram_validation(self):
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([]))
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([1.0, 2.0]), n_buckets=1)
        with pytest.raises(TopNError):
            ScoreHistogram(np.array([1.0, 2.0])).cutoff_for(0)

    def test_cutoff_monotone_in_n(self):
        scores = np.random.default_rng(2).random(10_000)
        histogram = ScoreHistogram(scores)
        assert histogram.cutoff_for(10) >= histogram.cutoff_for(1000)

    def test_indexed_variant(self):
        scores = self.make_sorted_scores(50_000)
        index = SparseIndex(scores)
        histogram = ScoreHistogram(scores.tail)
        result = probabilistic_topn_indexed(index, 10, histogram)
        expected = kernel.topn_tail(scores, 10, descending=True)
        assert result.doc_ids == [h for h, _ in expected.to_list()]

    def test_n_larger_than_table(self):
        scores = BAT(np.sort(np.random.default_rng(3).random(20)), tail_sorted=True)
        histogram = ScoreHistogram(scores.tail)
        result = probabilistic_topn(scores, 50, histogram)
        assert len(result) == 20


class TestQuitContinue:
    @pytest.fixture(scope="class")
    def setup(self):
        collection = SyntheticCollection.generate(trec.tiny(seed=21))
        index = InvertedIndex.build(collection)
        queries = generate_queries(collection, n_queries=10, terms_range=(4, 8), seed=2)
        return index, BM25(), queries

    def test_marked_unsafe(self, setup):
        index, model, queries = setup
        query = queries.queries[0]
        result = quit_continue_topn(index, list(query.term_ids), model, 10)
        assert not result.safe

    def test_quit_reads_less_than_naive(self, setup):
        index, model, queries = setup
        query = max(queries.queries, key=lambda q: len(q.term_ids))
        with CostCounter.activate() as pruned_cost:
            quit_continue_topn(index, list(query.term_ids), model, 10,
                               budget_fraction=0.3, strategy="quit")
        with CostCounter.activate() as naive_cost:
            naive_topn(index, list(query.term_ids), model, 10)
        assert pruned_cost.tuples_read < naive_cost.tuples_read

    def test_full_budget_matches_naive(self, setup):
        index, model, queries = setup
        for query in queries.queries[:3]:
            pruned = quit_continue_topn(index, list(query.term_ids), model, 10,
                                        budget_fraction=1.0, strategy="quit")
            exact = naive_topn(index, list(query.term_ids), model, 10)
            assert pruned.same_ranking(exact)

    def test_continue_quality_at_least_quit(self, setup):
        """Averaged over queries, continue's overlap with the exact
        top-N is at least quit's (it refines survivor scores)."""
        index, model, queries = setup
        quit_overlap, continue_overlap = [], []
        for query in queries.queries:
            tids = list(query.term_ids)
            exact = naive_topn(index, tids, model, 10)
            quit_result = quit_continue_topn(index, tids, model, 10,
                                             budget_fraction=0.3, strategy="quit")
            continue_result = quit_continue_topn(index, tids, model, 10,
                                                 budget_fraction=0.3, strategy="continue")
            quit_overlap.append(overlap_at(quit_result.doc_ids, exact.doc_ids, 10))
            continue_overlap.append(overlap_at(continue_result.doc_ids, exact.doc_ids, 10))
        assert sum(continue_overlap) >= sum(quit_overlap) - 1e-9

    def test_validation(self, setup):
        index, model, queries = setup
        tids = list(queries.queries[0].term_ids)
        with pytest.raises(TopNError):
            quit_continue_topn(index, tids, model, 5, strategy="nope")
        with pytest.raises(TopNError):
            quit_continue_topn(index, tids, model, 5, budget_fraction=0.0)

    def test_stats_accounting(self, setup):
        index, model, queries = setup
        query = max(queries.queries, key=lambda q: len(q.term_ids))
        result = quit_continue_topn(index, list(query.term_ids), model, 10,
                                    budget_fraction=0.3, strategy="continue")
        s = result.stats
        assert s["terms_full"] <= s["terms_total"]
        assert s["postings_full"] + s["postings_continued"] <= s["postings_total"]
