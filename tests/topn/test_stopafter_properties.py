"""Property tests for STOP AFTER cutoff semantics.

References are computed directly in numpy; the operators must match
for arbitrary score tables, filter windows and N — including the
aggressive policy's restart path, whose inflated-K cutoff must never
change the answer, only the work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BAT, kernel
from repro.topn import classic_topn, scan_stop, sort_stop, stop_after_filter

scores_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, width=32), min_size=1, max_size=80
)


def reference_pairs(scores, n, mask=None):
    """Top-n (id, score) under the canonical (score desc, id asc) order,
    optionally restricted to ``mask``."""
    items = [(i, float(s)) for i, s in enumerate(scores)
             if mask is None or mask[i]]
    items.sort(key=lambda p: (-p[1], p[0]))
    return items[:n]


def result_pairs(result):
    return [(item.obj_id, item.score) for item in result.items]


class TestUnfilteredCutoffs:
    @settings(max_examples=100, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=20))
    def test_sort_stop_equals_reference(self, scores, n):
        got = result_pairs(sort_stop(BAT(np.array(scores)), n))
        assert got == reference_pairs(scores, n)

    @settings(max_examples=100, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=20))
    def test_classic_equals_sort_stop(self, scores, n):
        table = BAT(np.array(scores))
        assert result_pairs(classic_topn(table, n)) \
            == result_pairs(sort_stop(table, n))

    @settings(max_examples=100, deadline=None)
    @given(scores=scores_strategy, n=st.integers(min_value=1, max_value=20))
    def test_scan_stop_takes_exact_prefix(self, scores, n):
        ordered = kernel.sort_tail(BAT(np.array(scores)), descending=True)
        got = result_pairs(scan_stop(ordered, n))
        assert got == [(int(h), float(t)) for h, t in ordered.to_list()[:n]]
        assert got == reference_pairs(scores, n)

    @settings(max_examples=50, deadline=None)
    @given(scores=scores_strategy)
    def test_n_beyond_table_returns_everything(self, scores):
        n = len(scores) + 5
        got = result_pairs(sort_stop(BAT(np.array(scores)), n))
        assert got == reference_pairs(scores, n)
        assert len(got) == len(scores)


class TestFilteredCutoffs:
    window = st.tuples(
        st.floats(min_value=0.0, max_value=1.0, width=32),
        st.floats(min_value=0.0, max_value=1.0, width=32),
    ).map(sorted)

    @settings(max_examples=100, deadline=None)
    @given(
        scores=scores_strategy,
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=12),
        window=window,
        inflation=st.floats(min_value=1.0, max_value=4.0),
    )
    def test_both_policies_match_reference(self, scores, seed, n, window, inflation):
        lo, hi = window
        attrs = np.random.default_rng(seed).random(len(scores))
        mask = (attrs >= lo) & (attrs <= hi)
        expected = reference_pairs(scores, n, mask)

        scores_bat = BAT(np.array(scores))
        attrs_bat = BAT(attrs)
        conservative = stop_after_filter(scores_bat, attrs_bat, n, lo, hi,
                                         policy="conservative")
        aggressive = stop_after_filter(scores_bat, attrs_bat, n, lo, hi,
                                       policy="aggressive", inflation=inflation)
        assert result_pairs(conservative) == expected
        assert result_pairs(aggressive) == expected
        assert conservative.stats["restarts"] == 0
        assert aggressive.stats["restarts"] >= 0

    def test_aggressive_restarts_until_filter_satisfied(self):
        """A highly selective filter forces the restart path: K doubles
        until enough survivors exist, and the answer stays exact."""
        rng = np.random.default_rng(42)
        scores = rng.random(500)
        attrs = rng.random(500)
        lo, hi = 0.0, 0.03  # ~3% pass rate: n=5 survivors need deep K
        mask = (attrs >= lo) & (attrs <= hi)
        assert mask.sum() >= 5
        result = stop_after_filter(BAT(scores), BAT(attrs), 5, lo, hi,
                                   policy="aggressive", inflation=1.2)
        assert result.stats["restarts"] > 0
        assert result.stats["final_k"] >= 5 * 1.2
        assert result_pairs(result) == reference_pairs(scores, 5, mask)

    def test_empty_filter_window_returns_empty(self):
        rng = np.random.default_rng(1)
        scores, attrs = rng.random(50), rng.random(50)
        for policy in ("conservative", "aggressive"):
            result = stop_after_filter(BAT(scores), BAT(attrs), 5,
                                       2.0, 3.0, policy=policy)
            assert result_pairs(result) == []
