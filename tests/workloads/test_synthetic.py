"""Tests for the synthetic collection and query generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ir import InvertedIndex, fit_zipf, vocabulary_share_for_volume
from repro.workloads import (
    SyntheticCollection,
    SyntheticSpec,
    generate_queries,
    term_string,
    trec,
)


@pytest.fixture(scope="module")
def collection():
    return SyntheticCollection.generate(trec.tiny(seed=42))


class TestGenerator:
    def test_shape(self, collection):
        spec = collection.extras["spec"]
        assert len(collection) == spec.n_docs
        assert collection.n_terms == spec.vocabulary_size

    def test_deterministic(self):
        a = SyntheticCollection.generate(n_docs=50, vocabulary_size=500, n_topics=5, seed=7)
        b = SyntheticCollection.generate(n_docs=50, vocabulary_size=500, n_topics=5, seed=7)
        assert all(
            np.array_equal(da.token_ids, db.token_ids)
            for da, db in zip(a.documents, b.documents)
        )

    def test_seeds_differ(self):
        a = SyntheticCollection.generate(n_docs=50, vocabulary_size=500, n_topics=5, seed=1)
        b = SyntheticCollection.generate(n_docs=50, vocabulary_size=500, n_topics=5, seed=2)
        assert any(
            not np.array_equal(da.token_ids, db.token_ids)
            for da, db in zip(a.documents, b.documents)
        )

    def test_doc_lengths_reasonable(self, collection):
        spec = collection.extras["spec"]
        lengths = collection.doc_lengths()
        assert (lengths >= spec.min_doc_length).all()
        assert abs(lengths.mean() - spec.doc_length_mean) < spec.doc_length_mean * 0.5

    def test_topics_assigned(self, collection):
        spec = collection.extras["spec"]
        topics = {doc.topic for doc in collection.documents}
        assert topics <= set(range(spec.n_topics))
        assert len(topics) > 1

    def test_term_ids_in_range(self, collection):
        for doc in collection.documents[:20]:
            assert doc.token_ids.min() >= 0
            assert doc.token_ids.max() < collection.n_terms

    def test_zipf_distribution_emerges(self):
        collection = SyntheticCollection.generate(
            n_docs=800, vocabulary_size=8000, n_topics=20, topic_mix=0.3, seed=3
        )
        index = InvertedIndex.build(collection)
        cf = index.vocabulary.cf_array()
        fit = fit_zipf(cf[cf > 0], min_frequency=3)
        assert 0.5 < fit.exponent < 2.0
        assert fit.r_squared > 0.8

    def test_small_vocab_share_carries_most_volume(self):
        collection = SyntheticCollection.generate(
            n_docs=800, vocabulary_size=8000, n_topics=20, seed=3
        )
        index = InvertedIndex.build(collection)
        df = index.vocabulary.df_array().astype(float)
        share = vocabulary_share_for_volume(df[df > 0], 0.80)
        assert share < 0.40  # a minority of terms owns 80% of postings

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticCollection.generate(n_docs=0)
        with pytest.raises(WorkloadError):
            SyntheticCollection.generate(topic_mix=1.5)
        with pytest.raises(WorkloadError):
            SyntheticCollection.generate(topical_band=(0.9, 0.1))
        with pytest.raises(WorkloadError):
            SyntheticCollection.generate(vocabulary_size=100, terms_per_topic=1000)

    def test_spec_overrides(self):
        spec = trec.tiny()
        collection = SyntheticCollection.generate(spec, n_docs=77)
        assert len(collection) == 77

    def test_term_strings_unique(self):
        strings = [term_string(i) for i in range(2000)]
        assert len(set(strings)) == 2000


class TestQueries:
    def test_generation(self, collection):
        queries = generate_queries(collection, n_queries=20, seed=5)
        assert len(queries) == 20
        for query in queries:
            assert 2 <= len(query) <= 8
            assert len(set(query.term_ids)) == len(query.term_ids)

    def test_terms_are_topical(self, collection):
        topic_terms = collection.extras["topic_terms"]
        queries = generate_queries(collection, n_queries=20, seed=5)
        for query in queries:
            assert set(query.term_ids) <= set(int(t) for t in topic_terms[query.topic])

    def test_qrels_match_topics(self, collection):
        queries = generate_queries(collection, n_queries=10, seed=5)
        for query in queries:
            relevant = queries.relevant(query.query_id)
            assert relevant  # every topic has documents in this preset
            for doc_id in list(relevant)[:5]:
                assert collection.document(doc_id).topic == query.topic

    def test_deterministic(self, collection):
        a = generate_queries(collection, n_queries=5, seed=9)
        b = generate_queries(collection, n_queries=5, seed=9)
        assert [q.term_ids for q in a] == [q.term_ids for q in b]

    def test_query_text(self, collection):
        query = generate_queries(collection, n_queries=1, seed=0).queries[0]
        text = query.text(collection)
        assert len(text.split()) == len(query)

    def test_requires_planted_topics(self):
        from repro.ir import Collection

        plain = Collection([], ["a"], name="plain")
        with pytest.raises(WorkloadError):
            generate_queries(plain)

    def test_terms_range_validation(self, collection):
        with pytest.raises(WorkloadError):
            generate_queries(collection, terms_range=(0, 3))


class TestPresets:
    def test_tiny_builds(self):
        collection, queries = trec.build(trec.tiny(), n_queries=5)
        assert len(collection) == 300
        assert len(queries) == 5

    def test_ft_like_scales(self):
        small = trec.ft_like(scale=0.01)
        assert small.n_docs == 200
        full = trec.ft_like(scale=1.0)
        assert full.n_docs == 20_000
